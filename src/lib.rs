//! # ensemble-toolkit — umbrella crate
//!
//! Rust reproduction of *Ensemble Toolkit: Scalable and Flexible Execution of
//! Ensembles of Tasks* (ICPP 2016). Re-exports the user-facing API from
//! [`entk_core`] and the substrate crates; see `README.md` for a quickstart
//! and `DESIGN.md` for the architecture.

pub use entk_analysis as analysis;
pub use entk_cluster as cluster;
pub use entk_core as entk;
pub use entk_kernels as kernels;
pub use entk_md as md;
pub use entk_pilot as pilot;
pub use entk_saga as saga;
pub use entk_sim as sim;
