//! Minimal offline stand-in for `rayon`.
//!
//! Provides the subset this workspace uses: `into_par_iter()` /
//! `par_iter()` followed by `map(..).collect::<Vec<_>>()`, plus [`join`]
//! and [`current_num_threads`]. Work is distributed dynamically over scoped
//! std threads through an atomic index dispenser (greedy work-stealing-ish
//! load balance for heterogeneous task costs), and results are returned in
//! the **original item order**, so a parallel map is a drop-in,
//! order-deterministic replacement for a serial one.
//!
//! Thread count resolution: `ENTK_THREADS` env var, then
//! `RAYON_NUM_THREADS`, then `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    for var in ["ENTK_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs both closures, in parallel when more than one thread is available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined closure panicked");
        (ra, rb)
    })
}

/// A source of owned items for a parallel map.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A pending parallel map; executed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Lazily attaches the mapping function.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Accepted for API compatibility; chunking here is always per-item.
    pub fn with_min_len(self, _n: usize) -> Self {
        self
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers; results come
/// back in input order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F, threads: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let dispenser = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let slots = &slots;
                let dispenser = &dispenser;
                s.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = dispenser.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("each slot is taken exactly once");
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index was mapped"))
        .collect()
}

impl<T: Send, F, R> ParMap<T, F>
where
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the map and gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f, current_num_threads())
            .into_iter()
            .collect()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Starts a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send;
    /// Starts a parallel pipeline over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn order_is_preserved() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let out: Vec<i32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn heavy_fan_out_matches_serial() {
        let serial: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(i)).collect();
        let par: Vec<u64> = (0..1000usize)
            .into_par_iter()
            .map(|i| (i as u64).wrapping_mul(i as u64))
            .collect();
        assert_eq!(serial, par);
    }
}
