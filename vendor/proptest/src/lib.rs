//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` block macro
//! with `#![proptest_config(ProptestConfig::with_cases(N))]`, arguments of
//! the form `name in strategy`, numeric `Range` strategies,
//! `proptest::collection::vec(strategy, len)`, `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and message only), and case generation is seeded from
//! the test name, so runs are fully deterministic.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family; aborts the current case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic case generator (splitmix64), seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (the test name), deterministically.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one `proptest!` argument.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with element strategy `element` and length `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs a block of property tests, each a loop over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for `proptest!`; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed on case {}: {}",
                        stringify!($name), __case, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pl, __pr) = (&$left, &$right);
        if !(*__pl == *__pr) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __pl, __pr,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pl, __pr) = (&$left, &$right);
        if !(*__pl == *__pr) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 1u64..100,
            b in -5i32..5,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(
            xs in collection::vec(0u64..10, 3..6),
            fixed in collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() < 6);
            prop_assert_eq!(fixed.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
