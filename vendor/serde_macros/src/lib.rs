//! Proc macros backing the offline serde shim: `#[derive(Serialize)]`,
//! `#[derive(Deserialize)]`, and `json!`.
//!
//! Everything is hand-rolled on `proc_macro::TokenTree` (no syn/quote in
//! this container). Delimited groups make that workable: braces, brackets,
//! and parens arrive pre-matched, so item parsing is a linear scan and
//! `json!` is a short recursion. Code is generated as strings and re-parsed
//! into a `TokenStream`.
//!
//! Supported `#[serde(...)]` attributes (the set this workspace uses):
//! `default`, `default = "path"`, `tag = "..."`, `rename_all =
//! "snake_case"`. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ============================================================== parsing

#[derive(Default)]
struct SerdeAttrs {
    /// `default` / `default = "path"` on a field.
    default: Option<Option<String>>,
    /// `tag = "..."` on a container (internal tagging).
    tag: Option<String>,
    /// `rename_all = "..."` on a container.
    rename_all: Option<String>,
}

struct Field {
    name: String,
    default: Option<Option<String>>,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: SerdeAttrs,
    body: Body,
}

fn lit_str(text: &str) -> String {
    let t = text.trim();
    t.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(t)
        .to_string()
}

/// Consumes leading attributes at `*i`, folding any `#[serde(...)]` keys
/// into `attrs`.
fn take_attrs(tokens: &[TokenTree], i: &mut usize, attrs: &mut SerdeAttrs) {
    while *i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(args.stream(), attrs);
                }
            }
        }
        *i += 2;
    }
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            panic!(
                "serde shim: unsupported attribute syntax near {:?}",
                tokens[i].to_string()
            );
        };
        let key = key.to_string();
        let mut value = None;
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == '=' {
                    value = Some(lit_str(&tokens[i + 1].to_string()));
                    i += 2;
                }
            }
        }
        match key.as_str() {
            "default" => attrs.default = Some(value),
            "tag" => attrs.tag = value,
            "rename_all" => attrs.rename_all = value,
            other => panic!("serde shim: unsupported serde attribute `{other}`"),
        }
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                _ => panic!("serde shim: expected `,` in serde attribute list"),
            }
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Splits `tokens` on commas at angle-bracket depth zero (groups already
/// hide their interior, so only `<`/`>` need explicit tracking).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts
            .last_mut()
            .expect("parts is never empty")
            .push(t.clone());
    }
    if parts.last().map(Vec::is_empty).unwrap_or(false) {
        parts.pop();
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        take_attrs(&tokens, &mut i, &mut attrs);
        skip_visibility(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde shim: expected field name, found {:?}",
                tokens[i].to_string()
            );
        };
        let name = name.to_string();
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde shim: expected `:` after field `{name}`, found {:?}",
                other.to_string()
            ),
        }
        // Skip the type: everything up to the next comma outside angles.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // consume the comma
        }
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for part in split_top_commas(&tokens) {
        let mut i = 0;
        let mut attrs = SerdeAttrs::default();
        take_attrs(&part, &mut i, &mut attrs);
        let TokenTree::Ident(name) = &part[i] else {
            panic!(
                "serde shim: expected variant name, found {:?}",
                part[i].to_string()
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = match part.get(i) {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_commas(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(other) => panic!(
                "serde shim: unsupported token after variant `{name}`: {:?}",
                other.to_string()
            ),
        };
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = SerdeAttrs::default();
    take_attrs(&tokens, &mut i, &mut attrs);
    skip_visibility(&tokens, &mut i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("serde shim: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde shim: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic types are not supported (deriving for `{name}`)");
        }
    }
    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Struct(Fields::Tuple(split_top_commas(&inner).len()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!(
                "serde shim: unsupported struct body for `{name}`: {:?}",
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim: expected enum body for `{name}`"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Input { name, attrs, body }
}

fn to_snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn wire_name(variant: &str, attrs: &SerdeAttrs) -> String {
    match attrs.rename_all.as_deref() {
        Some("snake_case") => to_snake_case(variant),
        Some("lowercase") => variant.to_lowercase(),
        Some(other) => panic!("serde shim: unsupported rename_all = \"{other}\""),
        None => variant.to_string(),
    }
}

// ===================================================== Serialize derive

fn ser_named_fields(fields: &[Field], map: &str, access: &str) -> String {
    let mut code = String::new();
    for f in fields {
        code.push_str(&format!(
            "{map}.insert(::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({access}{n}));\n",
            n = f.name
        ));
    }
    code
}

/// Derives `Serialize` by rendering the type into the shim's `Value` model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(fields)) => format!(
            "let mut m = ::serde::Map::new();\n{}::serde::Value::Object(m)",
            ser_named_fields(fields, "m", "&self.")
        ),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = wire_name(&v.name, &input.attrs);
                let arm = if let Some(tag) = &input.attrs.tag {
                    // Internal tagging: flatten fields next to the tag key.
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{v} => {{ let mut m = ::serde::Map::new(); \
                             m.insert(::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::String(::std::string::String::from(\"{wire}\"))); \
                             ::serde::Value::Object(m) }}",
                            v = v.name
                        ),
                        Fields::Named(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => {{ \
                                 let mut m = ::serde::Map::new(); \
                                 m.insert(::std::string::String::from(\"{tag}\"), \
                                 ::serde::Value::String(::std::string::String::from(\"{wire}\"))); \
                                 {inserts} ::serde::Value::Object(m) }}",
                                v = v.name,
                                binds = binds.join(", "),
                                inserts = ser_named_fields(fields, "m", "")
                            )
                        }
                        Fields::Tuple(_) => {
                            panic!("serde shim: tuple variants unsupported with tag (in `{name}`)")
                        }
                    }
                } else {
                    // External tagging: {"Variant": payload} or "Variant".
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{v} => ::serde::Value::String(\
                             ::std::string::String::from(\"{wire}\"))",
                            v = v.name
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{v}({binds}) => {{ let mut m = ::serde::Map::new(); \
                                 m.insert(::std::string::String::from(\"{wire}\"), {payload}); \
                                 ::serde::Value::Object(m) }}",
                                v = v.name,
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => {{ \
                                 let mut inner = ::serde::Map::new(); {inserts} \
                                 let mut m = ::serde::Map::new(); \
                                 m.insert(::std::string::String::from(\"{wire}\"), \
                                 ::serde::Value::Object(inner)); ::serde::Value::Object(m) }}",
                                v = v.name,
                                binds = binds.join(", "),
                                inserts = ser_named_fields(fields, "inner", "")
                            )
                        }
                    }
                };
                arms.push_str(&arm);
                arms.push_str(",\n");
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde shim: generated Serialize impl failed to parse")
}

// =================================================== Deserialize derive

/// Expression reading field `f` out of map expression `map` for type
/// `owner`, honoring `#[serde(default)]`.
fn de_named_field(owner: &str, map: &str, f: &Field) -> String {
    let missing = match &f.default {
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\
             \"{owner}: missing field `{n}`\"))",
            n = f.name
        ),
    };
    format!(
        "{n}: match {map}.get(\"{n}\") {{\n\
         ::std::option::Option::Some(x) => \
         ::serde::Deserialize::from_value(x).map_err(|e| e.in_field(\"{n}\"))?,\n\
         ::std::option::Option::None => {missing},\n}}",
        n = f.name
    )
}

fn de_named_struct_body(owner: &str, path: &str, map: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| de_named_field(owner, map, f))
        .collect();
    format!(
        "::std::result::Result::Ok({path} {{\n{}\n}})",
        inits.join(",\n")
    )
}

fn de_tuple_body(owner: &str, path: &str, src: &str, n: usize) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({path}(::serde::Deserialize::from_value({src})?))"
        );
    }
    format!(
        "{{ let a = {src}.as_array().ok_or_else(|| ::serde::DeError::custom(\
         \"{owner}: expected array payload\"))?;\n\
         if a.len() != {n} {{ return ::std::result::Result::Err(\
         ::serde::DeError::custom(\"{owner}: expected {n} elements\")); }}\n\
         ::std::result::Result::Ok({path}({items})) }}",
        items = (0..n)
            .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Derives `Deserialize` by reading the type back out of the shim's
/// `Value` model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Struct(Fields::Tuple(n)) => de_tuple_body(name, name, "v", *n),
        Body::Struct(Fields::Named(fields)) => format!(
            "let m = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
             \"{name}: expected object\"))?;\n{}",
            de_named_struct_body(name, name, "m", fields)
        ),
        Body::Enum(variants) => {
            if let Some(tag) = &input.attrs.tag {
                let mut arms = String::new();
                for v in variants {
                    let wire = wire_name(&v.name, &input.attrs);
                    let path = format!("{name}::{v}", v = v.name);
                    let arm_body = match &v.fields {
                        Fields::Unit => format!("::std::result::Result::Ok({path})"),
                        Fields::Named(fields) => de_named_struct_body(name, &path, "m", fields),
                        Fields::Tuple(_) => {
                            panic!("serde shim: tuple variants unsupported with tag (in `{name}`)")
                        }
                    };
                    arms.push_str(&format!("\"{wire}\" => {arm_body},\n"));
                }
                format!(
                    "let m = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                     \"{name}: expected object\"))?;\n\
                     let tag = m.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| \
                     ::serde::DeError::custom(\"{name}: missing `{tag}` tag\"))?;\n\
                     match tag {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: unknown kind `{{other}}`\"))),\n}}"
                )
            } else {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let wire = wire_name(&v.name, &input.attrs);
                    let path = format!("{name}::{v}", v = v.name);
                    match &v.fields {
                        Fields::Unit => {
                            unit_arms.push_str(&format!(
                                "\"{wire}\" => ::std::result::Result::Ok({path}),\n"
                            ));
                        }
                        Fields::Tuple(n) => {
                            payload_arms.push_str(&format!(
                                "\"{wire}\" => {},\n",
                                de_tuple_body(name, &path, "inner", *n)
                            ));
                        }
                        Fields::Named(fields) => {
                            payload_arms.push_str(&format!(
                                "\"{wire}\" => {{ let mm = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(\"{name}: expected object payload\"))?;\n\
                                 {} }},\n",
                                de_named_struct_body(name, &path, "mm", fields)
                            ));
                        }
                    }
                }
                format!(
                    "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                     ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                     let (k, inner) = m.iter().next().expect(\"len checked\");\n\
                     match k.as_str() {{\n{payload_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\
                     \"{name}: expected variant\")),\n}}"
                )
            }
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde shim: generated Deserialize impl failed to parse")
}

// ================================================================ json!

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn json_value(tokens: &[TokenTree]) -> String {
    if tokens.len() == 1 {
        match &tokens[0] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return json_object(g.stream());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                return json_array(g.stream());
            }
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "null" => return "::serde_json::Value::Null".to_string(),
                "true" => return "::serde_json::Value::Bool(true)".to_string(),
                "false" => return "::serde_json::Value::Bool(false)".to_string(),
                _ => {}
            },
            _ => {}
        }
    }
    // Anything else is a Rust expression; serialize it by reference so
    // unsized place expressions (e.g. slices) work too.
    format!(
        "::serde_json::__json_value(&({}))",
        tokens_to_string(tokens)
    )
}

fn json_object(stream: TokenStream) -> String {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut code = String::from("{ let mut m = ::serde_json::Map::new();\n");
    for entry in split_top_commas(&tokens) {
        if entry.is_empty() {
            continue;
        }
        let TokenTree::Literal(key) = &entry[0] else {
            panic!(
                "json!: object keys must be string literals, found {:?}",
                entry[0].to_string()
            );
        };
        match entry.get(1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("json!: expected `:` after key {key}"),
        }
        let value = json_value(&entry[2..]);
        code.push_str(&format!(
            "m.insert(::std::string::String::from({key}), {value});\n"
        ));
    }
    code.push_str("::serde_json::Value::Object(m) }");
    code
}

fn json_array(stream: TokenStream) -> String {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let items: Vec<String> = split_top_commas(&tokens)
        .iter()
        .filter(|part| !part.is_empty())
        .map(|part| json_value(part))
        .collect();
    format!("::serde_json::Value::Array(vec![{}])", items.join(", "))
}

/// `json!` literal macro building a `::serde_json::Value` tree.
#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    json_value(&tokens)
        .parse()
        .expect("json!: generated expression failed to parse")
}
