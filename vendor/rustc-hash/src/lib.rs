//! Minimal offline stand-in for the `rustc-hash` crate.
//!
//! Provides [`FxHasher`], the multiply-xor hash used throughout rustc, plus
//! the [`FxHashMap`]/[`FxHashSet`] aliases. Fx is not collision-resistant
//! against adversarial keys, but for the small integer keys used by the
//! simulator (event ids, unit ids, pilot ids) it is several times faster
//! than SipHash because it compiles to a handful of ALU instructions.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / golden ratio, forced odd.
const K: u64 = 0xf1357aea2e62a9c5;

/// The Fx hasher: rotate, xor, multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Convenience re-export matching the real crate's module layout.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
    }
}
