//! The JSON-like tree all (de)serialization in this shim flows through.
//! `serde_json` re-exports [`Value`], so the two crates share one model.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: ordered map for deterministic serialization.
pub type Map = BTreeMap<String, Value>;

/// A JSON number, preserving integer-ness like `serde_json::Number`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// As `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    /// As `i64` if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// True if this is an integer (not a float).
    pub fn is_integer(&self) -> bool {
        !matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                // Both integers but at least one exceeds i64: compare as u64.
                _ => self.as_u64() == other.as_u64() && self.as_u64().is_some(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    if x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; serialize as null like serde_json.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree (`serde_json::Value` stand-in).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As f64, if numeric (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As u64, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As i64, if an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array access, if an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object map, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object access, if an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Field / element lookup by string key or array position; `None`
    /// for missing entries or mismatched container kinds.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Index types accepted by [`Value::get`] and `value[...]`.
pub trait ValueIndex {
    /// Looks `self` up inside `v`.
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
    /// Mutable lookup for `value[...] = ...`; inserts into objects
    /// (turning `Null` into an object first) like `serde_json` does.
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value;
}

impl ValueIndex for str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Object(m) => m.get(self),
            _ => None,
        }
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index non-object value {other:?} with string {self:?}"),
        }
    }
}

impl ValueIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        (*self).index_into(v)
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        (*self).index_into_mut(v)
    }
}

impl ValueIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        self.as_str().index_into_mut(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }

    fn index_into_mut<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        match v {
            Value::Array(a) => a
                .get_mut(*self)
                .unwrap_or_else(|| panic!("array index {self} out of bounds")),
            other => panic!("cannot index non-array value {other:?} with {self}"),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

const NULL: Value = Value::Null;

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: ValueIndex> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_into_mut(self)
    }
}

// ----------------------------------------------------------- From impls

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                let n = n as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
    )*};
}

from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::Float(f as f64))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(xs: Vec<T>) -> Self {
        Value::Array(xs.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(xs: &[T]) -> Self {
        Value::Array(xs.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

macro_rules! from_ref_numeric {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(n: &$t) -> Self {
                Value::from(*n)
            }
        }
    )*};
}

from_ref_numeric!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

// -------------------------------------------------- PartialEq shortcuts

macro_rules! eq_numeric {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::from_prim(*other),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl Number {
    fn from_prim<T: Into<NumPrim>>(t: T) -> Number {
        match t.into() {
            NumPrim::U(n) => Number::PosInt(n),
            NumPrim::I(n) => {
                if n >= 0 {
                    Number::PosInt(n as u64)
                } else {
                    Number::NegInt(n)
                }
            }
            NumPrim::F(f) => Number::Float(f),
        }
    }
}

enum NumPrim {
    U(u64),
    I(i64),
    F(f64),
}

macro_rules! numprim_u {
    ($($t:ty),*) => {$(impl From<$t> for NumPrim { fn from(n: $t) -> Self { NumPrim::U(n as u64) } })*};
}
macro_rules! numprim_i {
    ($($t:ty),*) => {$(impl From<$t> for NumPrim { fn from(n: $t) -> Self { NumPrim::I(n as i64) } })*};
}
macro_rules! numprim_f {
    ($($t:ty),*) => {$(impl From<$t> for NumPrim { fn from(n: $t) -> Self { NumPrim::F(n as f64) } })*};
}

numprim_u!(u8, u16, u32, u64, usize);
numprim_i!(i8, i16, i32, i64, isize);
numprim_f!(f32, f64);

eq_numeric!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_comparisons_cross_variant() {
        assert_eq!(Value::from(3u64), 3);
        assert_eq!(Value::from(3i32), 3u64);
        assert_ne!(Value::from(3.0f64), Value::from(3u64));
        assert_eq!(Value::from(-2i32), -2i64);
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["absent"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Number::Float(1.0).to_string(), "1.0");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
        assert_eq!(Number::PosInt(7).to_string(), "7");
    }
}
