//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim routes all
//! (de)serialization through one concrete data model: [`Value`], a JSON-like
//! tree. [`Serialize`] renders a type into a `Value`; [`Deserialize`] reads
//! one back. The companion `serde_shim_macros` crate provides the
//! `#[derive(Serialize, Deserialize)]` macros (re-exported here) supporting
//! the `#[serde(default)]`, `#[serde(default = "fn")]`, and
//! `#[serde(tag = "...", rename_all = "snake_case")]` attributes used in
//! this workspace. `serde_json` (the sibling shim) adds the JSON text layer
//! and re-exports [`Value`].

pub use serde_shim_macros::{Deserialize, Serialize};

mod value;

pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced when a [`Value`] cannot be read back as the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Wraps the error with the field it occurred under.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `v`, failing with a description of the first mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- primitives

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range")))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range")))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected single-char string, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Map keys usable with JSON objects: rendered to / parsed from strings.
///
/// Blanket-implemented via the value model, so strings, integers, and
/// integer-like newtypes (whose derives serialize to a number) all work
/// as keys.
pub trait MapKey: Sized {
    /// String form of the key.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl<T: Serialize + Deserialize> MapKey for T {
    fn to_key(&self) -> String {
        match self.to_value() {
            Value::String(s) => s,
            Value::Number(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported map key representation: {other:?}"),
        }
    }

    fn from_key(s: &str) -> Result<Self, DeError> {
        if let Ok(v) = T::from_value(&Value::String(s.to_string())) {
            return Ok(v);
        }
        if let Ok(n) = s.parse::<u64>() {
            if let Ok(v) = T::from_value(&Value::Number(Number::PosInt(n))) {
                return Ok(v);
            }
        }
        if let Ok(n) = s.parse::<i64>() {
            if let Ok(v) = T::from_value(&Value::Number(if n >= 0 {
                Number::PosInt(n as u64)
            } else {
                Number::NegInt(n)
            })) {
                return Ok(v);
            }
        }
        if let Ok(b) = s.parse::<bool>() {
            if let Ok(v) = T::from_value(&Value::Bool(b)) {
                return Ok(v);
            }
        }
        Err(DeError::custom(format!("cannot parse map key {s:?}")))
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v:?}")))?;
        m.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v:?}")))?;
        m.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn floats_accept_integers() {
        assert_eq!(f64::from_value(&3u64.to_value()).unwrap(), 3.0);
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn tuples_round_trip() {
        let t = ("a".to_string(), 2.5f64);
        let back: (String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn int_keyed_maps_round_trip() {
        let mut m = HashMap::new();
        m.insert(3u64, "x".to_string());
        let back: HashMap<u64, String> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
