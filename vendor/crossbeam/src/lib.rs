//! Minimal offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`. The
//! receiver is wrapped in a mutex so it is `Sync` like crossbeam's (std's
//! is not); contention is irrelevant for the single-consumer uses here.

/// Multi-producer channels with a `Sync` receiver.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when the receiving side is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on a closed empty channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel closed and drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value; errors only if all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; `Sync` and clonable (all clones share one queue).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .try_recv()
            {
                Ok(v) => Ok(v),
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        h.join().unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn disconnected_reported() {
        let (tx, rx) = channel::unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
