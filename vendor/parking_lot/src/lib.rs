//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s nicer API: `lock()`
//! returns the guard directly (poisoning panics, matching parking_lot's
//! behaviour of not having poisoning at all), and `Condvar::wait` takes the
//! guard by `&mut`.

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]; the `Option` lets [`Condvar::wait`] move the
/// underlying std guard out and back while holding only `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose guards need no `unwrap`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
