//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random::<T>()` and
//! `Rng::random_range(lo..hi)` — on top of xoshiro256++, seeded through
//! splitmix64. The stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this repository only relies on the
//! generator being deterministic per seed and statistically uniform, which
//! the tier-1 statistical tests verify.

use std::ops::Range;

/// Types that can construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core of a random generator: a stream of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Sampling of a "standard" value (uniform over the type's natural domain;
/// `[0, 1)` for floats).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types sampleable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias over a 64-bit source is irrelevant here.
                let word = rng.next_u64() as u128;
                lo.wrapping_add(((word * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of `T` (for floats: `[0, 1)`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    #[inline]
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid state; splitmix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&y));
        }
        // Every value of a small range is reachable.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
