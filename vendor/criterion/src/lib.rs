//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: `criterion_group!`,
//! `criterion_main!`, benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//! Measurement is a plain wall-clock mean over `sample_size` timed samples
//! after one warm-up sample — no outlier analysis, plots, or statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value sink, re-exported for convenience.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark; the input is passed by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, once as warm-up and then `sample_size` measured runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    println!(
        "{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        b.samples.len()
    );
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(unit_group, sample_bench);

    #[test]
    fn harness_runs() {
        unit_group();
    }
}
