//! Cross-crate integration tests: EnTK → pilot runtime → SAGA → cluster,
//! checking conservation and concurrency invariants over the whole stack.

use entk_core::prelude::*;
use entk_core::{EntkOverheads, ExecutionReport};
use serde_json::json;

fn quiet(seed: u64) -> SimulatedConfig {
    SimulatedConfig {
        seed,
        entk_overheads: EntkOverheads::zero(),
        runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
        ..Default::default()
    }
}

/// Checks that at no instant do more single-core tasks execute than the
/// pilot has cores (sweep-line over execution intervals).
fn assert_no_oversubscription(report: &ExecutionReport, cores: usize) {
    let mut events: Vec<(u64, i64)> = Vec::new();
    for t in &report.tasks {
        if let (Some(a), Some(b)) = (t.exec_start, t.exec_stop) {
            events.push((a.as_micros(), 1));
            events.push((b.as_micros(), -1));
        }
    }
    events.sort();
    let mut level = 0i64;
    for (_, delta) in events {
        level += delta;
        assert!(
            level <= cores as i64,
            "more concurrent tasks ({level}) than cores ({cores})"
        );
    }
}

#[test]
fn every_task_terminates_exactly_once() {
    let n = 100;
    let config = ResourceConfig::new("xsede.comet", 32, SimDuration::from_secs(1_000_000));
    let mut pattern = BagOfTasks::new(n, |i| {
        KernelCall::new("misc.sleep", json!({ "secs": 1.0 + (i % 7) as f64 }))
    });
    let report = run_simulated(config, quiet(1), &mut pattern).unwrap();
    assert_eq!(report.task_count(), n);
    for t in &report.tasks {
        assert!(t.finished.is_some(), "task {} never finished", t.uid);
        assert!(t.success, "task {} failed unexpectedly", t.uid);
        assert!(
            t.exec_stop >= t.exec_start,
            "task {} has inverted execution interval",
            t.uid
        );
    }
    // Unique uids.
    let mut uids: Vec<u64> = report.tasks.iter().map(|t| t.uid).collect();
    uids.sort_unstable();
    uids.dedup();
    assert_eq!(uids.len(), n);
}

#[test]
fn cores_are_never_oversubscribed() {
    let config = ResourceConfig::new("local", 6, SimDuration::from_secs(1_000_000));
    let mut pattern = BagOfTasks::new(40, |i| {
        KernelCall::new("misc.sleep", json!({ "secs": 2.0 + (i % 5) as f64 }))
    });
    let report = run_simulated(config, quiet(2), &mut pattern).unwrap();
    assert_no_oversubscription(&report, 6);
}

#[test]
fn sal_barriers_hold_across_the_stack() {
    // No analysis may start before every simulation of its iteration ended.
    let config = ResourceConfig::new("xsede.stampede", 16, SimDuration::from_secs(1_000_000));
    let mut pattern = SimulationAnalysisLoop::new(
        2,
        16,
        |_, i| KernelCall::new("misc.sleep", json!({ "secs": 3.0 + (i % 4) as f64 })),
        |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
    );
    let report = run_simulated(config, quiet(3), &mut pattern).unwrap();
    let sims: Vec<_> = report
        .tasks
        .iter()
        .filter(|t| t.stage == "simulation")
        .collect();
    let anas: Vec<_> = report
        .tasks
        .iter()
        .filter(|t| t.stage == "analysis")
        .collect();
    assert_eq!(anas.len(), 2);
    // First analysis (earliest exec_start) must start after the first 16
    // simulations' exec_stop.
    let mut ana_starts: Vec<_> = anas.iter().filter_map(|t| t.exec_start).collect();
    ana_starts.sort();
    let mut sim_stops: Vec<_> = sims.iter().filter_map(|t| t.exec_stop).collect();
    sim_stops.sort();
    assert!(
        ana_starts[0] >= sim_stops[15],
        "analysis started before its iteration's simulations finished"
    );
}

#[test]
fn ee_exchange_waits_for_all_replicas_in_global_mode() {
    let n = 12;
    let config = ResourceConfig::new("lsu.supermic", n, SimDuration::from_secs(1_000_000));
    let mut pattern = EnsembleExchange::new(
        n,
        2,
        TemperatureLadder::geometric(n, 0.8, 2.0),
        |r, c, t| {
            KernelCall::new(
                "md.amber",
                json!({ "steps": 300, "n_atoms": 500, "temperature": t,
                        "seed": (r + 100 * c) as u64 }),
            )
        },
    );
    let report = run_simulated(config, quiet(4), &mut pattern).unwrap();
    let exchanges: Vec<_> = report
        .tasks
        .iter()
        .filter(|t| t.stage == "exchange")
        .collect();
    assert_eq!(exchanges.len(), 2);
    let sims: Vec<_> = report
        .tasks
        .iter()
        .filter(|t| t.stage == "simulation")
        .collect();
    let mut sim_stops: Vec<_> = sims.iter().filter_map(|t| t.exec_stop).collect();
    sim_stops.sort();
    let mut ex_starts: Vec<_> = exchanges.iter().filter_map(|t| t.exec_start).collect();
    ex_starts.sort();
    // First exchange starts only after the first n simulations ended.
    assert!(ex_starts[0] >= sim_stops[n - 1]);
}

#[test]
fn pairwise_async_overlaps_exchange_with_simulation() {
    // The defining property of the paper's EE description: no global
    // barrier — with heterogeneous segment lengths, some exchange happens
    // while other replicas still simulate.
    let n = 8;
    let config = ResourceConfig::new("lsu.supermic", n, SimDuration::from_secs(1_000_000));
    let mut pattern = EnsembleExchange::new(
        n,
        3,
        TemperatureLadder::geometric(n, 0.8, 2.0),
        |r, c, t| {
            // Very heterogeneous durations.
            KernelCall::new(
                "md.amber",
                json!({ "steps": 300 * (1 + (r % 4) as u64 * 4), "n_atoms": 500,
                        "temperature": t, "seed": (r + 10 * c) as u64 }),
            )
        },
    )
    .with_mode(ExchangeMode::PairwiseAsync);
    let report = run_simulated(config, quiet(5), &mut pattern).unwrap();
    let overlap = report
        .tasks
        .iter()
        .filter(|t| t.stage == "exchange")
        .filter_map(|e| Some((e.exec_start?, e.exec_stop?)))
        .any(|(es, ee)| {
            report
                .tasks
                .iter()
                .filter(|t| t.stage == "simulation")
                .filter_map(|s| Some((s.exec_start?, s.exec_stop?)))
                .any(|(ss, se)| ss < ee && es < se)
        });
    assert!(
        overlap,
        "pairwise-async exchanges should overlap simulations"
    );
}

#[test]
fn sequence_composition_runs_end_to_end() {
    let prep = BagOfTasks::new(4, |_| KernelCall::new("misc.sleep", json!({ "secs": 1.0 })));
    let sal = SimulationAnalysisLoop::new(
        1,
        4,
        |_, i| KernelCall::new("md.amber", json!({ "steps": 300, "seed": i })),
        |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
    );
    let mut seq = SequencePattern::new(vec![Box::new(prep), Box::new(sal)]);
    let config = ResourceConfig::new("local", 4, SimDuration::from_secs(1_000_000));
    let report = run_simulated(config, quiet(6), &mut seq).unwrap();
    assert_eq!(report.task_count(), 4 + 4 + 1);
    assert_eq!(report.failed_tasks, 0);
    // Sequencing: all "task"-stage work ends before any SAL simulation starts.
    let prep_stop = report
        .tasks
        .iter()
        .filter(|t| t.stage == "task")
        .filter_map(|t| t.exec_stop)
        .max()
        .unwrap();
    let sim_start = report
        .tasks
        .iter()
        .filter(|t| t.stage == "simulation")
        .filter_map(|t| t.exec_start)
        .min()
        .unwrap();
    assert!(sim_start >= prep_stop);
}

#[test]
fn decoupling_more_tasks_than_cores() {
    // The pilot abstraction's raison d'être (paper §III-A): express 10×
    // more tasks than cores and have them execute in waves.
    let cores = 10;
    let tasks = 100;
    let config = ResourceConfig::new("xsede.comet", cores, SimDuration::from_secs(1_000_000));
    let mut pattern = BagOfTasks::new(tasks, |_| {
        KernelCall::new("misc.sleep", json!({ "secs": 10.0 }))
    });
    let report = run_simulated(config, quiet(7), &mut pattern).unwrap();
    assert_eq!(report.task_count(), tasks);
    assert_eq!(report.failed_tasks, 0);
    let exec = report.exec_time().as_secs_f64();
    assert!(
        (100.0..110.0).contains(&exec),
        "10 waves of 10 s expected, got {exec}"
    );
    assert_no_oversubscription(&report, cores);
}

#[test]
fn pst_workflow_runs_on_the_simulated_stack() {
    use entk_core::{Pipeline, PstTask, PstWorkflow, Stage};
    let wf = |label: &str| {
        Pipeline::new(label)
            .with_stage(
                Stage::new("prepare")
                    .with_task(PstTask::new(
                        "gen",
                        KernelCall::new("misc.mkfile", json!({ "bytes": 2048 })),
                    ))
                    .with_task(PstTask::new(
                        "gen2",
                        KernelCall::new("misc.mkfile", json!({ "bytes": 2048 })),
                    )),
            )
            .with_stage(Stage::new("run").with_task(PstTask::new(
                "md",
                KernelCall::new("md.amber", json!({ "steps": 300, "n_atoms": 500 })),
            )))
    };
    let mut workflow = PstWorkflow::new(vec![wf("a"), wf("b")]);
    let config = ResourceConfig::new("xsede.comet", 8, SimDuration::from_secs(1_000_000));
    let report = run_simulated(config, quiet(61), &mut workflow).unwrap();
    assert_eq!(report.task_count(), 6);
    assert_eq!(report.failed_tasks, 0);
    // Stage barrier held per pipeline: every "run" starts after both of its
    // pipeline's "prepare" tasks... check globally per tag namespace is
    // internal; at minimum no run task starts before the earliest two
    // prepare completions.
    let mut prep_stops: Vec<_> = report
        .tasks
        .iter()
        .filter(|t| t.stage == "prepare")
        .filter_map(|t| t.exec_stop)
        .collect();
    prep_stops.sort();
    let first_run = report
        .tasks
        .iter()
        .filter(|t| t.stage == "run")
        .filter_map(|t| t.exec_start)
        .min()
        .unwrap();
    assert!(first_run >= prep_stops[1]);
}

#[test]
fn concurrent_composition_runs_on_the_simulated_stack() {
    use entk_core::ConcurrentPatterns;
    let bag = BagOfTasks::new(6, |_| KernelCall::new("misc.sleep", json!({ "secs": 5.0 })));
    let sal = SimulationAnalysisLoop::new(
        1,
        4,
        |_, i| KernelCall::new("md.amber", json!({ "steps": 300, "seed": i })),
        |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
    );
    let mut cp = ConcurrentPatterns::new(vec![Box::new(bag), Box::new(sal)]);
    let config = ResourceConfig::new("xsede.comet", 16, SimDuration::from_secs(1_000_000));
    let report = run_simulated(config, quiet(62), &mut cp).unwrap();
    assert_eq!(report.task_count(), 6 + 4 + 1);
    assert_eq!(report.failed_tasks, 0);
    // Both children's work interleaves: some bag task overlaps some SAL sim.
    let overlap = report
        .tasks
        .iter()
        .filter(|t| t.stage == "task")
        .filter_map(|t| Some((t.exec_start?, t.exec_stop?)))
        .any(|(bs, be)| {
            report
                .tasks
                .iter()
                .filter(|t| t.stage == "simulation")
                .filter_map(|t| Some((t.exec_start?, t.exec_stop?)))
                .any(|(ss, se)| ss < be && bs < se)
        });
    assert!(overlap, "concurrent children should interleave");
}

#[test]
fn node_crash_shrinks_the_pilot_and_retries_absorb_the_loss() {
    // 24 × 30s tasks on 16 cores spanning two 8-core nodes of the local
    // platform. At t=15 the first wave saturates the pilot, so crashing
    // node 1 must kill in-flight units; the retry budget reruns them on
    // the surviving 8 cores and the ensemble still completes.
    let n = 24;
    let config = ResourceConfig::new("local", 16, SimDuration::from_secs(1_000_000));
    let sim = SimulatedConfig {
        fault: FaultConfig::retries(4),
        fault_profile: Some(FaultProfile::seeded(3).with_crash_at(15.0, 1)),
        ..quiet(3)
    };
    let mut pattern = BagOfTasks::new(n, |_| {
        KernelCall::new("misc.sleep", json!({ "secs": 30.0 }))
    });
    let report = run_simulated(config, sim, &mut pattern).unwrap();
    assert_eq!(report.task_count(), n);
    assert_eq!(report.failed_tasks, 0);
    assert!(!report.partial);
    assert!(
        report.total_retries > 0,
        "a crash under a saturated pilot must kill units"
    );
    assert!(report.recovered_tasks() > 0);
    assert!(report.overheads.failure_lost > SimDuration::ZERO);
    assert!(report.tasks.iter().all(|t| t.success));
}

#[test]
fn losing_every_node_degrades_gracefully_into_a_partial_report() {
    // Both nodes under the 16-core pilot crash mid-run. Without graceful
    // degradation this is a hard error; with it, the session finishes with
    // every unfinished task failed and the report marked partial.
    let n = 24;
    let config = ResourceConfig::new("local", 16, SimDuration::from_secs(1_000_000));
    let profile = FaultProfile::seeded(5)
        .with_crash_at(15.0, 0)
        .with_crash_at(15.0, 1);
    let sim = SimulatedConfig {
        fault: FaultConfig::retries(2).graceful(),
        fault_profile: Some(profile.clone()),
        ..quiet(5)
    };
    let mut pattern = BagOfTasks::new(n, |_| {
        KernelCall::new("misc.sleep", json!({ "secs": 30.0 }))
    });
    let report = run_simulated(config, sim, &mut pattern).unwrap();
    assert!(
        report.partial,
        "losing all nodes must mark the report partial"
    );
    assert!(report.failed_tasks > 0);
    assert_eq!(report.task_count(), n);
    assert!(report.tasks.iter().all(|t| t.finished.is_some()));

    // The same session without `graceful()` aborts with an error instead.
    let strict = SimulatedConfig {
        fault: FaultConfig::retries(2),
        fault_profile: Some(profile),
        ..quiet(5)
    };
    let mut pattern = BagOfTasks::new(n, |_| {
        KernelCall::new("misc.sleep", json!({ "secs": 30.0 }))
    });
    let config = ResourceConfig::new("local", 16, SimDuration::from_secs(1_000_000));
    assert!(run_simulated(config, strict, &mut pattern).is_err());
}
