//! Property-based tests over the full stack: random pattern shapes and
//! seeds must always complete with exact task conservation.

use entk_core::prelude::*;
use entk_core::EntkOverheads;
use proptest::prelude::*;
use serde_json::json;

fn quiet(seed: u64) -> SimulatedConfig {
    SimulatedConfig {
        seed,
        entk_overheads: EntkOverheads::zero(),
        runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any ensemble-of-pipelines shape completes with pipelines × stages
    /// successful tasks, never oversubscribing the pilot.
    #[test]
    fn prop_pipelines_complete(
        pipelines in 1usize..20,
        stages in 1usize..5,
        cores in 1usize..16,
        seed in 0u64..1000,
    ) {
        let config = ResourceConfig::new("local", cores.min(32), SimDuration::from_secs(10_000_000));
        let mut pattern = EnsembleOfPipelines::new(pipelines, stages, |p, s| {
            KernelCall::new("misc.sleep", json!({ "secs": 1.0 + ((p + s) % 3) as f64 }))
        });
        let report = run_simulated(config, quiet(seed), &mut pattern).unwrap();
        prop_assert_eq!(report.task_count(), pipelines * stages);
        prop_assert_eq!(report.failed_tasks, 0);
        prop_assert!(report.tasks.iter().all(|t| t.success && t.finished.is_some()));
    }

    /// Any SAL shape completes with iterations × (sims + 1) tasks and
    /// simulations always precede their iteration's analysis.
    #[test]
    fn prop_sal_completes(
        iterations in 1usize..4,
        sims in 1usize..12,
        cores in 1usize..16,
        seed in 0u64..1000,
    ) {
        let config = ResourceConfig::new("local", cores.min(32), SimDuration::from_secs(10_000_000));
        let mut pattern = SimulationAnalysisLoop::new(
            iterations,
            sims,
            |_, i| KernelCall::new("misc.sleep", json!({ "secs": 1.0 + (i % 2) as f64 })),
            |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
        );
        let report = run_simulated(config, quiet(seed), &mut pattern).unwrap();
        prop_assert_eq!(report.task_count(), iterations * (sims + 1));
        prop_assert_eq!(report.failed_tasks, 0);
        prop_assert_eq!(pattern.completed_iterations(), iterations);
    }

    /// Any EE shape completes in both exchange modes with replicas × cycles
    /// MD segments and a rung permutation at the end.
    #[test]
    fn prop_ee_completes(
        replicas in 2usize..10,
        cycles in 1usize..4,
        pairwise in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let config = ResourceConfig::new("local", replicas.min(32), SimDuration::from_secs(10_000_000));
        let mode = if pairwise {
            ExchangeMode::PairwiseAsync
        } else {
            ExchangeMode::GlobalSynchronous
        };
        let mut pattern = EnsembleExchange::new(
            replicas,
            cycles,
            TemperatureLadder::geometric(replicas, 0.8, 2.0),
            |r, c, t| {
                KernelCall::new(
                    "md.amber",
                    json!({ "steps": 300, "n_atoms": 200, "temperature": t,
                            "seed": (r * 17 + c) as u64 }),
                )
            },
        )
        .with_mode(mode);
        let report = run_simulated(config, quiet(seed), &mut pattern).unwrap();
        let md = report.tasks.iter().filter(|t| t.stage == "simulation").count();
        prop_assert_eq!(md, replicas * cycles);
        prop_assert_eq!(report.failed_tasks, 0);
        let mut rungs = pattern.rungs().to_vec();
        rungs.sort_unstable();
        prop_assert_eq!(rungs, (0..replicas).collect::<Vec<_>>());
    }

    /// Identical seeds reproduce identical virtual timelines.
    #[test]
    fn prop_seeded_determinism(seed in 0u64..10_000) {
        let run = || {
            let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
            let mut pattern = BagOfTasks::new(12, |i| {
                KernelCall::new("misc.sleep", json!({ "secs": 1.0 + (i % 4) as f64 }))
            });
            run_simulated(
                config,
                SimulatedConfig { seed, ..Default::default() },
                &mut pattern,
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.ttc, b.ttc);
        prop_assert_eq!(
            a.tasks.iter().map(|t| t.exec_start).collect::<Vec<_>>(),
            b.tasks.iter().map(|t| t.exec_start).collect::<Vec<_>>()
        );
    }

    /// Failure injection with enough retries always converges to success.
    #[test]
    fn prop_retries_absorb_failures(
        rate in 0.0f64..0.4,
        tasks in 1usize..20,
        seed in 0u64..1000,
    ) {
        let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
        let sim = SimulatedConfig {
            seed,
            unit_failure_rate: rate,
            fault: entk_core::FaultConfig::retries(50),
            entk_overheads: EntkOverheads::zero(),
            runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
            ..Default::default()
        };
        let mut pattern = BagOfTasks::new(tasks, |_| {
            KernelCall::new("misc.sleep", json!({ "secs": 1.0 }))
        });
        let report = run_simulated(config, sim, &mut pattern).unwrap();
        prop_assert_eq!(report.failed_tasks, 0);
        prop_assert_eq!(report.task_count(), tasks);
    }

    /// Under platform fault injection, identical seeds reproduce
    /// byte-identical reports — the replay guarantee the resilience
    /// tooling depends on.
    #[test]
    fn prop_faulty_runs_replay_identically(
        rate in 0.0f64..0.4,
        retries in 0u32..6,
        seed in 0u64..1000,
    ) {
        let run = || {
            let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
            let sim = SimulatedConfig {
                fault: entk_core::FaultConfig::retries(retries)
                    .with_backoff(entk_core::BackoffPolicy::exponential(2.0))
                    .graceful(),
                fault_profile: Some(
                    entk_core::FaultProfile::seeded(seed ^ 0xFA).with_task_failures(rate),
                ),
                ..quiet(seed)
            };
            let mut pattern = BagOfTasks::new(16, |i| {
                KernelCall::new("misc.sleep", json!({ "secs": 1.0 + (i % 3) as f64 }))
            });
            run_simulated(config, sim, &mut pattern).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// A zero-rate fault injector is free: its presence changes nothing
    /// about the run, byte for byte.
    #[test]
    fn prop_zero_fault_injector_is_invisible(
        tasks in 1usize..20,
        seed in 0u64..1000,
    ) {
        let run = |profile: Option<entk_core::FaultProfile>| {
            let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
            let sim = SimulatedConfig { fault_profile: profile, ..quiet(seed) };
            let mut pattern = BagOfTasks::new(tasks, |i| {
                KernelCall::new("misc.sleep", json!({ "secs": 1.0 + (i % 4) as f64 }))
            });
            run_simulated(config, sim, &mut pattern).unwrap()
        };
        let with_injector = run(Some(entk_core::FaultProfile::seeded(seed)));
        let without = run(None);
        prop_assert_eq!(
            serde_json::to_string(&with_injector).unwrap(),
            serde_json::to_string(&without).unwrap()
        );
    }

    /// Seeded replays produce bit-identical traces: the full event stream
    /// (JSONL export) and the metrics snapshot are byte-for-byte equal
    /// across two runs with the same seed, even under fault injection.
    #[test]
    fn prop_traces_replay_identically(
        rate in 0.0f64..0.4,
        retries in 0u32..6,
        seed in 0u64..1000,
    ) {
        let run = || {
            let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
            let sim = SimulatedConfig {
                fault: entk_core::FaultConfig::retries(retries)
                    .with_backoff(entk_core::BackoffPolicy::exponential(2.0))
                    .graceful(),
                fault_profile: Some(
                    entk_core::FaultProfile::seeded(seed ^ 0xFA).with_task_failures(rate),
                ),
                ..quiet(seed)
            };
            let mut pattern = BagOfTasks::new(16, |i| {
                KernelCall::new("misc.sleep", json!({ "secs": 1.0 + (i % 3) as f64 }))
            });
            run_simulated_traced(config, sim, &mut pattern).unwrap()
        };
        let ((_, ta), (_, tb)) = (run(), run());
        prop_assert_eq!(ta.tracer.to_jsonl(), tb.tracer.to_jsonl());
        prop_assert_eq!(format!("{:?}", ta.metrics), format!("{:?}", tb.metrics));
    }

    /// The overhead breakdown recomputed from the trace agrees with the
    /// analytically accounted one on every random shape, seed, and fault
    /// grid point — the end-to-end cross-validation guarantee.
    #[test]
    fn prop_trace_breakdown_matches_accounting(
        pipelines in 1usize..10,
        stages in 1usize..4,
        rate in 0.0f64..0.4,
        retries in 0u32..6,
        seed in 0u64..1000,
    ) {
        let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
        let sim = SimulatedConfig {
            seed,
            fault: entk_core::FaultConfig::retries(retries)
                .with_backoff(entk_core::BackoffPolicy::exponential(2.0))
                .graceful(),
            fault_profile: Some(
                entk_core::FaultProfile::seeded(seed ^ 0xFA).with_task_failures(rate),
            ),
            ..Default::default()
        };
        let mut pattern = EnsembleOfPipelines::new(pipelines, stages, |p, s| {
            KernelCall::new("misc.sleep", json!({ "secs": 1.0 + ((p + s) % 3) as f64 }))
        });
        let (report, telemetry) = run_simulated_traced(config, sim, &mut pattern).unwrap();
        let cc = cross_check(&report, &telemetry.tracer);
        prop_assert!(
            cc.within(1e-6),
            "trace/accounting divergence {:.3e}s (derived {:?}, accounted {:?})",
            cc.max_abs_error_secs, cc.derived, cc.accounted
        );
    }

    /// No task ever consumes more resubmissions than the retry budget, and
    /// the report's total matches the per-task sum.
    #[test]
    fn prop_retries_respect_budget(
        rate in 0.0f64..0.6,
        retries in 0u32..5,
        seed in 0u64..1000,
    ) {
        let config = ResourceConfig::new("local", 8, SimDuration::from_secs(10_000_000));
        let sim = SimulatedConfig {
            fault: entk_core::FaultConfig::retries(retries).graceful(),
            fault_profile: Some(
                entk_core::FaultProfile::seeded(seed ^ 0xFA).with_task_failures(rate),
            ),
            ..quiet(seed)
        };
        let mut pattern = BagOfTasks::new(16, |_| {
            KernelCall::new("misc.sleep", json!({ "secs": 1.0 }))
        });
        let report = run_simulated(config, sim, &mut pattern).unwrap();
        for t in &report.tasks {
            prop_assert!(
                t.retries <= retries,
                "task {} used {} retries with budget {}", t.uid, t.retries, retries
            );
        }
        let total: u32 = report.tasks.iter().map(|t| t.retries).sum();
        prop_assert_eq!(report.total_retries, total);
        prop_assert_eq!(report.partial, report.failed_tasks > 0);
    }
}
