//! The paper's figure claims as tests, at reduced scale: every qualitative
//! statement the evaluation section makes must hold in this reproduction.
//! (Full-scale numbers live in EXPERIMENTS.md / `cargo run -p entk-bench`.)

use entk_bench::{fig3, fig4, fig5, fig6, fig7, fig9, Row, SweepRunner};

fn series(rows: &[Row], name: &str, value: &str) -> Vec<f64> {
    rows.iter()
        .filter(|r| r.series.contains(name))
        .map(|r| r.value(value).expect("value present"))
        .collect()
}

#[test]
fn fig3_claims_exec_flat_core_constant_pattern_linear() {
    let rows = fig3(2016);
    // "application execution times remain relatively similar at all the
    // configurations across patterns"
    for kind in ["pipeline", "sal", "ee"] {
        let exec = series(&rows, kind, "exec_time");
        let min = exec.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = exec.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.5, "{kind} exec time flat: {exec:?}");
    }
    // "The Core overhead … remains constant in all the configurations"
    let core = series(&rows, "pipeline", "core_overhead");
    let cmin = core.iter().cloned().fold(f64::INFINITY, f64::min);
    let cmax = core.iter().cloned().fold(0.0, f64::max);
    assert!(cmax / cmin < 1.3, "core overhead constant: {core:?}");
    // "The … Pattern overhead … depends on the number of tasks"
    let pat = series(&rows, "pipeline", "pattern_overhead");
    assert!(
        pat.last().unwrap() > &(4.0 * pat[0]),
        "pattern ∝ tasks: {pat:?}"
    );
}

#[test]
fn fig4_claim_kernel_swap_leaves_overheads_unchanged() {
    let f3 = fig3(2016);
    let f4 = fig4(2016);
    // "changing the kernel plugins … does not effect the overhead"
    let core3 = series(&f3, "sal", "core_overhead");
    let core4 = series(&f4, "gromacs-lsdmap", "core_overhead");
    for (a, b) in core3.iter().zip(&core4) {
        assert!(
            (a - b).abs() / a.max(*b) < 0.3,
            "core overhead invariant under kernel swap: {core3:?} vs {core4:?}"
        );
    }
    let pat4 = series(&f4, "gromacs-lsdmap", "pattern_overhead");
    assert!(
        pat4.last().unwrap() > &(4.0 * pat4[0]),
        "still ∝ tasks: {pat4:?}"
    );
}

#[test]
fn fig5_claims_sim_halves_exchange_constant() {
    let replicas = 160;
    let rows = fig5(2016, 16); // 160 replicas, cores 1..160
                               // "simulation time decreases to half its value when the number of
                               // cores are doubled": at reduced scale, core counts do not divide the
                               // replica count evenly, so check the exact law the halving comes from —
                               // simulation time ∝ number of execution waves, ceil(R / cores).
    let per_wave: Vec<f64> = rows
        .iter()
        .map(|r| {
            let waves = (replicas as f64 / r.x).ceil();
            r.value("simulation_time").unwrap() / waves
        })
        .collect();
    let min = per_wave.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_wave.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.4,
        "sim time ∝ waves (constant per-wave time): {per_wave:?}"
    );
    // "The exchange times … remain constant"
    let ex = series(&rows, "replicas", "exchange_time");
    let emin = ex.iter().cloned().fold(f64::INFINITY, f64::min);
    let emax = ex.iter().cloned().fold(0.0, f64::max);
    assert!(emax / emin < 1.5, "exchange constant: {ex:?}");
}

#[test]
fn fig6_claims_sim_constant_exchange_grows() {
    let rows = fig6(2016, 8); // replicas = cores, 2..320
    let sim = series(&rows, "replicas", "simulation_time");
    let smin = sim.iter().cloned().fold(f64::INFINITY, f64::min);
    let smax = sim.iter().cloned().fold(0.0, f64::max);
    // "the simulation time remains relatively constant"
    assert!(smax / smin < 1.6, "weak-scaled sim flat: {sim:?}");
    // "The exchange times, however, increases … depends on the number of
    // replicas"
    let ex = series(&rows, "replicas", "exchange_time");
    assert!(
        ex.last().unwrap() > &(2.0 * ex[0]),
        "exchange grows with replicas: {ex:?}"
    );
}

#[test]
fn fig7_claims_sim_linear_analysis_constant() {
    let rows = fig7(2016, 8); // 128 sims, cores 8..128
    let sim = series(&rows, "sims", "simulation_time");
    for pair in sim.windows(2) {
        assert!(
            pair[1] < pair[0],
            "strong scaling decreases sim time: {sim:?}"
        );
    }
    // end-to-end speedup close to the core ratio
    let speedup = sim[0] / sim.last().unwrap();
    assert!(speedup > 8.0, "16× cores ⇒ ≥8× faster: {speedup}");
    // "the analysis execution time remains constant for all configurations"
    let ana = series(&rows, "sims", "analysis_time");
    let amin = ana.iter().cloned().fold(f64::INFINITY, f64::min);
    let amax = ana.iter().cloned().fold(0.0, f64::max);
    assert!(amax / amin < 1.3, "analysis constant: {ana:?}");
}

/// Parallel sweeps must be bit-identical to serial ones: each point's
/// simulation is deterministic in its seed, and the runner reassembles rows
/// in input-point order. `ENTK_THREADS` forces multi-threaded execution
/// even on single-core hosts; it is harmless to concurrent tests because
/// results never depend on the thread count.
#[test]
fn parallel_sweep_rows_are_bit_identical_to_serial() {
    std::env::set_var("ENTK_THREADS", "4");
    type SweepFn = Box<dyn Fn(&SweepRunner) -> Vec<Row>>;
    let checks: Vec<(&str, SweepFn)> = vec![
        ("fig3", Box::new(|r| entk_bench::fig3_with(r, 2016))),
        ("fig4", Box::new(|r| entk_bench::fig4_with(r, 2016))),
        ("fig5", Box::new(|r| entk_bench::fig5_with(r, 2016, 64))),
        ("fig8", Box::new(|r| entk_bench::fig8_with(r, 2016, 64))),
        ("fig9", Box::new(|r| entk_bench::fig9_with(r, 2016, 16))),
        (
            "ablation_faults",
            Box::new(|r| entk_bench::ablation_faults_with(r, 2016)),
        ),
    ];
    for (name, sweep) in checks {
        let serial = sweep(&SweepRunner::serial());
        let parallel = sweep(&SweepRunner::parallel());
        assert_eq!(serial, parallel, "{name}: parallel rows diverged");
        assert!(!serial.is_empty(), "{name}: sweep produced no rows");
    }
    std::env::remove_var("ENTK_THREADS");
}

#[test]
fn fig9_claim_mpi_execution_drops_linearly() {
    let rows = fig9(2016, 8); // 8 sims, cores/sim 1,16,32,64
    let exec = series(&rows, "sims", "mean_sim_exec");
    // "execution time of the simulations drops linearly with the number of
    // cores used"
    assert!(
        exec.windows(2).all(|w| w[1] < w[0]),
        "monotone drop: {exec:?}"
    );
    assert!(exec[0] / exec[1] > 8.0, "1→16 cores ⇒ ≥8×: {exec:?}");
}
