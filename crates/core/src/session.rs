//! The backend-agnostic session engine.
//!
//! One implementation of the execution-plugin lifecycle (allocate → run →
//! deallocate) shared by every backend: pattern driving, the dense task
//! table, the retry/backoff/kill-replace fault policy, graceful
//! degradation, telemetry subjects, and `TaskRecord`/`OverheadBreakdown`
//! assembly. The backend-specific half — how units execute and what the
//! clock is — sits behind [`ExecutionBackend`]; see [`crate::backend`].

use crate::backend::{BackendEvent, ExecutionBackend, Poll, UnitSpec, RETRY_BATCH};
use crate::error::EntkError;
use crate::fault::FaultConfig;
use crate::overheads::EntkOverheads;
use crate::pattern::ExecutionPattern;
use crate::report::{ExecutionReport, OverheadBreakdown, TaskRecord};
use crate::task::{Task, TaskResult};
use entk_sim::{DenseStore, SharedTelemetry, SimDuration, SimRng, SimTime, Subject};

struct TaskEntry {
    task: Task,
    /// Backend unit key of the current attempt.
    unit: Option<u64>,
    record: TaskRecord,
    terminal: bool,
    /// When the current attempt was submitted to the backend; consumed on
    /// failure to account the attempt's wall time as failure-lost.
    attempt_started: Option<SimTime>,
}

enum SessionState {
    Created,
    Allocated,
    Deallocated,
}

/// An event the session wants scheduled on the backend's clock. Collected
/// during processing and flushed in order at the end of each pass, so
/// queue-insertion order stays deterministic.
enum Outbound {
    Batch {
        delay: SimDuration,
        batch: u64,
        uids: Vec<u64>,
    },
    DeferredFailure {
        uid: u64,
    },
}

/// The backend-independent half of the execution layer.
///
/// Owns everything a session needs regardless of where units run: the
/// pattern-driving loop, the dense task table, retry/backoff/kill-replace
/// fault handling, graceful degradation when all capacity is lost,
/// telemetry, and report assembly. Drives any [`ExecutionBackend`] through
/// the same lifecycle; `ResourceHandle` pairs one engine with one backend.
pub struct SessionEngine {
    entk: EntkOverheads,
    fault: FaultConfig,
    /// Master stream: init/teardown/spawn overhead samples plus the cost
    /// and model-execution draws the backend takes through `&mut SimRng`
    /// arguments — one stream, in event order.
    rng: SimRng,
    /// Dedicated stream for retry-backoff jitter, so backoff draws never
    /// perturb kernel cost sampling.
    retry_rng: SimRng,
    /// Shared trace/metrics pipeline; the same handle the backend's layers
    /// record into, so all layers append to one interleaved record.
    telemetry: SharedTelemetry,
    /// Dense store keyed by the task uid; never removed from.
    tasks: DenseStore<TaskEntry>,
    /// Backend unit key → task uid for the current attempt of each task.
    unit_to_task: DenseStore<u64>,
    next_uid: u64,
    /// Id of the next spawn batch; pairs `tasks_created`/`tasks_submitted`
    /// trace events so pattern overhead can be re-derived from the trace.
    next_batch: u64,
    live_tasks: usize,
    failed_tasks: usize,
    total_retries: u32,
    core_overhead: SimDuration,
    pattern_overhead: SimDuration,
    failure_lost: SimDuration,
    degraded: bool,
    clock_marked: bool,
    outbox: Vec<Outbound>,
    /// Task results awaiting delivery to the pattern.
    pending_results: Vec<TaskResult>,
    state: SessionState,
}

impl SessionEngine {
    /// Creates a session engine. `telemetry` must be the same pipeline the
    /// backend's layers record into (pass a disabled handle for real-time
    /// backends with no virtual-clock trace).
    pub fn new(
        entk: EntkOverheads,
        fault: FaultConfig,
        seed: u64,
        telemetry: SharedTelemetry,
    ) -> Self {
        SessionEngine {
            entk,
            fault,
            rng: SimRng::seed_from_u64(seed),
            retry_rng: SimRng::seed_from_u64(seed ^ 0xBAC0_0FF5),
            telemetry,
            tasks: DenseStore::new(),
            unit_to_task: DenseStore::new(),
            next_uid: 0,
            next_batch: 0,
            live_tasks: 0,
            failed_tasks: 0,
            total_retries: 0,
            core_overhead: SimDuration::ZERO,
            pattern_overhead: SimDuration::ZERO,
            failure_lost: SimDuration::ZERO,
            degraded: false,
            clock_marked: false,
            outbox: Vec::new(),
            pending_results: Vec::new(),
            state: SessionState::Created,
        }
    }

    /// The shared cross-layer trace/metrics pipeline.
    pub fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    // ---------------------------------------------------------- lifecycle

    /// Acquires resources: pays the toolkit init overhead, boots the
    /// backend, and waits (on the backend's clock) until the allocation is
    /// usable.
    pub fn allocate(&mut self, backend: &mut dyn ExecutionBackend) -> Result<(), EntkError> {
        if !matches!(self.state, SessionState::Created) {
            return Err(EntkError::Usage("allocate() called twice".into()));
        }
        self.telemetry
            .record(backend.now(), "entk", "session_start", Subject::Session);
        let init = if backend.virtual_time() {
            let init = self.entk.init.sample_duration(&mut self.rng)
                + self.entk.resource_request.sample_duration(&mut self.rng);
            self.core_overhead += init;
            init
        } else {
            SimDuration::ZERO
        };
        backend.begin_session(init);
        loop {
            if backend.allocation_ready() {
                break;
            }
            if backend.capacity_lost() {
                return Err(EntkError::Resource("pilots failed to start".into()));
            }
            match backend.poll() {
                Poll::Events(events) => self.process_events(events, backend, None),
                Poll::Drained => {
                    if backend.allocation_ready() {
                        break;
                    }
                    return Err(EntkError::Runtime(
                        "simulation drained before reaching the expected state".into(),
                    ));
                }
            }
        }
        self.state = SessionState::Allocated;
        Ok(())
    }

    /// Runs an execution pattern to completion on the allocated backend.
    pub fn run(
        &mut self,
        backend: &mut dyn ExecutionBackend,
        pattern: &mut dyn ExecutionPattern,
    ) -> Result<ExecutionReport, EntkError> {
        if !matches!(self.state, SessionState::Allocated) {
            return Err(EntkError::Usage("run() requires allocate() first".into()));
        }
        let initial = pattern.on_start();
        if initial.is_empty() && !pattern.is_done() {
            return Err(EntkError::Usage(
                "pattern emitted no initial tasks but is not done".into(),
            ));
        }
        let now = backend.now();
        self.spawn_tasks(initial, now, backend.virtual_time());
        self.flush_outbox(backend);
        // The cheap live-task check short-circuits first: `is_done` may
        // cost O(pattern size) and this loop runs once per event.
        loop {
            if self.live_tasks == 0 && pattern.is_done() {
                break;
            }
            if backend.capacity_lost() {
                if self.fault.graceful {
                    self.degrade(backend, pattern);
                    break;
                }
                return Err(EntkError::Runtime(format!(
                    "all pilots terminated mid-run; pattern at: {}",
                    pattern.progress()
                )));
            }
            match backend.poll() {
                Poll::Events(events) => self.process_events(events, backend, Some(pattern)),
                Poll::Drained => {
                    if self.live_tasks == 0 && pattern.is_done() {
                        break;
                    }
                    return Err(EntkError::Runtime(format!(
                        "simulation drained before pattern completion: {}",
                        pattern.progress()
                    )));
                }
            }
        }
        Ok(self.build_report(pattern.name(), backend))
    }

    /// Releases resources; returns the final session report (including
    /// teardown in the core overhead and total TTC).
    pub fn deallocate(
        &mut self,
        backend: &mut dyn ExecutionBackend,
    ) -> Result<ExecutionReport, EntkError> {
        if !matches!(self.state, SessionState::Allocated) {
            return Err(EntkError::Usage("deallocate() requires allocate()".into()));
        }
        backend.begin_shutdown();
        loop {
            if backend.pilots_terminal() {
                break;
            }
            match backend.poll() {
                Poll::Events(events) => self.process_events(events, backend, None),
                Poll::Drained => {
                    if backend.pilots_terminal() {
                        break;
                    }
                    return Err(EntkError::Runtime(
                        "simulation drained before reaching the expected state".into(),
                    ));
                }
            }
        }
        if backend.virtual_time() {
            let teardown = self.entk.teardown.sample_duration(&mut self.rng);
            self.core_overhead += teardown;
            self.clock_marked = false;
            self.telemetry
                .record(backend.now(), "entk", "teardown_start", Subject::Session);
            backend.schedule_clock_mark(teardown);
            // Do not drain to empty: background-load models keep the event
            // queue alive forever; stop once the teardown marker fires.
            loop {
                if self.clock_marked {
                    break;
                }
                match backend.poll() {
                    Poll::Events(events) => self.process_events(events, backend, None),
                    Poll::Drained => {
                        return Err(EntkError::Runtime(
                            "simulation drained before reaching the expected state".into(),
                        ));
                    }
                }
            }
        }
        self.state = SessionState::Deallocated;
        Ok(self.build_report("session", backend))
    }

    // -------------------------------------------------------------- tasks

    /// Registers pattern-emitted tasks and schedules their submission after
    /// the EnTK pattern overhead (zero on real-time backends, which pay no
    /// modeled overheads).
    fn spawn_tasks(&mut self, tasks: Vec<Task>, now: SimTime, virtual_time: bool) {
        if tasks.is_empty() {
            return;
        }
        let delay = if virtual_time {
            let n = tasks.len() as f64;
            let per = self.entk.task_create_per_task.sample(&mut self.rng);
            let fixed = self.entk.task_submit_fixed.sample(&mut self.rng);
            let delay = SimDuration::from_secs_f64(fixed + per * n);
            self.pattern_overhead += delay;
            delay
        } else {
            SimDuration::ZERO
        };
        let batch = self.next_batch;
        self.next_batch += 1;
        self.telemetry
            .record(now, "entk", "tasks_created", Subject::Batch(batch));
        let mut uids = Vec::with_capacity(tasks.len());
        for task in tasks {
            let uid = self.next_uid;
            self.next_uid += 1;
            self.live_tasks += 1;
            self.tasks.insert(
                uid,
                TaskEntry {
                    record: TaskRecord {
                        uid,
                        tag: task.tag,
                        stage: task.stage.clone(),
                        created: now,
                        exec_start: None,
                        exec_stop: None,
                        finished: None,
                        success: false,
                        retries: 0,
                        lost_to_failures: SimDuration::ZERO,
                    },
                    task,
                    unit: None,
                    terminal: false,
                    attempt_started: None,
                },
            );
            self.telemetry
                .record(now, "entk", "task_created", Subject::Task(uid));
            uids.push(uid);
        }
        self.outbox.push(Outbound::Batch { delay, batch, uids });
    }

    /// Binds a due batch to unit specs and submits them through the
    /// backend's prepare/commit protocol. Rejected tasks (unknown kernel,
    /// bad arguments, unrunnable binding) fail terminally before the
    /// runtime sees them, in batch order, exactly as the accounting and
    /// trace expect.
    fn submit_batch(&mut self, uids: Vec<u64>, backend: &mut dyn ExecutionBackend) {
        let now = backend.now();
        let specs: Vec<UnitSpec> = uids
            .iter()
            .filter_map(|&uid| {
                let entry = self.tasks.get(uid)?;
                if entry.terminal {
                    return None;
                }
                Some(UnitSpec {
                    uid,
                    stage: entry.task.stage.clone(),
                    kernel: entry.task.kernel.clone(),
                })
            })
            .collect();
        if specs.is_empty() {
            return;
        }
        let verdicts = backend.prepare_batch(&specs, &mut self.rng);
        debug_assert_eq!(verdicts.len(), specs.len());
        for (spec, verdict) in specs.iter().zip(&verdicts) {
            if verdict.is_some() {
                // A task failed before it could even be submitted (bad
                // kernel); it is terminal immediately. The pattern learns
                // about it through the deferred-failure queue, in a clean
                // processing pass.
                self.fail_unsubmittable(spec.uid, now);
            }
        }
        for (uid, key) in backend.commit_batch() {
            let Some(entry) = self.tasks.get_mut(uid) else {
                continue;
            };
            entry.unit = Some(key);
            entry.attempt_started = Some(now);
            self.telemetry
                .record(now, "entk", "task_submitted", Subject::Task(uid));
            self.unit_to_task.insert(key, uid);
            if let Some(timeout) = self.fault.task_timeout {
                backend.arm_timeout(uid, timeout);
            }
        }
    }

    /// Terminal failure for a task the backend refused to accept.
    fn fail_unsubmittable(&mut self, uid: u64, now: SimTime) {
        let Some(entry) = self.tasks.get_mut(uid) else {
            return;
        };
        entry.terminal = true;
        entry.record.finished = Some(now);
        entry.record.success = false;
        self.live_tasks -= 1;
        self.failed_tasks += 1;
        self.telemetry
            .record(now, "entk", "task_failed", Subject::Task(uid));
        self.telemetry.inc("entk.task_failures");
        self.outbox.push(Outbound::DeferredFailure { uid });
    }

    /// Kill-replace watchdog fired: cancel the running unit and retry.
    fn on_timeout(&mut self, uid: u64, backend: &mut dyn ExecutionBackend) {
        let Some(entry) = self.tasks.get(uid) else {
            return;
        };
        if entry.terminal {
            return;
        }
        if let Some(key) = entry.unit {
            if !backend.cancel_running_unit(key) {
                return; // already finishing; let the normal path handle it
            }
            self.unit_to_task.remove(key);
            self.retry_or_fail(
                uid,
                "kill-replace: task exceeded timeout",
                backend.now(),
                backend.virtual_time(),
            );
        }
    }

    /// The retry engine. Accounts the failed attempt's wall time (and any
    /// retry backoff) as failure-lost, then either resubmits the task after
    /// the backoff delay or reports terminal failure to the pattern once
    /// `max_retries` is exhausted.
    fn retry_or_fail(&mut self, uid: u64, reason: &str, now: SimTime, virtual_time: bool) {
        let backoff = self.fault.backoff;
        let max_retries = self.fault.max_retries;
        let Some(entry) = self.tasks.get_mut(uid) else {
            return;
        };
        let lost = entry
            .attempt_started
            .take()
            .map(|started| now.saturating_since(started))
            .unwrap_or(SimDuration::ZERO);
        entry.record.lost_to_failures += lost;
        self.failure_lost += lost;
        self.telemetry
            .record(now, "entk", "task_attempt_failed", Subject::Task(uid));
        if entry.record.retries < max_retries {
            entry.record.retries += 1;
            entry.unit = None;
            // Real-time backends cannot honor a modeled backoff wait, so
            // retries resubmit immediately and no jitter is drawn.
            let delay = if virtual_time {
                backoff.delay(entry.record.retries, &mut self.retry_rng)
            } else {
                SimDuration::ZERO
            };
            entry.record.lost_to_failures += delay;
            self.failure_lost += delay;
            self.total_retries += 1;
            // Stamped at the instant the backoff completes, so the backoff
            // charge is recoverable from the trace as (task_retry −
            // task_attempt_failed) even if the resubmission never runs.
            self.telemetry
                .record(now + delay, "entk", "task_retry", Subject::Task(uid));
            self.telemetry.inc("entk.retries");
            self.outbox.push(Outbound::Batch {
                delay,
                batch: RETRY_BATCH,
                uids: vec![uid],
            });
        } else {
            entry.terminal = true;
            entry.record.finished = Some(now);
            entry.record.success = false;
            self.live_tasks -= 1;
            self.failed_tasks += 1;
            self.telemetry
                .record(now, "entk", "task_failed", Subject::Task(uid));
            self.telemetry.inc("entk.task_failures");
            self.pending_results.push(TaskResult::failed(
                entry.task.tag,
                entry.task.stage.clone(),
                reason,
            ));
        }
    }

    /// Graceful degradation: the session lost every pilot mid-run and the
    /// fault policy asks to keep what we have. All live tasks fail in place
    /// and their results are delivered to the pattern; follow-up tasks it
    /// spawns fail the same way (there is nothing left to run them on),
    /// until the pattern stops emitting.
    fn degrade(&mut self, backend: &mut dyn ExecutionBackend, pattern: &mut dyn ExecutionPattern) {
        self.degraded = true;
        let now = backend.now();
        let virtual_time = backend.virtual_time();
        // Rounds are bounded: every round terminates all currently-live
        // tasks, and a pattern that keeps spawning replacements forever is
        // a bug we'd rather stop than loop on.
        for _ in 0..10_000 {
            // Uid order by construction: the store iterates densely.
            let live: Vec<u64> = self
                .tasks
                .iter()
                .filter(|(_, e)| !e.terminal)
                .map(|(uid, _)| uid)
                .collect();
            if live.is_empty() && self.pending_results.is_empty() {
                break;
            }
            for uid in live {
                let Some(entry) = self.tasks.get_mut(uid) else {
                    continue;
                };
                let started = entry.attempt_started.take();
                if started.is_some() {
                    self.telemetry
                        .record(now, "entk", "task_attempt_failed", Subject::Task(uid));
                }
                let lost = started
                    .map(|s| now.saturating_since(s))
                    .unwrap_or(SimDuration::ZERO);
                entry.record.lost_to_failures += lost;
                self.failure_lost += lost;
                entry.terminal = true;
                entry.record.finished = Some(now);
                entry.record.success = false;
                self.live_tasks -= 1;
                self.failed_tasks += 1;
                self.telemetry
                    .record(now, "entk", "task_failed", Subject::Task(uid));
                self.telemetry.inc("entk.task_failures");
                self.pending_results.push(TaskResult::failed(
                    entry.task.tag,
                    entry.task.stage.clone(),
                    "resource lost: all pilots terminated",
                ));
            }
            let results = std::mem::take(&mut self.pending_results);
            // The spawns below book pattern overhead, but their submission
            // events are discarded (`outbox.clear()`): that overhead is
            // never actually paid, so restore the accounted value after.
            let booked = self.pattern_overhead;
            for result in results {
                let follow_ups = pattern.on_task_done(&result);
                self.spawn_tasks(follow_ups, now, virtual_time);
            }
            self.pattern_overhead = booked;
            // Those spawns queued submission events that will never run.
            self.outbox.clear();
        }
    }

    // -------------------------------------------------------- event loop

    /// Applies one poll's worth of backend events, delivers queued results
    /// to the pattern (spawning follow-ups), and flushes newly scheduled
    /// work back onto the backend's clock — in that order, so trace records
    /// and queue insertions stay deterministic.
    fn process_events<'a, 'b>(
        &mut self,
        events: Vec<BackendEvent>,
        backend: &mut dyn ExecutionBackend,
        pattern: Option<&'a mut (dyn ExecutionPattern + 'b)>,
    ) {
        for event in events {
            match event {
                BackendEvent::BatchReady { batch, uids } => {
                    if batch != RETRY_BATCH {
                        self.telemetry.record(
                            backend.now(),
                            "entk",
                            "tasks_submitted",
                            Subject::Batch(batch),
                        );
                    }
                    self.submit_batch(uids, backend);
                }
                BackendEvent::TaskTimeout { uid } => self.on_timeout(uid, backend),
                BackendEvent::DeferredFailure { uid } => {
                    if let Some(entry) = self.tasks.get(uid) {
                        self.pending_results.push(TaskResult::failed(
                            entry.task.tag,
                            entry.task.stage.clone(),
                            "kernel binding failed",
                        ));
                    }
                }
                BackendEvent::UnitStarted { key, time } => {
                    if let Some(&uid) = self.unit_to_task.get(key) {
                        if let Some(e) = self.tasks.get_mut(uid) {
                            e.record.exec_start = Some(time);
                        }
                    }
                }
                BackendEvent::UnitDone { key, time } => {
                    let Some(&uid) = self.unit_to_task.get(key) else {
                        continue;
                    };
                    self.unit_to_task.remove(key);
                    self.complete_task(uid, key, time, backend);
                }
                BackendEvent::UnitFailed { key, time, reason } => {
                    let Some(&uid) = self.unit_to_task.get(key) else {
                        continue;
                    };
                    self.unit_to_task.remove(key);
                    self.retry_or_fail(uid, &reason, time, backend.virtual_time());
                }
                // Shrunk pilots keep running on their remaining cores; the
                // units they dropped arrive as `UnitFailed` events.
                BackendEvent::CapacityShrunk { .. } => {}
                BackendEvent::ClockMark => {
                    self.clock_marked = true;
                    self.telemetry
                        .record(backend.now(), "entk", "teardown_done", Subject::Session);
                }
            }
        }
        // Deliver queued results to the pattern, spawning follow-up tasks.
        if let Some(p) = pattern {
            let results = std::mem::take(&mut self.pending_results);
            for result in results {
                let follow_ups = p.on_task_done(&result);
                self.spawn_tasks(follow_ups, backend.now(), backend.virtual_time());
            }
        }
        self.flush_outbox(backend);
    }

    fn flush_outbox(&mut self, backend: &mut dyn ExecutionBackend) {
        for out in self.outbox.drain(..) {
            match out {
                Outbound::Batch { delay, batch, uids } => {
                    backend.schedule_batch(delay, batch, uids)
                }
                Outbound::DeferredFailure { uid } => backend.schedule_deferred_failure(uid),
            }
        }
    }

    fn complete_task(
        &mut self,
        uid: u64,
        key: u64,
        time: SimTime,
        backend: &mut dyn ExecutionBackend,
    ) {
        let kernel = match self.tasks.get(uid) {
            Some(e) => e.task.kernel.clone(),
            None => return,
        };
        let outcome = backend.complete_unit(key, &kernel, &mut self.rng);
        let Some(entry) = self.tasks.get_mut(uid) else {
            return;
        };
        entry.record.exec_start = outcome.exec_start.or(entry.record.exec_start);
        entry.record.exec_stop = outcome.exec_stop;
        match outcome.result {
            Ok(output) => {
                entry.terminal = true;
                entry.record.finished = Some(time);
                entry.record.success = true;
                self.live_tasks -= 1;
                self.telemetry
                    .record(time, "entk", "task_done", Subject::Task(uid));
                self.pending_results.push(TaskResult::ok(
                    entry.task.tag,
                    entry.task.stage.clone(),
                    output,
                ));
            }
            Err(e) => {
                // Semantic failure after execution: retry path.
                self.retry_or_fail(uid, &e, time, backend.virtual_time());
            }
        }
    }

    // ------------------------------------------------------------- report

    fn build_report(&self, pattern_name: &str, backend: &dyn ExecutionBackend) -> ExecutionReport {
        let stats = backend.stats();
        // Store order is uid order; no sort needed.
        let tasks: Vec<TaskRecord> = self.tasks.values().map(|e| e.record.clone()).collect();
        ExecutionReport {
            pattern: pattern_name.to_string(),
            resource: stats.resource,
            cores: stats.cores,
            ttc: backend.now().saturating_since(SimTime::ZERO),
            overheads: OverheadBreakdown {
                core: self.core_overhead,
                pattern: self.pattern_overhead,
                runtime_pilot: stats.runtime_pilot,
                resource_wait: stats.resource_wait,
                failure_lost: self.failure_lost,
            },
            tasks,
            failed_tasks: self.failed_tasks,
            total_retries: self.total_retries,
            partial: self.degraded || self.failed_tasks > 0,
            events: stats.events,
        }
    }
}
