//! Fault-tolerance policies (paper §I: "running large ensembles in a
//! fault-tolerant way"; §V: kill-replace of tasks).

use entk_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-task fault handling applied by the execution plugin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// How many times a failed task is resubmitted before its failure is
    /// reported to the pattern.
    pub max_retries: u32,
    /// Kill-replace: a task executing longer than this is cancelled and
    /// resubmitted (consuming a retry). `None` disables the watchdog.
    pub task_timeout: Option<SimDuration>,
}

impl FaultConfig {
    /// No retries, no watchdog.
    pub fn none() -> Self {
        FaultConfig {
            max_retries: 0,
            task_timeout: None,
        }
    }

    /// Retry failed tasks up to `n` times.
    pub fn retries(n: u32) -> Self {
        FaultConfig {
            max_retries: n,
            task_timeout: None,
        }
    }

    /// Adds a kill-replace watchdog (builder style).
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.task_timeout = Some(timeout);
        self
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let f = FaultConfig::retries(3).with_timeout(SimDuration::from_secs(60));
        assert_eq!(f.max_retries, 3);
        assert_eq!(f.task_timeout, Some(SimDuration::from_secs(60)));
        assert_eq!(FaultConfig::none().max_retries, 0);
        assert!(FaultConfig::default().task_timeout.is_none());
    }
}
