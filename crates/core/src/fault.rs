//! Fault-tolerance policies (paper §I: "running large ensembles in a
//! fault-tolerant way"; §V: kill-replace of tasks).

use entk_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Exponential backoff with seeded jitter applied between a task failure
/// and its resubmission.
///
/// The delay before retry attempt `n` (1-based) is
/// `min(base * factor^(n-1), max)`, multiplied by a jitter factor drawn
/// uniformly from `[1 - jitter, 1 + jitter]`. The default `base` of zero
/// disables backoff entirely — and makes no RNG draw, so configurations
/// without backoff replay bit-identically to builds that predate it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in seconds. Zero disables backoff.
    pub base: f64,
    /// Multiplier applied per additional attempt.
    pub factor: f64,
    /// Upper bound on the un-jittered delay, in seconds.
    pub max: f64,
    /// Relative jitter half-width (0.1 = ±10%); zero draws nothing.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: 0.0,
            factor: 2.0,
            max: 300.0,
            jitter: 0.1,
        }
    }
}

impl BackoffPolicy {
    /// Constant-rate policy: `base` seconds before every retry, no growth.
    pub fn constant(base: f64) -> Self {
        BackoffPolicy {
            base,
            factor: 1.0,
            ..Default::default()
        }
    }

    /// Exponential policy starting at `base` seconds and doubling.
    pub fn exponential(base: f64) -> Self {
        BackoffPolicy {
            base,
            ..Default::default()
        }
    }

    /// The delay before retry `attempt` (1-based). Returns zero — without
    /// consuming a draw — when the policy is disabled.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        if self.base <= 0.0 {
            return SimDuration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(64) as i32;
        let raw = (self.base * self.factor.powi(exp)).min(self.max.max(0.0));
        let jittered = if self.jitter > 0.0 {
            raw * rng.uniform_range(1.0 - self.jitter, 1.0 + self.jitter)
        } else {
            raw
        };
        SimDuration::from_secs_f64(jittered.max(0.0))
    }
}

/// Per-task fault handling applied by the execution plugin.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// How many times a failed task is resubmitted before its failure is
    /// reported to the pattern.
    pub max_retries: u32,
    /// Kill-replace: a task executing longer than this is cancelled and
    /// resubmitted (consuming a retry). `None` disables the watchdog.
    pub task_timeout: Option<SimDuration>,
    /// Backoff between a failure and its resubmission.
    pub backoff: BackoffPolicy,
    /// Graceful degradation: when every pilot dies mid-run, finish the
    /// session with a partial report instead of aborting with an error.
    pub graceful: bool,
}

impl FaultConfig {
    /// Retry failed tasks up to `n` times.
    pub fn retries(n: u32) -> Self {
        FaultConfig {
            max_retries: n,
            ..Default::default()
        }
    }

    /// Adds a kill-replace watchdog (builder style).
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.task_timeout = Some(timeout);
        self
    }

    /// Sets the retry backoff policy (builder style).
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Enables graceful degradation (builder style).
    pub fn graceful(mut self) -> Self {
        self.graceful = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let f = FaultConfig::retries(3)
            .with_timeout(SimDuration::from_secs(60))
            .with_backoff(BackoffPolicy::exponential(2.0))
            .graceful();
        assert_eq!(f.max_retries, 3);
        assert_eq!(f.task_timeout, Some(SimDuration::from_secs(60)));
        assert_eq!(f.backoff.base, 2.0);
        assert!(f.graceful);
        assert_eq!(FaultConfig::default().max_retries, 0);
        assert!(FaultConfig::default().task_timeout.is_none());
        assert!(!FaultConfig::default().graceful);
    }

    #[test]
    fn default_backoff_is_disabled_and_draws_nothing() {
        let mut a = SimRng::seed_from_u64(4);
        let mut b = SimRng::seed_from_u64(4);
        let policy = BackoffPolicy::default();
        for attempt in 1..6 {
            assert_eq!(policy.delay(attempt, &mut a), SimDuration::ZERO);
        }
        // Stream untouched by the zero-base delays above.
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn exponential_backoff_grows_and_caps() {
        let mut rng = SimRng::seed_from_u64(1);
        let policy = BackoffPolicy {
            base: 1.0,
            factor: 2.0,
            max: 10.0,
            jitter: 0.0,
        };
        let delays: Vec<f64> = (1..7)
            .map(|n| policy.delay(n, &mut rng).as_secs_f64())
            .collect();
        assert_eq!(delays, vec![1.0, 2.0, 4.0, 8.0, 10.0, 10.0]);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let policy = BackoffPolicy {
            base: 4.0,
            factor: 1.0,
            max: 100.0,
            jitter: 0.25,
        };
        let draw = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            (1..20)
                .map(|n| policy.delay(n, &mut rng).as_secs_f64())
                .collect::<Vec<_>>()
        };
        for d in draw(9) {
            assert!((3.0..=5.0).contains(&d), "delay {d} outside jitter bounds");
        }
        assert_eq!(draw(9), draw(9));
    }

    #[test]
    fn constant_policy_does_not_grow() {
        let mut rng = SimRng::seed_from_u64(2);
        let policy = BackoffPolicy {
            jitter: 0.0,
            ..BackoffPolicy::constant(3.0)
        };
        assert_eq!(policy.delay(1, &mut rng).as_secs_f64(), 3.0);
        assert_eq!(policy.delay(9, &mut rng).as_secs_f64(), 3.0);
    }
}
