//! The discrete-event execution backend (paper §III-B component 4).
//!
//! Implements [`ExecutionBackend`] over one or more independently simulated
//! clusters, each a full `Engine` + `SimRuntime` + batch-system stack. With
//! one cluster this is the classic simulated backend driven by every scaling
//! experiment; with several it is the *federated* backend: units are
//! late-bound at submission time to whichever cluster currently has the most
//! free capacity, and the clusters' virtual clocks are advanced together by
//! always processing the globally earliest event.
//!
//! All session semantics (retry, records, overheads, degradation) live in
//! [`crate::session::SessionEngine`]; this file only turns engine events and
//! runtime notifications into [`BackendEvent`]s and units into simulated
//! work.

use crate::backend::{BackendEvent, BackendStats, ExecutionBackend, Poll, UnitOutcome, UnitSpec};
use crate::binding::{BindingPolicy, StaticBinding};
use crate::resource::{PilotStrategy, ResourceConfig};
use entk_cluster::{ClusterEvent, FaultProfile, PlatformSpec};
use entk_kernels::{KernelCall, KernelRegistry};
use entk_pilot::{
    PilotDescription, PilotId, PilotState, RuntimeEvent, RuntimeNotification, SimRuntime,
    SimRuntimeConfig, UnitDescription, UnitId, UnitState, UnitWork,
};
use entk_sim::{
    Context, Engine, SharedTelemetry, SimDuration, SimRng, SimTime, Subject, SubjectOffsets,
};
use std::collections::HashSet;

/// Top-level event type of the simulated toolkit stack. Session-level
/// events (everything but `Rt`/`Cl`) are always scheduled on cluster 0's
/// engine, which acts as the session's clock spine.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// Pilot runtime event.
    Rt(RuntimeEvent),
    /// Batch-system event.
    Cl(ClusterEvent),
    /// Toolkit init + resource request done: boot every cluster.
    Boot,
    /// Pattern overhead paid: these tasks' units are due for submission.
    TasksReady(u64, Vec<u64>),
    /// Kill-replace watchdog for a task.
    TaskTimeout(u64),
    /// Deferred kernel-binding failure becomes deliverable.
    Deliver(u64),
    /// Graceful pilot shutdown across all clusters.
    Shutdown,
    /// Clock-advancing no-op (teardown time).
    Nop,
}

impl From<RuntimeEvent> for Ev {
    fn from(e: RuntimeEvent) -> Ev {
        Ev::Rt(e)
    }
}
impl From<ClusterEvent> for Ev {
    fn from(e: ClusterEvent) -> Ev {
        Ev::Cl(e)
    }
}

/// One independently simulated cluster: its own event queue, pilot runtime,
/// batch system, fault injector, and pilots.
struct ClusterStack {
    engine: Engine<Ev>,
    runtime: SimRuntime,
    resource: String,
    cores: usize,
    walltime: SimDuration,
    /// Pilots the requested cores are split across (the first absorbs any
    /// remainder).
    pilot_count: usize,
    background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    fault_profile: Option<FaultProfile>,
    pilots: Vec<PilotId>,
    dead_pilots: HashSet<PilotId>,
}

impl ClusterStack {
    /// Enables load/fault models and submits this cluster's pilots.
    fn boot(&mut self, ctx: &mut Context<'_, Ev>, notes: &mut Vec<RuntimeNotification>) {
        if let Some(load) = self.background_load {
            self.runtime.cluster_mut().enable_background_load(load, ctx);
        }
        if let Some(profile) = self.fault_profile.clone() {
            self.runtime
                .cluster_mut()
                .enable_fault_injector(profile, ctx);
        }
        // Split the requested cores across the strategy's pilots; the
        // first pilot absorbs any remainder.
        let n = self.pilot_count;
        let base = self.cores / n;
        for i in 0..n {
            let cores = if i == 0 { base + self.cores % n } else { base };
            let pd = PilotDescription::new(self.resource.clone(), cores, self.walltime);
            match self.runtime.submit_pilot(pd, ctx, notes) {
                Ok(id) => self.pilots.push(id),
                Err(e) => {
                    debug_assert!(false, "pilot description invalid: {e}");
                }
            }
        }
    }

    /// Gracefully finishes this cluster's pilots.
    fn shutdown(&mut self, ctx: &mut Context<'_, Ev>, notes: &mut Vec<RuntimeNotification>) {
        self.runtime.cluster_mut().disable_background_load();
        for p in self.pilots.clone() {
            self.runtime.finish_pilot(p, ctx, notes);
        }
    }

    /// Largest unit this cluster can run: the per-pilot core share while
    /// any pilot may still serve, the full request otherwise (matching the
    /// clamp the single-cluster driver always applied).
    fn max_unit_cores(&self) -> usize {
        self.pilots
            .iter()
            .filter_map(|&p| {
                (self.runtime.pilot_state(p) != Some(PilotState::Failed))
                    .then_some(self.cores / self.pilot_count)
            })
            .max()
            .unwrap_or(self.cores)
            .max(1)
    }

    fn pilots_terminal(&self) -> bool {
        self.pilots.iter().all(|&p| {
            self.runtime
                .pilot_state(p)
                .map(PilotState::is_terminal)
                .unwrap_or(true)
        })
    }
}

/// A unit staged between `prepare_batch` and `commit_batch`.
struct PreparedUnit {
    uid: u64,
    cluster: usize,
    description: Option<UnitDescription>,
}

/// The discrete-event [`ExecutionBackend`]: one cluster for classic
/// simulated sessions, several for federated ones.
pub(crate) struct EventBackend {
    clusters: Vec<ClusterStack>,
    registry: KernelRegistry,
    binding: Box<dyn BindingPolicy>,
    wait_all: bool,
    /// Resource label reported in stats.
    label: String,
    total_cores: usize,
    /// The un-offset session-level telemetry pipeline.
    telemetry: SharedTelemetry,
    /// The session-wide virtual clock: the time of the last processed event
    /// across all clusters.
    global_now: SimTime,
    prepared: Vec<PreparedUnit>,
}

impl EventBackend {
    /// Classic single-cluster simulated backend.
    #[allow(clippy::too_many_arguments)] // construction-time wiring of config groups
    pub(crate) fn single(
        config: ResourceConfig,
        platform: PlatformSpec,
        registry: KernelRegistry,
        runtime_config: SimRuntimeConfig,
        strategy: PilotStrategy,
        background_load: Option<entk_cluster::cluster::BackgroundLoad>,
        fault_profile: Option<FaultProfile>,
    ) -> Self {
        let runtime = SimRuntime::new(platform, runtime_config);
        let telemetry = runtime.telemetry().clone();
        let pilot_count = strategy.count.max(1).min(config.cores);
        EventBackend {
            clusters: vec![ClusterStack {
                engine: Engine::new(),
                runtime,
                resource: config.resource.clone(),
                cores: config.cores,
                walltime: config.walltime,
                pilot_count,
                background_load,
                fault_profile,
                pilots: Vec::new(),
                dead_pilots: HashSet::new(),
            }],
            registry,
            binding: Box::new(StaticBinding),
            wait_all: strategy.wait_all,
            label: config.resource,
            total_cores: config.cores,
            telemetry,
            global_now: SimTime::ZERO,
            prepared: Vec::new(),
        }
    }

    /// Federated multi-cluster backend: every cluster records into a
    /// subject-offset view of one shared telemetry pipeline, so the session
    /// trace stays a single chronologically interleaved record with
    /// collision-free entity ids.
    pub(crate) fn federated(
        inits: Vec<ClusterInit>,
        registry: KernelRegistry,
        wait_all: bool,
        telemetry: SharedTelemetry,
    ) -> Self {
        let label = format!(
            "federated:{}",
            inits
                .iter()
                .map(|i| i.resource.as_str())
                .collect::<Vec<_>>()
                .join("+")
        );
        let total_cores = inits.iter().map(|i| i.cores).sum();
        let clusters = inits
            .into_iter()
            .enumerate()
            .map(|(i, init)| {
                let offsets = SubjectOffsets {
                    pilot: i as u64 * 1_000,
                    unit: i as u64 * 1_000_000_000,
                    job: i as u64 * 1_000_000_000,
                    node: i as u64 * 1_000_000,
                };
                let runtime = SimRuntime::with_telemetry(
                    init.platform,
                    init.runtime_config,
                    telemetry.with_subject_offsets(offsets),
                );
                ClusterStack {
                    engine: Engine::new(),
                    runtime,
                    resource: init.resource,
                    cores: init.cores,
                    walltime: init.walltime,
                    pilot_count: init.pilot_count.max(1).min(init.cores.max(1)),
                    background_load: init.background_load,
                    fault_profile: init.fault_profile,
                    pilots: Vec::new(),
                    dead_pilots: HashSet::new(),
                }
            })
            .collect();
        EventBackend {
            clusters,
            registry,
            binding: Box::new(StaticBinding),
            wait_all,
            label,
            total_cores,
            telemetry,
            global_now: SimTime::ZERO,
            prepared: Vec::new(),
        }
    }

    /// Replaces the unit scheduler of cluster 0 (ablation hook; federated
    /// member clusters keep the default scheduler).
    pub(crate) fn set_unit_scheduler(&mut self, s: Box<dyn entk_pilot::UnitScheduler>) {
        self.clusters[0].runtime.set_scheduler(s);
    }

    /// Replaces the backend-wide binding policy (paper §V).
    pub(crate) fn set_binding_policy(&mut self, b: Box<dyn BindingPolicy>) {
        self.binding = b;
    }

    /// The shared cross-layer trace/metrics pipeline.
    pub(crate) fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    fn key_of(&self, unit: UnitId, cluster: usize) -> u64 {
        unit.0 * self.clusters.len() as u64 + cluster as u64
    }

    fn split_key(&self, key: u64) -> (usize, UnitId) {
        let n = self.clusters.len() as u64;
        ((key % n) as usize, UnitId(key / n))
    }

    /// Late binding: the alive cluster with the most uncommitted free
    /// capacity takes the unit (ties to the lowest index). Commitments may
    /// drive the balance negative, so once every cluster is oversubscribed
    /// the batch keeps spreading to the *least* backlogged queue instead of
    /// piling onto one machine. When no cluster is alive, fall back to raw
    /// balance so accounting still lands somewhere deterministic.
    fn pick_cluster(remaining: &[i64], alive: &[bool]) -> usize {
        let mut best: Option<usize> = None;
        for (i, &r) in remaining.iter().enumerate() {
            if alive[i] && best.is_none_or(|b| r > remaining[b]) {
                best = Some(i);
            }
        }
        if best.is_none() {
            for (i, &r) in remaining.iter().enumerate() {
                if best.is_none_or(|b| r > remaining[b]) {
                    best = Some(i);
                }
            }
        }
        best.unwrap_or(0)
    }

    /// Turns one cluster's runtime notifications into backend events.
    /// Failure events carry the *processing* time (`now`), matching how the
    /// single-cluster driver applied its fault policy at the step time.
    fn translate(
        &mut self,
        cluster: usize,
        notes: Vec<RuntimeNotification>,
        now: SimTime,
        out: &mut Vec<BackendEvent>,
    ) {
        for note in notes {
            match note {
                RuntimeNotification::Pilot { id, state, .. } => {
                    if state == PilotState::Failed || state == PilotState::Canceled {
                        self.clusters[cluster].dead_pilots.insert(id);
                    }
                }
                RuntimeNotification::PilotShrunk {
                    lost_cores,
                    remaining_cores,
                    ..
                } => {
                    out.push(BackendEvent::CapacityShrunk {
                        lost_cores,
                        remaining_cores,
                    });
                }
                RuntimeNotification::Unit {
                    id,
                    state,
                    time,
                    detail,
                } => {
                    let key = self.key_of(id, cluster);
                    match state {
                        UnitState::Executing => out.push(BackendEvent::UnitStarted { key, time }),
                        UnitState::Done => out.push(BackendEvent::UnitDone { key, time }),
                        UnitState::Failed | UnitState::Canceled => {
                            out.push(BackendEvent::UnitFailed {
                                key,
                                time: now,
                                reason: detail.unwrap_or_else(|| format!("{state:?}")),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Handles one engine event from cluster `idx`, surfacing state changes.
    fn handle_ev(
        &mut self,
        idx: usize,
        ev: Ev,
        ctx: &mut Context<'_, Ev>,
        out: &mut Vec<BackendEvent>,
    ) {
        match ev {
            Ev::Boot => {
                self.telemetry
                    .record(ctx.now(), "entk", "resource_ready", Subject::Session);
                let boot_time = ctx.now();
                for i in 0..self.clusters.len() {
                    let mut notes = Vec::new();
                    if i == idx {
                        self.clusters[i].boot(ctx, &mut notes);
                    } else {
                        // Other clusters' engines are intact (only `idx`'s
                        // is being stepped); bring their clocks up to the
                        // boot time and inject through their own contexts.
                        let mut engine = std::mem::take(&mut self.clusters[i].engine);
                        engine.advance_to(boot_time);
                        {
                            let mut ctx_i = engine.context();
                            self.clusters[i].boot(&mut ctx_i, &mut notes);
                        }
                        self.clusters[i].engine = engine;
                    }
                    self.translate(i, notes, boot_time, out);
                }
            }
            Ev::Rt(re) => {
                let mut notes = Vec::new();
                self.clusters[idx].runtime.handle(re, ctx, &mut notes);
                self.translate(idx, notes, ctx.now(), out);
            }
            Ev::Cl(ce) => {
                let mut notes = Vec::new();
                self.clusters[idx]
                    .runtime
                    .handle_cluster(ce, ctx, &mut notes);
                self.translate(idx, notes, ctx.now(), out);
            }
            Ev::TasksReady(batch, uids) => out.push(BackendEvent::BatchReady { batch, uids }),
            Ev::TaskTimeout(uid) => out.push(BackendEvent::TaskTimeout { uid }),
            Ev::Deliver(uid) => out.push(BackendEvent::DeferredFailure { uid }),
            Ev::Shutdown => {
                let down_time = ctx.now();
                for i in 0..self.clusters.len() {
                    let mut notes = Vec::new();
                    if i == idx {
                        self.clusters[i].shutdown(ctx, &mut notes);
                    } else {
                        let mut engine = std::mem::take(&mut self.clusters[i].engine);
                        engine.advance_to(down_time);
                        {
                            let mut ctx_i = engine.context();
                            self.clusters[i].shutdown(&mut ctx_i, &mut notes);
                        }
                        self.clusters[i].engine = engine;
                    }
                    self.translate(i, notes, down_time, out);
                }
            }
            Ev::Nop => out.push(BackendEvent::ClockMark),
        }
    }
}

/// Construction parameters of one federated member cluster (resolved by
/// `ResourceHandle::federated`).
pub(crate) struct ClusterInit {
    pub(crate) resource: String,
    pub(crate) cores: usize,
    pub(crate) walltime: SimDuration,
    pub(crate) platform: PlatformSpec,
    pub(crate) runtime_config: SimRuntimeConfig,
    pub(crate) pilot_count: usize,
    pub(crate) background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    pub(crate) fault_profile: Option<FaultProfile>,
}

impl ExecutionBackend for EventBackend {
    fn now(&self) -> SimTime {
        self.global_now
    }

    fn virtual_time(&self) -> bool {
        true
    }

    fn begin_session(&mut self, boot_delay: SimDuration) {
        let t = self.global_now + boot_delay;
        self.clusters[0].engine.schedule_at(t, Ev::Boot);
    }

    fn allocation_ready(&self) -> bool {
        if !self.clusters.iter().any(|c| !c.pilots.is_empty()) {
            return false;
        }
        let active =
            |c: &ClusterStack, p: &PilotId| c.runtime.pilot_state(*p) == Some(PilotState::Active);
        match self.wait_all {
            false => self
                .clusters
                .iter()
                .any(|c| c.pilots.iter().any(|p| active(c, p))),
            true => self
                .clusters
                .iter()
                .all(|c| c.pilots.iter().all(|p| active(c, p))),
        }
    }

    fn capacity_lost(&self) -> bool {
        let total: usize = self.clusters.iter().map(|c| c.pilots.len()).sum();
        total > 0
            && self
                .clusters
                .iter()
                .all(|c| c.dead_pilots.len() == c.pilots.len())
    }

    fn pilots_terminal(&self) -> bool {
        self.clusters.iter().all(ClusterStack::pilots_terminal)
    }

    fn poll(&mut self) -> Poll {
        // Process the globally earliest event (ties to the lowest cluster
        // index), keeping all virtual clocks causally consistent.
        let mut best: Option<(usize, SimTime)> = None;
        for (i, c) in self.clusters.iter_mut().enumerate() {
            if let Some(t) = c.engine.next_time() {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let Some((idx, _)) = best else {
            return Poll::Drained;
        };
        let mut engine = std::mem::take(&mut self.clusters[idx].engine);
        let mut events = Vec::new();
        engine.run_bounded(1, SimTime::MAX, &mut |ev, ctx| {
            self.handle_ev(idx, ev, ctx, &mut events);
        });
        self.clusters[idx].engine = engine;
        self.global_now = self.global_now.max(self.clusters[idx].engine.now());
        Poll::Events(events)
    }

    fn prepare_batch(&mut self, specs: &[UnitSpec], rng: &mut SimRng) -> Vec<Option<String>> {
        self.prepared.clear();
        let batch_size = specs.len();
        // Free-capacity snapshots: `free` (what binding policies see) stays
        // fixed for the whole batch, exactly as the single-cluster driver
        // snapshotted it once per submission; `remaining` additionally
        // tracks in-batch commitments to spread a federated batch.
        let free: Vec<usize> = self
            .clusters
            .iter()
            .map(|c| c.runtime.free_cores())
            .collect();
        let mut remaining: Vec<i64> = free.iter().map(|&f| f as i64).collect();
        let max_unit: Vec<usize> = self
            .clusters
            .iter()
            .map(ClusterStack::max_unit_cores)
            .collect();
        let alive: Vec<bool> = self
            .clusters
            .iter()
            .map(|c| !c.pilots.is_empty() && c.dead_pilots.len() < c.pilots.len())
            .collect();
        let mut verdicts = Vec::with_capacity(batch_size);
        for spec in specs {
            let call: &KernelCall = &spec.kernel;
            let plugin = match self.registry.get(&call.plugin) {
                Ok(p) => p,
                Err(e) => {
                    verdicts.push(Some(e.to_string()));
                    continue;
                }
            };
            if let Err(e) = plugin.validate(&call.args) {
                verdicts.push(Some(e.to_string()));
                continue;
            }
            let c = Self::pick_cluster(&remaining, &alive);
            let bound_cores = self
                .binding
                .bind(&spec.stage, call.cores, free[c], batch_size)
                .clamp(1, max_unit[c]);
            let cost = plugin.cost(
                &call.args,
                bound_cores,
                self.clusters[c].runtime.platform(),
                rng,
            );
            let mut ud = UnitDescription {
                name: format!("{}:{}", spec.stage, spec.uid),
                cores: bound_cores,
                mpi: call.mpi || bound_cores > 1,
                work: UnitWork::Modeled(cost),
                input_staging: Vec::new(),
                output_staging: Vec::new(),
            };
            let in_b = plugin.input_bytes(&call.args);
            if in_b > 0 {
                ud = ud.with_input("input", in_b);
            }
            let out_b = plugin.output_bytes(&call.args);
            if out_b > 0 {
                ud = ud.with_output("output", out_b);
            }
            if let Err(e) = ud.validate() {
                verdicts.push(Some(e));
                continue;
            }
            remaining[c] -= bound_cores as i64;
            self.prepared.push(PreparedUnit {
                uid: spec.uid,
                cluster: c,
                description: Some(ud),
            });
            verdicts.push(None);
        }
        verdicts
    }

    fn commit_batch(&mut self) -> Vec<(u64, u64)> {
        let mut prepared = std::mem::take(&mut self.prepared);
        if prepared.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Option<(u64, u64)>> = vec![None; prepared.len()];
        for c in 0..self.clusters.len() {
            let mut descriptions = Vec::new();
            let mut positions = Vec::new();
            for (pos, p) in prepared.iter_mut().enumerate() {
                if p.cluster == c {
                    descriptions.push(p.description.take().expect("prepared unit staged once"));
                    positions.push(pos);
                }
            }
            if descriptions.is_empty() {
                continue;
            }
            // Everything in `descriptions` passed `UnitDescription::validate`
            // during prepare, so the runtime cannot reject the batch; the
            // submission notifications are only `UnitState::New` markers,
            // which the session never acted on.
            let mut notes = Vec::new();
            let stack = &mut self.clusters[c];
            stack.engine.advance_to(self.global_now);
            let mut ctx = stack.engine.context();
            match stack
                .runtime
                .submit_units(descriptions, &mut ctx, &mut notes)
            {
                Ok(ids) => {
                    for (id, &pos) in ids.into_iter().zip(&positions) {
                        out[pos] = Some((prepared[pos].uid, id.0));
                    }
                }
                Err(e) => {
                    debug_assert!(false, "descriptions validated in prepare: {e}");
                }
            }
        }
        let n = self.clusters.len() as u64;
        prepared
            .iter()
            .enumerate()
            .filter_map(|(pos, p)| out[pos].map(|(uid, raw)| (uid, raw * n + p.cluster as u64)))
            .collect()
    }

    fn arm_timeout(&mut self, uid: u64, timeout: SimDuration) {
        let t = self.global_now + timeout;
        self.clusters[0].engine.schedule_at(t, Ev::TaskTimeout(uid));
    }

    fn cancel_running_unit(&mut self, key: u64) -> bool {
        let (c, unit) = self.split_key(key);
        let global_now = self.global_now;
        let stack = &mut self.clusters[c];
        let state = stack.runtime.unit_state(unit);
        if state.map(UnitState::is_terminal).unwrap_or(true) {
            return false;
        }
        stack.engine.advance_to(global_now);
        // The cancellation notifications are swallowed: the session already
        // removed this unit's mapping and applies its own fault policy.
        let mut notes = Vec::new();
        let mut ctx = stack.engine.context();
        stack.runtime.cancel_unit(unit, &mut ctx, &mut notes);
        true
    }

    fn complete_unit(&mut self, key: u64, kernel: &KernelCall, rng: &mut SimRng) -> UnitOutcome {
        let (c, unit) = self.split_key(key);
        let (exec_start, exec_stop) = self.clusters[c]
            .runtime
            .profiler()
            .unit(unit)
            .map(|p| (p.exec_start, p.exec_stop))
            .unwrap_or((None, None));
        // Model-execute the kernel for semantic output. The kernel resolved
        // at submission; a registry miss here is impossible in practice but
        // degrades to a task failure instead of a panic.
        let result = match self.registry.get(&kernel.plugin) {
            Ok(plugin) => plugin
                .execute_model(&kernel.args, rng)
                .map_err(|e| e.to_string()),
            Err(e) => Err(e.to_string()),
        };
        UnitOutcome {
            exec_start,
            exec_stop,
            result,
        }
    }

    fn schedule_batch(&mut self, delay: SimDuration, batch: u64, uids: Vec<u64>) {
        let t = self.global_now + delay;
        self.clusters[0]
            .engine
            .schedule_at(t, Ev::TasksReady(batch, uids));
    }

    fn schedule_deferred_failure(&mut self, uid: u64) {
        let t = self.global_now;
        self.clusters[0].engine.schedule_at(t, Ev::Deliver(uid));
    }

    fn begin_shutdown(&mut self) {
        let t = self.global_now;
        self.clusters[0].engine.schedule_at(t, Ev::Shutdown);
    }

    fn schedule_clock_mark(&mut self, delay: SimDuration) {
        let t = self.global_now + delay;
        self.clusters[0].engine.schedule_at(t, Ev::Nop);
    }

    fn stats(&self) -> BackendStats {
        let (runtime_pilot, resource_wait) = self
            .clusters
            .first()
            .and_then(|c| {
                c.pilots
                    .first()
                    .and_then(|&p| c.runtime.profiler().pilot(p).copied())
            })
            .map(|prof| {
                let submit = prof
                    .launched
                    .zip(prof.submitted)
                    .map(|(l, s)| l.saturating_since(s))
                    .unwrap_or(SimDuration::ZERO);
                let wait = prof
                    .active
                    .zip(prof.launched)
                    .map(|(a, l)| a.saturating_since(l))
                    .unwrap_or(SimDuration::ZERO);
                (submit, wait)
            })
            .unwrap_or((SimDuration::ZERO, SimDuration::ZERO));
        BackendStats {
            resource: self.label.clone(),
            cores: self.total_cores,
            runtime_pilot,
            resource_wait,
            events: self.clusters.iter().map(|c| c.engine.steps()).sum(),
        }
    }
}
