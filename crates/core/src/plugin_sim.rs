//! The discrete-event execution backend (paper §III-B component 4).
//!
//! Implements [`ExecutionBackend`] over one or more independently simulated
//! clusters, each a full `Engine` + `SimRuntime` + batch-system stack. With
//! one cluster this is the classic simulated backend driven by every scaling
//! experiment; with several it is the *federated* backend: units are
//! late-bound at submission time to whichever cluster currently has the most
//! free capacity.
//!
//! ## Conservative-lookahead merge (multi-member federated drive)
//!
//! A federated backend with two or more members keeps session-level events
//! (boot, batch releases, timeouts, shutdown) on a dedicated clock *spine*
//! engine, while each member cluster's engine holds only that machine's
//! runtime and batch-system events. Members advance inside bounded
//! *windows*: from the earliest member event time `t_m` up to (strictly
//! before) the horizon `min(t_spine, t_m + lookahead)` — classic
//! conservative PDES. Every event a member processes becomes a *chunk*
//! `(time, member, events, telemetry ops)`; completed chunks are merged in
//! deterministic `(time, member)` order and doled out one per `poll`, so
//! the session observes the exact granularity and order a serial interleave
//! of the same windows would produce. Because chunks are computed
//! member-locally, the windows can run concurrently on a worker pool
//! ([`DriveMode::Parallel`]) or inline ([`DriveMode::Serial`]) with
//! byte-identical traces — that identity is what the parallel-vs-serial
//! proptests and the CI smoke job pin.
//!
//! Outside the session's run phase (boot, teardown) the lookahead collapses
//! to 1 µs, which makes each window cover exactly one timestamp: the merge
//! then reproduces the serial earliest-event interleave exactly. A
//! single-cluster (or single-member federated) backend bypasses all of this
//! and keeps the classic serial drive verbatim, preserving the golden trace
//! fingerprints.
//!
//! All session semantics (retry, records, overheads, degradation) live in
//! [`crate::session::SessionEngine`]; this file only turns engine events and
//! runtime notifications into [`BackendEvent`]s and units into simulated
//! work.

use crate::backend::{BackendEvent, BackendStats, ExecutionBackend, Poll, UnitOutcome, UnitSpec};
use crate::binding::{BindingPolicy, StaticBinding};
use crate::resource::{DriveMode, PilotStrategy, ResourceConfig};
use entk_cluster::{ClusterEvent, FaultProfile, PlatformSpec};
use entk_kernels::{KernelCall, KernelRegistry};
use entk_pilot::{
    PilotDescription, PilotId, PilotState, RuntimeEvent, RuntimeNotification, SimRuntime,
    SimRuntimeConfig, UnitDescription, UnitId, UnitState, UnitWork,
};
use entk_sim::{
    Context, Engine, SharedTelemetry, SimDuration, SimRng, SimTime, Subject, SubjectOffsets,
    TelemetryBuffer, WorkerPool,
};
use std::collections::{HashSet, VecDeque};
use std::ops::Range;

/// Top-level event type of the simulated toolkit stack. Session-level
/// events (everything but `Rt`/`Cl`) are always scheduled on cluster 0's
/// engine, which acts as the session's clock spine.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// Pilot runtime event.
    Rt(RuntimeEvent),
    /// Batch-system event.
    Cl(ClusterEvent),
    /// Toolkit init + resource request done: boot every cluster.
    Boot,
    /// Pattern overhead paid: these tasks' units are due for submission.
    TasksReady(u64, Vec<u64>),
    /// Kill-replace watchdog for a task.
    TaskTimeout(u64),
    /// Deferred kernel-binding failure becomes deliverable.
    Deliver(u64),
    /// Graceful pilot shutdown across all clusters.
    Shutdown,
    /// Clock-advancing no-op (teardown time).
    Nop,
}

impl From<RuntimeEvent> for Ev {
    fn from(e: RuntimeEvent) -> Ev {
        Ev::Rt(e)
    }
}
impl From<ClusterEvent> for Ev {
    fn from(e: ClusterEvent) -> Ev {
        Ev::Cl(e)
    }
}

/// One independently simulated cluster: its own event queue, pilot runtime,
/// batch system, fault injector, and pilots.
struct ClusterStack {
    engine: Engine<Ev>,
    runtime: SimRuntime,
    resource: String,
    cores: usize,
    walltime: SimDuration,
    /// Pilots the requested cores are split across (the first absorbs any
    /// remainder).
    pilot_count: usize,
    background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    fault_profile: Option<FaultProfile>,
    pilots: Vec<PilotId>,
    dead_pilots: HashSet<PilotId>,
    /// Buffered telemetry op log (multi-member federated drives only):
    /// this member's layers record here instead of the shared pipeline, and
    /// the merge spine splices op ranges chunk by chunk.
    buffer: Option<TelemetryBuffer>,
    /// Ops already claimed by a chunk (absolute index into `buffer`).
    ops_taken: usize,
}

impl ClusterStack {
    /// Enables load/fault models and submits this cluster's pilots.
    fn boot(&mut self, ctx: &mut Context<'_, Ev>, notes: &mut Vec<RuntimeNotification>) {
        if let Some(load) = self.background_load {
            self.runtime.cluster_mut().enable_background_load(load, ctx);
        }
        if let Some(profile) = self.fault_profile.clone() {
            self.runtime
                .cluster_mut()
                .enable_fault_injector(profile, ctx);
        }
        // Split the requested cores across the strategy's pilots; the
        // first pilot absorbs any remainder.
        let n = self.pilot_count;
        let base = self.cores / n;
        for i in 0..n {
            let cores = if i == 0 { base + self.cores % n } else { base };
            let pd = PilotDescription::new(self.resource.clone(), cores, self.walltime);
            match self.runtime.submit_pilot(pd, ctx, notes) {
                Ok(id) => self.pilots.push(id),
                Err(e) => {
                    debug_assert!(false, "pilot description invalid: {e}");
                }
            }
        }
    }

    /// Gracefully finishes this cluster's pilots.
    fn shutdown(&mut self, ctx: &mut Context<'_, Ev>, notes: &mut Vec<RuntimeNotification>) {
        self.runtime.cluster_mut().disable_background_load();
        for p in self.pilots.clone() {
            self.runtime.finish_pilot(p, ctx, notes);
        }
    }

    /// Largest unit this cluster can run: the per-pilot core share while
    /// any pilot may still serve, the full request otherwise (matching the
    /// clamp the single-cluster driver always applied).
    fn max_unit_cores(&self) -> usize {
        self.pilots
            .iter()
            .filter_map(|&p| {
                (self.runtime.pilot_state(p) != Some(PilotState::Failed))
                    .then_some(self.cores / self.pilot_count)
            })
            .max()
            .unwrap_or(self.cores)
            .max(1)
    }

    fn pilots_terminal(&self) -> bool {
        self.pilots.iter().all(|&p| {
            self.runtime
                .pilot_state(p)
                .map(PilotState::is_terminal)
                .unwrap_or(true)
        })
    }

    /// Claims the telemetry ops recorded since the last claim, as an
    /// absolute index range into this member's buffer. Empty for unbuffered
    /// (single-cluster / single-member) stacks.
    fn take_ops(&mut self) -> Range<usize> {
        let end = self.buffer.as_ref().map(TelemetryBuffer::len).unwrap_or(0);
        let start = std::mem::replace(&mut self.ops_taken, end);
        start..end
    }
}

/// One unit of doled-out federated progress: a single member engine event
/// (or an eventless session-side injection), with everything the spine
/// needs to surface it in deterministic order — the backend events it
/// produced, the telemetry ops it recorded, and the pilots it killed
/// (applied at dole time so `capacity_lost()` keeps serial granularity).
struct Chunk {
    time: SimTime,
    member: usize,
    ops: Range<usize>,
    events: Vec<BackendEvent>,
    dead: Vec<PilotId>,
    /// Event chunks are returned by `poll` one at a time; injection chunks
    /// (session-side calls into member runtimes) splice silently.
    eventful: bool,
}

/// Resolved drive parameters of a federated backend (built by
/// `ResourceHandle::federated` from [`crate::resource::FederatedConfig`]).
pub(crate) struct FedDrive {
    pub(crate) mode: DriveMode,
    pub(crate) lookahead: SimDuration,
    pub(crate) workers: usize,
}

/// Conservative-lookahead merge state of a multi-member federated backend;
/// `None` on single-cluster and one-member federated backends, which keep
/// the classic serial drive verbatim.
struct FedState {
    /// The session's clock spine: holds only session-level events (boot,
    /// batch releases, timeouts, shutdown, clock marks).
    spine: Engine<Ev>,
    /// Completed member chunks awaiting dole, sorted by `(time, member)`.
    pending: VecDeque<Chunk>,
    /// Worker pool driving member windows; `None` in serial drive mode
    /// (windows then run inline, producing byte-identical chunks).
    pool: Option<WorkerPool>,
    /// Window width beyond the earliest member event during the run phase.
    lookahead: SimDuration,
    /// Latched while the session is in its run phase (first batch scheduled
    /// → shutdown): windows widen to the lookahead. Outside it they stay at
    /// 1 µs — one timestamp per window, exactly the serial interleave.
    windows_on: bool,
}

impl FedState {
    /// Captures telemetry ops a session-side call just recorded into a
    /// member's buffer as an eventless chunk, merged into the dole stream
    /// at the member's current clock (where the ops were timestamped) so
    /// spliced gauge series stay time-ordered.
    fn push_injection(&mut self, stack: &mut ClusterStack, member: usize) {
        let ops = stack.take_ops();
        if ops.is_empty() {
            return;
        }
        let time = stack.engine.now();
        // After chunks with the same key: same-member ops splice in record
        // order.
        let pos = self
            .pending
            .partition_point(|c| (c.time, c.member) <= (time, member));
        self.pending.insert(
            pos,
            Chunk {
                time,
                member,
                ops,
                events: Vec::new(),
                dead: Vec::new(),
                eventful: false,
            },
        );
    }

    /// Merges freshly windowed chunks (per-member, time-sorted) into the
    /// pending dole stream, keeping `(time, member)` order with existing
    /// chunks winning ties (they were produced by earlier windows).
    fn merge_pending(&mut self, outputs: Vec<Vec<Chunk>>) {
        let mut fresh: Vec<Chunk> = outputs.into_iter().flatten().collect();
        if fresh.is_empty() {
            return;
        }
        // Stable: per-member chunk order (equal times included) survives.
        fresh.sort_by_key(|c| (c.time, c.member));
        let old = std::mem::take(&mut self.pending);
        let mut merged = VecDeque::with_capacity(old.len() + fresh.len());
        let mut fresh = fresh.into_iter().peekable();
        for chunk in old {
            while fresh
                .peek()
                .is_some_and(|f| (f.time, f.member) < (chunk.time, chunk.member))
            {
                merged.push_back(fresh.next().expect("peeked"));
            }
            merged.push_back(chunk);
        }
        merged.extend(fresh);
        self.pending = merged;
    }
}

/// Runs one member's conservative-lookahead window: processes every event
/// strictly before `horizon`, one chunk per event. Runs member-locally (no
/// shared state beyond the member's own stack), which is what makes the
/// parallel and serial drive modes produce identical chunks.
fn run_member_window(
    member: usize,
    n_clusters: u64,
    stack: &mut ClusterStack,
    horizon: SimTime,
) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    let mut engine = std::mem::take(&mut stack.engine);
    while let Some(t) = engine.next_time() {
        if t >= horizon {
            break;
        }
        let mut events = Vec::new();
        let mut dead = Vec::new();
        {
            let runtime = &mut stack.runtime;
            engine.advance_until(1, horizon, &mut |ev, ctx| {
                let mut notes = Vec::new();
                match ev {
                    Ev::Rt(re) => runtime.handle(re, ctx, &mut notes),
                    Ev::Cl(ce) => runtime.handle_cluster(ce, ctx, &mut notes),
                    _ => unreachable!("session events are scheduled on the spine"),
                }
                translate_notes(member, n_clusters, notes, ctx.now(), &mut events, &mut dead);
            });
        }
        chunks.push(Chunk {
            time: t,
            member,
            ops: stack.take_ops(),
            events,
            dead,
            eventful: true,
        });
    }
    stack.engine = engine;
    chunks
}

/// Turns one member's runtime notifications into backend events. Failure
/// events carry the *processing* time (`now`), matching how the serial
/// driver applies its fault policy at the step time. Dead pilots are
/// collected, not applied — windowed drives defer them to dole time so
/// `capacity_lost()` is observed with serial granularity.
fn translate_notes(
    member: usize,
    n_clusters: u64,
    notes: Vec<RuntimeNotification>,
    now: SimTime,
    out: &mut Vec<BackendEvent>,
    dead: &mut Vec<PilotId>,
) {
    for note in notes {
        match note {
            RuntimeNotification::Pilot { id, state, .. } => {
                if state == PilotState::Failed || state == PilotState::Canceled {
                    dead.push(id);
                }
            }
            RuntimeNotification::PilotShrunk {
                lost_cores,
                remaining_cores,
                ..
            } => {
                out.push(BackendEvent::CapacityShrunk {
                    lost_cores,
                    remaining_cores,
                });
            }
            RuntimeNotification::Unit {
                id,
                state,
                time,
                detail,
            } => {
                let key = id.0 * n_clusters + member as u64;
                match state {
                    UnitState::Executing => out.push(BackendEvent::UnitStarted { key, time }),
                    UnitState::Done => out.push(BackendEvent::UnitDone { key, time }),
                    UnitState::Failed | UnitState::Canceled => {
                        out.push(BackendEvent::UnitFailed {
                            key,
                            time: now,
                            reason: detail.unwrap_or_else(|| format!("{state:?}")),
                        });
                    }
                    _ => {}
                }
            }
        }
    }
}

/// A unit staged between `prepare_batch` and `commit_batch`.
struct PreparedUnit {
    uid: u64,
    cluster: usize,
    description: Option<UnitDescription>,
}

/// The discrete-event [`ExecutionBackend`]: one cluster for classic
/// simulated sessions, several for federated ones.
pub(crate) struct EventBackend {
    clusters: Vec<ClusterStack>,
    registry: KernelRegistry,
    binding: Box<dyn BindingPolicy>,
    wait_all: bool,
    /// Resource label reported in stats.
    label: String,
    total_cores: usize,
    /// The un-offset session-level telemetry pipeline.
    telemetry: SharedTelemetry,
    /// The session-wide virtual clock: the time of the last processed event
    /// across all clusters.
    global_now: SimTime,
    prepared: Vec<PreparedUnit>,
    /// Conservative-lookahead merge state; `Some` iff there are ≥ 2 member
    /// clusters.
    fed: Option<FedState>,
}

impl EventBackend {
    /// Classic single-cluster simulated backend.
    #[allow(clippy::too_many_arguments)] // construction-time wiring of config groups
    pub(crate) fn single(
        config: ResourceConfig,
        platform: PlatformSpec,
        registry: KernelRegistry,
        runtime_config: SimRuntimeConfig,
        strategy: PilotStrategy,
        background_load: Option<entk_cluster::cluster::BackgroundLoad>,
        fault_profile: Option<FaultProfile>,
    ) -> Self {
        let runtime = SimRuntime::new(platform, runtime_config);
        let telemetry = runtime.telemetry().clone();
        let pilot_count = strategy.count.max(1).min(config.cores);
        EventBackend {
            clusters: vec![ClusterStack {
                engine: Engine::new(),
                runtime,
                resource: config.resource.clone(),
                cores: config.cores,
                walltime: config.walltime,
                pilot_count,
                background_load,
                fault_profile,
                pilots: Vec::new(),
                dead_pilots: HashSet::new(),
                buffer: None,
                ops_taken: 0,
            }],
            registry,
            binding: Box::new(StaticBinding),
            wait_all: strategy.wait_all,
            label: config.resource,
            total_cores: config.cores,
            telemetry,
            global_now: SimTime::ZERO,
            prepared: Vec::new(),
            fed: None,
        }
    }

    /// Federated multi-cluster backend: every cluster records into a
    /// subject-offset view of one shared telemetry pipeline, so the session
    /// trace stays a single chronologically interleaved record with
    /// collision-free entity ids.
    pub(crate) fn federated(
        inits: Vec<ClusterInit>,
        registry: KernelRegistry,
        wait_all: bool,
        telemetry: SharedTelemetry,
        drive: FedDrive,
    ) -> Self {
        let label = format!(
            "federated:{}",
            inits
                .iter()
                .map(|i| i.resource.as_str())
                .collect::<Vec<_>>()
                .join("+")
        );
        let total_cores = inits.iter().map(|i| i.cores).sum();
        // A lone member keeps the classic serial drive (and direct
        // telemetry handles); the windowed merge only exists at N ≥ 2.
        let multi = inits.len() >= 2;
        let clusters: Vec<ClusterStack> = inits
            .into_iter()
            .enumerate()
            .map(|(i, init)| {
                let offsets = SubjectOffsets {
                    pilot: i as u64 * 1_000,
                    unit: i as u64 * 1_000_000_000,
                    job: i as u64 * 1_000_000_000,
                    node: i as u64 * 1_000_000,
                };
                let (handle, buffer) = if multi {
                    let (h, b) = telemetry.buffered(offsets);
                    (h, Some(b))
                } else {
                    (telemetry.with_subject_offsets(offsets), None)
                };
                let runtime =
                    SimRuntime::with_telemetry(init.platform, init.runtime_config, handle);
                ClusterStack {
                    engine: Engine::new(),
                    runtime,
                    resource: init.resource,
                    cores: init.cores,
                    walltime: init.walltime,
                    pilot_count: init.pilot_count.max(1).min(init.cores.max(1)),
                    background_load: init.background_load,
                    fault_profile: init.fault_profile,
                    pilots: Vec::new(),
                    dead_pilots: HashSet::new(),
                    buffer,
                    ops_taken: 0,
                }
            })
            .collect();
        let fed = multi.then(|| FedState {
            spine: Engine::new(),
            pending: VecDeque::new(),
            pool: (drive.mode == DriveMode::Parallel)
                .then(|| WorkerPool::new(drive.workers.clamp(1, clusters.len()))),
            lookahead: drive.lookahead,
            windows_on: false,
        });
        EventBackend {
            clusters,
            registry,
            binding: Box::new(StaticBinding),
            wait_all,
            label,
            total_cores,
            telemetry,
            global_now: SimTime::ZERO,
            prepared: Vec::new(),
            fed,
        }
    }

    /// Replaces the unit scheduler of cluster 0 (ablation hook; federated
    /// member clusters keep the default scheduler).
    pub(crate) fn set_unit_scheduler(&mut self, s: Box<dyn entk_pilot::UnitScheduler>) {
        self.clusters[0].runtime.set_scheduler(s);
    }

    /// Replaces the backend-wide binding policy (paper §V).
    pub(crate) fn set_binding_policy(&mut self, b: Box<dyn BindingPolicy>) {
        self.binding = b;
    }

    /// The shared cross-layer trace/metrics pipeline.
    pub(crate) fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    fn split_key(&self, key: u64) -> (usize, UnitId) {
        let n = self.clusters.len() as u64;
        ((key % n) as usize, UnitId(key / n))
    }

    /// Late binding: the alive cluster with the most uncommitted free
    /// capacity takes the unit (ties to the lowest index). Commitments may
    /// drive the balance negative, so once every cluster is oversubscribed
    /// the batch keeps spreading to the *least* backlogged queue instead of
    /// piling onto one machine. When no cluster is alive, fall back to raw
    /// balance so accounting still lands somewhere deterministic.
    fn pick_cluster(remaining: &[i64], alive: &[bool]) -> usize {
        let mut best: Option<usize> = None;
        for (i, &r) in remaining.iter().enumerate() {
            if alive[i] && best.is_none_or(|b| r > remaining[b]) {
                best = Some(i);
            }
        }
        if best.is_none() {
            for (i, &r) in remaining.iter().enumerate() {
                if best.is_none_or(|b| r > remaining[b]) {
                    best = Some(i);
                }
            }
        }
        best.unwrap_or(0)
    }

    /// Turns one cluster's runtime notifications into backend events,
    /// applying dead-pilot effects immediately (serial / spine contexts,
    /// where the notifications surface in the same poll).
    fn translate(
        &mut self,
        cluster: usize,
        notes: Vec<RuntimeNotification>,
        now: SimTime,
        out: &mut Vec<BackendEvent>,
    ) {
        let n = self.clusters.len() as u64;
        let mut dead = Vec::new();
        translate_notes(cluster, n, notes, now, out, &mut dead);
        for p in dead {
            self.clusters[cluster].dead_pilots.insert(p);
        }
    }

    /// Handles one engine event from cluster `idx`, surfacing state changes.
    fn handle_ev(
        &mut self,
        idx: usize,
        ev: Ev,
        ctx: &mut Context<'_, Ev>,
        out: &mut Vec<BackendEvent>,
    ) {
        match ev {
            Ev::Boot => {
                self.telemetry
                    .record(ctx.now(), "entk", "resource_ready", Subject::Session);
                let boot_time = ctx.now();
                for i in 0..self.clusters.len() {
                    let mut notes = Vec::new();
                    if i == idx {
                        self.clusters[i].boot(ctx, &mut notes);
                    } else {
                        // Other clusters' engines are intact (only `idx`'s
                        // is being stepped); bring their clocks up to the
                        // boot time and inject through their own contexts.
                        let mut engine = std::mem::take(&mut self.clusters[i].engine);
                        engine.advance_to(boot_time);
                        {
                            let mut ctx_i = engine.context();
                            self.clusters[i].boot(&mut ctx_i, &mut notes);
                        }
                        self.clusters[i].engine = engine;
                    }
                    self.translate(i, notes, boot_time, out);
                }
            }
            Ev::Rt(re) => {
                let mut notes = Vec::new();
                self.clusters[idx].runtime.handle(re, ctx, &mut notes);
                self.translate(idx, notes, ctx.now(), out);
            }
            Ev::Cl(ce) => {
                let mut notes = Vec::new();
                self.clusters[idx]
                    .runtime
                    .handle_cluster(ce, ctx, &mut notes);
                self.translate(idx, notes, ctx.now(), out);
            }
            Ev::TasksReady(batch, uids) => out.push(BackendEvent::BatchReady { batch, uids }),
            Ev::TaskTimeout(uid) => out.push(BackendEvent::TaskTimeout { uid }),
            Ev::Deliver(uid) => out.push(BackendEvent::DeferredFailure { uid }),
            Ev::Shutdown => {
                let down_time = ctx.now();
                for i in 0..self.clusters.len() {
                    let mut notes = Vec::new();
                    if i == idx {
                        self.clusters[i].shutdown(ctx, &mut notes);
                    } else {
                        let mut engine = std::mem::take(&mut self.clusters[i].engine);
                        engine.advance_to(down_time);
                        {
                            let mut ctx_i = engine.context();
                            self.clusters[i].shutdown(&mut ctx_i, &mut notes);
                        }
                        self.clusters[i].engine = engine;
                    }
                    self.translate(i, notes, down_time, out);
                }
            }
            Ev::Nop => out.push(BackendEvent::ClockMark),
        }
    }

    /// The engine session-level events are scheduled on: the spine for
    /// multi-member federated backends, cluster 0's engine otherwise.
    fn session_engine(&mut self) -> &mut Engine<Ev> {
        match &mut self.fed {
            Some(f) => &mut f.spine,
            None => &mut self.clusters[0].engine,
        }
    }

    /// The windowed poll: dole the earliest pending chunk, process the
    /// spine when it is due, or run another member window — whichever is
    /// globally earliest, spine winning ties (it carries the session's
    /// reactions).
    fn poll_federated(&mut self) -> Poll {
        let mut fed = self.fed.take().expect("poll_federated needs fed state");
        let out = self.poll_fed_inner(&mut fed);
        self.fed = Some(fed);
        out
    }

    fn poll_fed_inner(&mut self, fed: &mut FedState) -> Poll {
        loop {
            let t_s = fed.spine.next_time();
            let t_c = fed.pending.front().map(|c| c.time);
            let t_m = self
                .clusters
                .iter_mut()
                .filter_map(|c| c.engine.next_time())
                .min();
            let spine_due = t_s
                .is_some_and(|ts| t_c.is_none_or(|tc| ts <= tc) && t_m.is_none_or(|tm| ts <= tm));
            if spine_due {
                return self.step_spine(fed);
            }
            // Raw member events due before (or tied with) every pending
            // chunk, and strictly before the spine: widen the chunk stream
            // with another window. `tm < ts` guarantees the window spans at
            // least one event, so this always makes progress.
            let window_due =
                t_m.is_some_and(|tm| t_s.is_none_or(|ts| tm < ts) && t_c.is_none_or(|tc| tm <= tc));
            if window_due {
                self.run_window(fed, t_m.expect("window_due"), t_s);
                continue;
            }
            let Some(chunk) = fed.pending.pop_front() else {
                return Poll::Drained;
            };
            self.global_now = self.global_now.max(chunk.time);
            let Chunk {
                member,
                ops,
                events,
                dead,
                eventful,
                ..
            } = chunk;
            if let Some(buf) = &self.clusters[member].buffer {
                buf.splice_into(&self.telemetry, ops.start, ops.end);
            }
            for p in dead {
                self.clusters[member].dead_pilots.insert(p);
            }
            if eventful {
                return Poll::Events(events);
            }
        }
    }

    /// Processes exactly one spine event, mirroring the serial driver's
    /// one-event-per-poll granularity.
    fn step_spine(&mut self, fed: &mut FedState) -> Poll {
        let mut spine = std::mem::take(&mut fed.spine);
        let mut events = Vec::new();
        spine.run_bounded(1, SimTime::MAX, &mut |ev, ctx| {
            let now = ctx.now();
            match ev {
                Ev::Boot => self.boot_all(fed, now, &mut events),
                Ev::Shutdown => self.shutdown_all(fed, now, &mut events),
                Ev::TasksReady(batch, uids) => {
                    events.push(BackendEvent::BatchReady { batch, uids });
                }
                Ev::TaskTimeout(uid) => events.push(BackendEvent::TaskTimeout { uid }),
                Ev::Deliver(uid) => events.push(BackendEvent::DeferredFailure { uid }),
                Ev::Nop => events.push(BackendEvent::ClockMark),
                Ev::Rt(_) | Ev::Cl(_) => {
                    unreachable!("runtime events live on member engines")
                }
            }
        });
        self.global_now = self.global_now.max(spine.now());
        fed.spine = spine;
        Poll::Events(events)
    }

    /// Boots every member through its own context at the spine's boot time.
    fn boot_all(&mut self, fed: &mut FedState, time: SimTime, out: &mut Vec<BackendEvent>) {
        self.telemetry
            .record(time, "entk", "resource_ready", Subject::Session);
        for i in 0..self.clusters.len() {
            let mut notes = Vec::new();
            let mut engine = std::mem::take(&mut self.clusters[i].engine);
            engine.advance_to(time);
            {
                let mut ctx = engine.context();
                self.clusters[i].boot(&mut ctx, &mut notes);
            }
            self.clusters[i].engine = engine;
            self.translate(i, notes, time, out);
            fed.push_injection(&mut self.clusters[i], i);
        }
    }

    /// Gracefully shuts down every member through its own context.
    fn shutdown_all(&mut self, fed: &mut FedState, time: SimTime, out: &mut Vec<BackendEvent>) {
        for i in 0..self.clusters.len() {
            let mut notes = Vec::new();
            let mut engine = std::mem::take(&mut self.clusters[i].engine);
            engine.advance_to(time);
            {
                let mut ctx = engine.context();
                self.clusters[i].shutdown(&mut ctx, &mut notes);
            }
            self.clusters[i].engine = engine;
            self.translate(i, notes, time, out);
            fed.push_injection(&mut self.clusters[i], i);
        }
    }

    /// Advances every member with events strictly before the window horizon
    /// `min(t_spine, tm + lookahead)` — on the worker pool in parallel
    /// drive, inline otherwise; the chunks are identical either way.
    fn run_window(&mut self, fed: &mut FedState, tm: SimTime, ts: Option<SimTime>) {
        let lookahead = if fed.windows_on {
            fed.lookahead.as_micros().max(1)
        } else {
            // Outside the run phase a window covers exactly one timestamp,
            // making the merge reproduce the serial interleave event for
            // event.
            1
        };
        let mut horizon = SimTime::from_micros(tm.as_micros().saturating_add(lookahead));
        if let Some(ts) = ts {
            horizon = horizon.min(ts);
        }
        let n = self.clusters.len() as u64;
        let mut outputs: Vec<Vec<Chunk>> = Vec::new();
        outputs.resize_with(self.clusters.len(), Vec::new);
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for ((member, stack), slot) in self.clusters.iter_mut().enumerate().zip(outputs.iter_mut())
        {
            if stack.engine.next_time().is_some_and(|t| t < horizon) {
                jobs.push(Box::new(move || {
                    *slot = run_member_window(member, n, stack, horizon);
                }));
            }
        }
        // A single busy member gains nothing from a pool round-trip.
        match &fed.pool {
            Some(pool) if jobs.len() > 1 => pool.run(jobs),
            _ => jobs.into_iter().for_each(|job| job()),
        }
        fed.merge_pending(outputs);
    }
}

/// Construction parameters of one federated member cluster (resolved by
/// `ResourceHandle::federated`).
pub(crate) struct ClusterInit {
    pub(crate) resource: String,
    pub(crate) cores: usize,
    pub(crate) walltime: SimDuration,
    pub(crate) platform: PlatformSpec,
    pub(crate) runtime_config: SimRuntimeConfig,
    pub(crate) pilot_count: usize,
    pub(crate) background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    pub(crate) fault_profile: Option<FaultProfile>,
}

impl ExecutionBackend for EventBackend {
    fn now(&self) -> SimTime {
        self.global_now
    }

    fn virtual_time(&self) -> bool {
        true
    }

    fn begin_session(&mut self, boot_delay: SimDuration) {
        let t = self.global_now + boot_delay;
        self.session_engine().schedule_at(t, Ev::Boot);
    }

    fn allocation_ready(&self) -> bool {
        if !self.clusters.iter().any(|c| !c.pilots.is_empty()) {
            return false;
        }
        let active =
            |c: &ClusterStack, p: &PilotId| c.runtime.pilot_state(*p) == Some(PilotState::Active);
        match self.wait_all {
            false => self
                .clusters
                .iter()
                .any(|c| c.pilots.iter().any(|p| active(c, p))),
            true => self
                .clusters
                .iter()
                .all(|c| c.pilots.iter().all(|p| active(c, p))),
        }
    }

    fn capacity_lost(&self) -> bool {
        let total: usize = self.clusters.iter().map(|c| c.pilots.len()).sum();
        total > 0
            && self
                .clusters
                .iter()
                .all(|c| c.dead_pilots.len() == c.pilots.len())
    }

    fn pilots_terminal(&self) -> bool {
        self.clusters.iter().all(ClusterStack::pilots_terminal)
    }

    fn poll(&mut self) -> Poll {
        if self.fed.is_some() {
            return self.poll_federated();
        }
        // Serial drive: process the globally earliest event (ties to the
        // lowest cluster index), keeping all virtual clocks causally
        // consistent.
        let mut best: Option<(usize, SimTime)> = None;
        for (i, c) in self.clusters.iter_mut().enumerate() {
            if let Some(t) = c.engine.next_time() {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let Some((idx, _)) = best else {
            return Poll::Drained;
        };
        let mut engine = std::mem::take(&mut self.clusters[idx].engine);
        let mut events = Vec::new();
        engine.run_bounded(1, SimTime::MAX, &mut |ev, ctx| {
            self.handle_ev(idx, ev, ctx, &mut events);
        });
        self.clusters[idx].engine = engine;
        self.global_now = self.global_now.max(self.clusters[idx].engine.now());
        Poll::Events(events)
    }

    fn prepare_batch(&mut self, specs: &[UnitSpec], rng: &mut SimRng) -> Vec<Option<String>> {
        self.prepared.clear();
        let batch_size = specs.len();
        // Free-capacity snapshots: `free` (what binding policies see) stays
        // fixed for the whole batch, exactly as the single-cluster driver
        // snapshotted it once per submission; `remaining` additionally
        // tracks in-batch commitments to spread a federated batch.
        let free: Vec<usize> = self
            .clusters
            .iter()
            .map(|c| c.runtime.free_cores())
            .collect();
        let mut remaining: Vec<i64> = free.iter().map(|&f| f as i64).collect();
        let max_unit: Vec<usize> = self
            .clusters
            .iter()
            .map(ClusterStack::max_unit_cores)
            .collect();
        let alive: Vec<bool> = self
            .clusters
            .iter()
            .map(|c| !c.pilots.is_empty() && c.dead_pilots.len() < c.pilots.len())
            .collect();
        let mut verdicts = Vec::with_capacity(batch_size);
        for spec in specs {
            let call: &KernelCall = &spec.kernel;
            let plugin = match self.registry.get(&call.plugin) {
                Ok(p) => p,
                Err(e) => {
                    verdicts.push(Some(e.to_string()));
                    continue;
                }
            };
            if let Err(e) = plugin.validate(&call.args) {
                verdicts.push(Some(e.to_string()));
                continue;
            }
            let c = Self::pick_cluster(&remaining, &alive);
            let bound_cores = self
                .binding
                .bind(&spec.stage, call.cores, free[c], batch_size)
                .clamp(1, max_unit[c]);
            let cost = plugin.cost(
                &call.args,
                bound_cores,
                self.clusters[c].runtime.platform(),
                rng,
            );
            let mut ud = UnitDescription {
                name: format!("{}:{}", spec.stage, spec.uid),
                cores: bound_cores,
                mpi: call.mpi || bound_cores > 1,
                work: UnitWork::Modeled(cost),
                input_staging: Vec::new(),
                output_staging: Vec::new(),
            };
            let in_b = plugin.input_bytes(&call.args);
            if in_b > 0 {
                ud = ud.with_input("input", in_b);
            }
            let out_b = plugin.output_bytes(&call.args);
            if out_b > 0 {
                ud = ud.with_output("output", out_b);
            }
            if let Err(e) = ud.validate() {
                verdicts.push(Some(e));
                continue;
            }
            remaining[c] -= bound_cores as i64;
            self.prepared.push(PreparedUnit {
                uid: spec.uid,
                cluster: c,
                description: Some(ud),
            });
            verdicts.push(None);
        }
        verdicts
    }

    fn commit_batch(&mut self) -> Vec<(u64, u64)> {
        let mut prepared = std::mem::take(&mut self.prepared);
        if prepared.is_empty() {
            return Vec::new();
        }
        let mut fed = self.fed.take();
        let mut out: Vec<Option<(u64, u64)>> = vec![None; prepared.len()];
        for c in 0..self.clusters.len() {
            let mut descriptions = Vec::new();
            let mut positions = Vec::new();
            for (pos, p) in prepared.iter_mut().enumerate() {
                if p.cluster == c {
                    descriptions.push(p.description.take().expect("prepared unit staged once"));
                    positions.push(pos);
                }
            }
            if descriptions.is_empty() {
                continue;
            }
            // Everything in `descriptions` passed `UnitDescription::validate`
            // during prepare, so the runtime cannot reject the batch; the
            // submission notifications are only `UnitState::New` markers,
            // which the session never acted on.
            let mut notes = Vec::new();
            let stack = &mut self.clusters[c];
            stack.engine.advance_to(self.global_now);
            let mut ctx = stack.engine.context();
            match stack
                .runtime
                .submit_units(descriptions, &mut ctx, &mut notes)
            {
                Ok(ids) => {
                    for (id, &pos) in ids.into_iter().zip(&positions) {
                        out[pos] = Some((prepared[pos].uid, id.0));
                    }
                }
                Err(e) => {
                    debug_assert!(false, "descriptions validated in prepare: {e}");
                }
            }
            if let Some(f) = fed.as_mut() {
                f.push_injection(&mut self.clusters[c], c);
            }
        }
        self.fed = fed;
        let n = self.clusters.len() as u64;
        prepared
            .iter()
            .enumerate()
            .filter_map(|(pos, p)| out[pos].map(|(uid, raw)| (uid, raw * n + p.cluster as u64)))
            .collect()
    }

    fn arm_timeout(&mut self, uid: u64, timeout: SimDuration) {
        let t = self.global_now + timeout;
        self.session_engine().schedule_at(t, Ev::TaskTimeout(uid));
    }

    fn cancel_running_unit(&mut self, key: u64) -> bool {
        let (c, unit) = self.split_key(key);
        let global_now = self.global_now;
        let stack = &mut self.clusters[c];
        let state = stack.runtime.unit_state(unit);
        if state.map(UnitState::is_terminal).unwrap_or(true) {
            return false;
        }
        stack.engine.advance_to(global_now);
        // The cancellation notifications are swallowed: the session already
        // removed this unit's mapping and applies its own fault policy.
        let mut notes = Vec::new();
        {
            let mut ctx = stack.engine.context();
            stack.runtime.cancel_unit(unit, &mut ctx, &mut notes);
        }
        if let Some(mut fed) = self.fed.take() {
            fed.push_injection(&mut self.clusters[c], c);
            self.fed = Some(fed);
        }
        true
    }

    fn complete_unit(&mut self, key: u64, kernel: &KernelCall, rng: &mut SimRng) -> UnitOutcome {
        let (c, unit) = self.split_key(key);
        let (exec_start, exec_stop) = self.clusters[c]
            .runtime
            .profiler()
            .unit(unit)
            .map(|p| (p.exec_start, p.exec_stop))
            .unwrap_or((None, None));
        // Model-execute the kernel for semantic output. The kernel resolved
        // at submission; a registry miss here is impossible in practice but
        // degrades to a task failure instead of a panic.
        let result = match self.registry.get(&kernel.plugin) {
            Ok(plugin) => plugin
                .execute_model(&kernel.args, rng)
                .map_err(|e| e.to_string()),
            Err(e) => Err(e.to_string()),
        };
        UnitOutcome {
            exec_start,
            exec_stop,
            result,
        }
    }

    fn schedule_batch(&mut self, delay: SimDuration, batch: u64, uids: Vec<u64>) {
        // First batch scheduled = the session entered its run phase: widen
        // federated windows to the conservative lookahead.
        if let Some(fed) = &mut self.fed {
            fed.windows_on = true;
        }
        let t = self.global_now + delay;
        self.session_engine()
            .schedule_at(t, Ev::TasksReady(batch, uids));
    }

    fn schedule_deferred_failure(&mut self, uid: u64) {
        let t = self.global_now;
        self.session_engine().schedule_at(t, Ev::Deliver(uid));
    }

    fn begin_shutdown(&mut self) {
        // Teardown goes back to serial-equivalent 1 µs windows so pilot
        // state is observed at the serial granularity.
        if let Some(fed) = &mut self.fed {
            fed.windows_on = false;
        }
        let t = self.global_now;
        self.session_engine().schedule_at(t, Ev::Shutdown);
    }

    fn schedule_clock_mark(&mut self, delay: SimDuration) {
        let t = self.global_now + delay;
        self.session_engine().schedule_at(t, Ev::Nop);
    }

    fn stats(&self) -> BackendStats {
        let (runtime_pilot, resource_wait) = self
            .clusters
            .first()
            .and_then(|c| {
                c.pilots
                    .first()
                    .and_then(|&p| c.runtime.profiler().pilot(p).copied())
            })
            .map(|prof| {
                let submit = prof
                    .launched
                    .zip(prof.submitted)
                    .map(|(l, s)| l.saturating_since(s))
                    .unwrap_or(SimDuration::ZERO);
                let wait = prof
                    .active
                    .zip(prof.launched)
                    .map(|(a, l)| a.saturating_since(l))
                    .unwrap_or(SimDuration::ZERO);
                (submit, wait)
            })
            .unwrap_or((SimDuration::ZERO, SimDuration::ZERO));
        BackendStats {
            resource: self.label.clone(),
            cores: self.total_cores,
            runtime_pilot,
            resource_wait,
            events: self.clusters.iter().map(|c| c.engine.steps()).sum::<u64>()
                + self.fed.as_ref().map(|f| f.spine.steps()).unwrap_or(0),
        }
    }
}
