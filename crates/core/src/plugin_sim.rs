//! The execution plugin for simulated runs (paper §III-B component 4).
//!
//! "The execution plugin binds the kernel plugins and the execution
//! pattern, and translates the tasks into executable units … forwarded to
//! the underlying runtime system, thus decoupling execution from the
//! expression of the application."
//!
//! This driver owns the discrete-event engine, the pilot runtime, and the
//! kernel registry. Pattern tasks are bound to cost-model durations and
//! submitted as compute units; completions are model-executed and fed back
//! to the pattern. Fault policies (retry, kill-replace) apply here, below
//! the pattern's view.

use crate::binding::{BindingPolicy, StaticBinding};
use crate::error::EntkError;
use crate::fault::FaultConfig;
use crate::overheads::EntkOverheads;
use crate::pattern::ExecutionPattern;
use crate::report::{ExecutionReport, OverheadBreakdown, TaskRecord};
use crate::resource::PilotStrategy;
use crate::resource::ResourceConfig;
use crate::task::{Task, TaskResult};
use entk_cluster::{ClusterEvent, PlatformSpec};
use entk_kernels::KernelRegistry;
use entk_pilot::{
    PilotDescription, PilotId, PilotState, RuntimeEvent, RuntimeNotification, SimRuntime,
    SimRuntimeConfig, UnitDescription, UnitId, UnitState, UnitWork,
};
use entk_sim::{
    Context, DenseStore, Engine, RunOutcome, SharedTelemetry, SimDuration, SimRng, SimTime, Subject,
};
use std::collections::HashSet;

/// Top-level event type of the simulated toolkit stack.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// Pilot runtime event.
    Rt(RuntimeEvent),
    /// Batch-system event.
    Cl(ClusterEvent),
    /// Toolkit init + resource request done: submit the pilot.
    Boot,
    /// Pattern overhead paid: submit these tasks' units. The first field is
    /// the spawn-batch id ([`RETRY_BATCH`] for retry resubmissions, which
    /// carry no pattern overhead).
    TasksReady(u64, Vec<u64>),
    /// Kill-replace watchdog for a task.
    TaskTimeout(u64),
    /// Graceful pilot shutdown.
    Shutdown,
    /// Clock-advancing no-op (teardown time).
    Nop,
}

impl From<RuntimeEvent> for Ev {
    fn from(e: RuntimeEvent) -> Ev {
        Ev::Rt(e)
    }
}
impl From<ClusterEvent> for Ev {
    fn from(e: ClusterEvent) -> Ev {
        Ev::Cl(e)
    }
}

struct TaskEntry {
    task: Task,
    unit: Option<UnitId>,
    record: TaskRecord,
    terminal: bool,
    /// When the current attempt was submitted to the runtime; consumed on
    /// failure to account the attempt's wall time as failure-lost.
    attempt_started: Option<SimTime>,
}

enum DriverState {
    Created,
    Allocated,
    Deallocated,
}

/// The simulated-backend driver behind a `ResourceHandle`.
pub(crate) struct SimDriver {
    engine: Engine<Ev>,
    runtime: SimRuntime,
    registry: KernelRegistry,
    entk: EntkOverheads,
    fault: FaultConfig,
    rng: SimRng,
    /// Dedicated stream for retry-backoff jitter, so backoff draws never
    /// perturb kernel cost sampling.
    retry_rng: SimRng,
    config: ResourceConfig,
    strategy: PilotStrategy,
    binding: Box<dyn BindingPolicy>,
    background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    fault_profile: Option<entk_cluster::FaultProfile>,
    pilots: Vec<PilotId>,
    dead_pilots: HashSet<PilotId>,
    state: DriverState,
    /// Slab keyed by the dense task uid (index == uid); never removed
    /// from, so lookups are a bounds check instead of a hash.
    tasks: Vec<TaskEntry>,
    /// Unit id → task uid for the current attempt of each task.
    unit_to_task: DenseStore<u64>,
    next_uid: u64,
    /// Id of the next spawn batch; pairs `tasks_created`/`tasks_submitted`
    /// trace events so pattern overhead can be re-derived from the trace.
    next_batch: u64,
    /// Shared trace/metrics pipeline, cloned from the pilot runtime so all
    /// three layers append to one chronologically interleaved record.
    telemetry: SharedTelemetry,
    live_tasks: usize,
    failed_tasks: usize,
    total_retries: u32,
    core_overhead: SimDuration,
    pattern_overhead: SimDuration,
    failure_lost: SimDuration,
    degraded: bool,
    teardown_reached: bool,
    outbox: Vec<(SimDuration, Ev)>,
    /// Task results awaiting delivery to the pattern.
    pending_results: Vec<TaskResult>,
}

impl SimDriver {
    #[allow(clippy::too_many_arguments)] // construction-time wiring of config groups
    pub(crate) fn new(
        config: ResourceConfig,
        platform: PlatformSpec,
        registry: KernelRegistry,
        entk: EntkOverheads,
        runtime_config: SimRuntimeConfig,
        fault: FaultConfig,
        seed: u64,
        strategy: PilotStrategy,
        background_load: Option<entk_cluster::cluster::BackgroundLoad>,
        fault_profile: Option<entk_cluster::FaultProfile>,
    ) -> Self {
        let runtime = SimRuntime::new(platform, runtime_config);
        let telemetry = runtime.telemetry().clone();
        SimDriver {
            engine: Engine::new(),
            runtime,
            registry,
            entk,
            fault,
            rng: SimRng::seed_from_u64(seed),
            retry_rng: SimRng::seed_from_u64(seed ^ 0xBAC0_0FF5),
            config,
            strategy,
            binding: Box::new(StaticBinding),
            background_load,
            fault_profile,
            pilots: Vec::new(),
            dead_pilots: HashSet::new(),
            state: DriverState::Created,
            tasks: Vec::new(),
            unit_to_task: DenseStore::new(),
            next_uid: 0,
            next_batch: 0,
            telemetry,
            live_tasks: 0,
            failed_tasks: 0,
            total_retries: 0,
            core_overhead: SimDuration::ZERO,
            pattern_overhead: SimDuration::ZERO,
            failure_lost: SimDuration::ZERO,
            degraded: false,
            teardown_reached: false,
            outbox: Vec::new(),
            pending_results: Vec::new(),
        }
    }

    /// Replaces the unit scheduler before allocation (ablation hook).
    pub(crate) fn set_unit_scheduler(&mut self, s: Box<dyn entk_pilot::UnitScheduler>) {
        self.runtime.set_scheduler(s);
    }

    /// Replaces the binding policy (paper §V: intelligent execution plugin).
    pub(crate) fn set_binding_policy(&mut self, b: Box<dyn BindingPolicy>) {
        self.binding = b;
    }

    /// The shared cross-layer trace/metrics pipeline.
    pub(crate) fn telemetry(&self) -> &SharedTelemetry {
        &self.telemetry
    }

    /// True when every pilot has failed or been cancelled.
    fn all_pilots_dead(&self) -> bool {
        !self.pilots.is_empty() && self.dead_pilots.len() == self.pilots.len()
    }

    /// True when the allocation is usable per the wait policy.
    fn allocation_ready(&self) -> bool {
        if self.pilots.is_empty() {
            return false;
        }
        let active = |p: &PilotId| self.runtime.pilot_state(*p) == Some(PilotState::Active);
        match self.strategy.wait_all {
            false => self.pilots.iter().any(active),
            true => self.pilots.iter().all(active),
        }
    }

    // ---------------------------------------------------------- lifecycle

    pub(crate) fn allocate(&mut self) -> Result<(), EntkError> {
        if !matches!(self.state, DriverState::Created) {
            return Err(EntkError::Usage("allocate() called twice".into()));
        }
        self.telemetry
            .record(self.engine.now(), "entk", "session_start", Subject::Session);
        let init = self.entk.init.sample_duration(&mut self.rng)
            + self.entk.resource_request.sample_duration(&mut self.rng);
        self.core_overhead += init;
        self.engine.schedule_in(init, Ev::Boot);
        self.pump(None, |d| d.allocation_ready())?;
        self.state = DriverState::Allocated;
        Ok(())
    }

    pub(crate) fn run(
        &mut self,
        pattern: &mut dyn ExecutionPattern,
    ) -> Result<ExecutionReport, EntkError> {
        if !matches!(self.state, DriverState::Allocated) {
            return Err(EntkError::Usage("run() requires allocate() first".into()));
        }
        let initial = pattern.on_start();
        if initial.is_empty() && !pattern.is_done() {
            return Err(EntkError::Usage(
                "pattern emitted no initial tasks but is not done".into(),
            ));
        }
        let now = self.engine.now();
        self.spawn_tasks(initial, now);
        self.flush_outbox_direct();
        // pump's stop closure cannot see the pattern; poll manually. The
        // cheap live-task check short-circuits first: `is_done` may cost
        // O(pattern size) and this loop runs once per event.
        loop {
            if self.live_tasks == 0 && pattern.is_done() {
                break;
            }
            if self.all_pilots_dead() {
                if self.fault.graceful {
                    self.degrade(pattern);
                    break;
                }
                return Err(EntkError::Runtime(format!(
                    "all pilots terminated mid-run; pattern at: {}",
                    pattern.progress()
                )));
            }
            let stepped = self.step_one(Some(pattern))?;
            if !stepped {
                if self.live_tasks == 0 && pattern.is_done() {
                    break;
                }
                return Err(EntkError::Runtime(format!(
                    "simulation drained before pattern completion: {}",
                    pattern.progress()
                )));
            }
        }
        Ok(self.build_report(pattern.name()))
    }

    pub(crate) fn deallocate(&mut self) -> Result<ExecutionReport, EntkError> {
        if !matches!(self.state, DriverState::Allocated) {
            return Err(EntkError::Usage("deallocate() requires allocate()".into()));
        }
        self.engine.schedule_in(SimDuration::ZERO, Ev::Shutdown);
        self.pump(None, |d| {
            d.pilots.iter().all(|&p| {
                d.runtime
                    .pilot_state(p)
                    .map(PilotState::is_terminal)
                    .unwrap_or(true)
            })
        })?;
        let teardown = self.entk.teardown.sample_duration(&mut self.rng);
        self.core_overhead += teardown;
        self.teardown_reached = false;
        self.telemetry.record(
            self.engine.now(),
            "entk",
            "teardown_start",
            Subject::Session,
        );
        self.engine.schedule_in(teardown, Ev::Nop);
        // Do not drain to empty: background-load models keep the event
        // queue alive forever; stop once the teardown marker fires.
        self.pump(None, |d| d.teardown_reached)?;
        self.state = DriverState::Deallocated;
        Ok(self.build_report("session"))
    }

    // ------------------------------------------------------------- engine

    /// Processes one event; returns false when the queue is empty.
    fn step_one<'a, 'b>(
        &mut self,
        mut pattern: Option<&'a mut (dyn ExecutionPattern + 'b)>,
    ) -> Result<bool, EntkError> {
        let mut engine = std::mem::take(&mut self.engine);
        let outcome = engine.run_bounded(1, SimTime::MAX, &mut |ev, ctx| {
            self.handle(ev, ctx, pattern.as_deref_mut());
        });
        self.engine = engine;
        Ok(outcome != RunOutcome::Drained)
    }

    /// Pumps events until `stop(self)` holds (pattern-independent phases).
    fn pump<'a, 'b>(
        &mut self,
        mut pattern: Option<&'a mut (dyn ExecutionPattern + 'b)>,
        stop: impl Fn(&Self) -> bool,
    ) -> Result<(), EntkError> {
        loop {
            if stop(self) {
                return Ok(());
            }
            if self.all_pilots_dead()
                && pattern.is_none()
                && matches!(self.state, DriverState::Created)
            {
                // During allocate: all pilots dead means allocation failed.
                // (During deallocate, dead pilots are a normal end state —
                // e.g. after a graceful degradation.)
                return Err(EntkError::Resource("pilots failed to start".into()));
            }
            if !self.step_one(pattern.as_deref_mut())? {
                if stop(self) {
                    return Ok(());
                }
                return Err(EntkError::Runtime(
                    "simulation drained before reaching the expected state".into(),
                ));
            }
        }
    }

    fn handle<'a, 'b>(
        &mut self,
        ev: Ev,
        ctx: &mut Context<'_, Ev>,
        pattern: Option<&'a mut (dyn ExecutionPattern + 'b)>,
    ) {
        let mut notes = Vec::new();
        match ev {
            Ev::Boot => {
                self.telemetry
                    .record(ctx.now(), "entk", "resource_ready", Subject::Session);
                if let Some(load) = self.background_load {
                    self.runtime.cluster_mut().enable_background_load(load, ctx);
                }
                if let Some(profile) = self.fault_profile.clone() {
                    self.runtime
                        .cluster_mut()
                        .enable_fault_injector(profile, ctx);
                }
                // Split the requested cores across the strategy's pilots;
                // the first pilot absorbs any remainder.
                let n = self.strategy.count.max(1).min(self.config.cores);
                let base = self.config.cores / n;
                for i in 0..n {
                    let cores = if i == 0 {
                        base + self.config.cores % n
                    } else {
                        base
                    };
                    let pd = PilotDescription::new(
                        self.config.resource.clone(),
                        cores,
                        self.config.walltime,
                    );
                    match self.runtime.submit_pilot(pd, ctx, &mut notes) {
                        Ok(id) => self.pilots.push(id),
                        Err(e) => {
                            debug_assert!(false, "pilot description invalid: {e}");
                        }
                    }
                }
            }
            Ev::Rt(re) => self.runtime.handle(re, ctx, &mut notes),
            Ev::Cl(ce) => self.runtime.handle_cluster(ce, ctx, &mut notes),
            Ev::TasksReady(batch, uids) => {
                if batch != RETRY_BATCH {
                    self.telemetry.record(
                        ctx.now(),
                        "entk",
                        "tasks_submitted",
                        Subject::Batch(batch),
                    );
                }
                self.submit_units(uids, ctx, &mut notes);
            }
            Ev::TaskTimeout(uid) => self.on_timeout(uid, ctx, &mut notes),
            Ev::Shutdown => {
                self.runtime.cluster_mut().disable_background_load();
                for p in self.pilots.clone() {
                    self.runtime.finish_pilot(p, ctx, &mut notes);
                }
            }
            Ev::Nop => {
                self.teardown_reached = true;
                self.telemetry
                    .record(ctx.now(), "entk", "teardown_done", Subject::Session);
            }
        }
        self.process_notifications(notes, ctx, pattern);
        self.flush_outbox(ctx);
    }

    fn flush_outbox(&mut self, ctx: &mut Context<'_, Ev>) {
        for (delay, ev) in self.outbox.drain(..) {
            ctx.schedule_in(delay, ev);
        }
    }

    fn flush_outbox_direct(&mut self) {
        for (delay, ev) in self.outbox.drain(..) {
            self.engine.schedule_in(delay, ev);
        }
    }

    // -------------------------------------------------------------- tasks

    /// Registers pattern-emitted tasks and schedules their submission after
    /// the EnTK pattern overhead.
    ///
    /// `now` is passed in because inside an event handler `self.engine` is
    /// temporarily taken (see `step_one`) and would read as t = 0.
    fn spawn_tasks(&mut self, tasks: Vec<Task>, now: SimTime) {
        if tasks.is_empty() {
            return;
        }
        let n = tasks.len() as f64;
        let per = self.entk.task_create_per_task.sample(&mut self.rng);
        let fixed = self.entk.task_submit_fixed.sample(&mut self.rng);
        let delay = SimDuration::from_secs_f64(fixed + per * n);
        self.pattern_overhead += delay;
        let batch = self.next_batch;
        self.next_batch += 1;
        self.telemetry
            .record(now, "entk", "tasks_created", Subject::Batch(batch));
        let mut uids = Vec::with_capacity(tasks.len());
        self.tasks.reserve(tasks.len());
        for task in tasks {
            let uid = self.next_uid;
            self.next_uid += 1;
            self.live_tasks += 1;
            debug_assert_eq!(uid as usize, self.tasks.len());
            self.tasks.push(TaskEntry {
                record: TaskRecord {
                    uid,
                    tag: task.tag,
                    stage: task.stage.clone(),
                    created: now,
                    exec_start: None,
                    exec_stop: None,
                    finished: None,
                    success: false,
                    retries: 0,
                    lost_to_failures: SimDuration::ZERO,
                },
                task,
                unit: None,
                terminal: false,
                attempt_started: None,
            });
            self.telemetry
                .record(now, "entk", "task_created", Subject::Task(uid));
            uids.push(uid);
        }
        self.outbox.push((delay, Ev::TasksReady(batch, uids)));
    }

    /// Binds tasks to unit descriptions and submits them to the runtime.
    fn submit_units(
        &mut self,
        uids: Vec<u64>,
        ctx: &mut Context<'_, Ev>,
        notes: &mut Vec<RuntimeNotification>,
    ) {
        let mut descriptions = Vec::with_capacity(uids.len());
        let mut submit_uids = Vec::with_capacity(uids.len());
        let free_cores = self.runtime.free_cores();
        let batch_size = uids.len();
        let max_pilot = self
            .pilots
            .iter()
            .filter_map(|&p| {
                (self.runtime.pilot_state(p) != Some(entk_pilot::PilotState::Failed)).then_some(
                    self.config.cores / self.strategy.count.max(1).min(self.config.cores),
                )
            })
            .max()
            .unwrap_or(self.config.cores)
            .max(1);
        for uid in uids {
            let entry = match self.tasks.get(uid as usize) {
                Some(e) if !e.terminal => e,
                _ => continue,
            };
            let call = entry.task.kernel.clone();
            let stage = entry.task.stage.clone();
            let plugin = match self.registry.get(&call.plugin) {
                Ok(p) => p,
                Err(e) => {
                    self.fail_now(uid, e.to_string(), ctx);
                    continue;
                }
            };
            if let Err(e) = plugin.validate(&call.args) {
                self.fail_now(uid, e.to_string(), ctx);
                continue;
            }
            let bound_cores = self
                .binding
                .bind(&stage, call.cores, free_cores, batch_size)
                .clamp(1, max_pilot);
            let cost = plugin.cost(
                &call.args,
                bound_cores,
                self.runtime.platform(),
                &mut self.rng,
            );
            let mut ud = UnitDescription {
                name: format!("{stage}:{uid}"),
                cores: bound_cores,
                mpi: call.mpi || bound_cores > 1,
                work: UnitWork::Modeled(cost),
                input_staging: Vec::new(),
                output_staging: Vec::new(),
            };
            let in_b = plugin.input_bytes(&call.args);
            if in_b > 0 {
                ud = ud.with_input("input", in_b);
            }
            let out_b = plugin.output_bytes(&call.args);
            if out_b > 0 {
                ud = ud.with_output("output", out_b);
            }
            descriptions.push(ud);
            submit_uids.push(uid);
        }
        if descriptions.is_empty() {
            return;
        }
        let unit_ids = self
            .runtime
            .submit_units(descriptions, ctx, notes)
            .expect("descriptions validated above");
        for (uid, unit) in submit_uids.into_iter().zip(unit_ids) {
            let entry = &mut self.tasks[uid as usize];
            entry.unit = Some(unit);
            entry.attempt_started = Some(ctx.now());
            self.telemetry
                .record(ctx.now(), "entk", "task_submitted", Subject::Task(uid));
            self.unit_to_task.insert(unit.0, uid);
            if let Some(timeout) = self.fault.task_timeout {
                ctx.schedule_in(timeout, Ev::TaskTimeout(uid));
            }
        }
    }

    /// A task failed before it could even be submitted (bad kernel); it is
    /// terminal immediately. The pattern notification goes through the
    /// deferred-failure queue processed with the next notification batch —
    /// here we just mark the record; `process_notifications` owns pattern
    /// callbacks, so synthesize a unit-less failure via the outbox.
    fn fail_now(&mut self, uid: u64, reason: String, ctx: &mut Context<'_, Ev>) {
        let entry = &mut self.tasks[uid as usize];
        entry.terminal = true;
        entry.record.finished = Some(ctx.now());
        entry.record.success = false;
        self.live_tasks -= 1;
        self.failed_tasks += 1;
        self.telemetry
            .record(ctx.now(), "entk", "task_failed", Subject::Task(uid));
        self.telemetry.inc("entk.task_failures");
        // Defer the pattern callback so it happens in a clean handler pass.
        self.outbox
            .push((SimDuration::ZERO, Ev::TaskTimeout(uid | KERNEL_FAIL_FLAG)));
        let _ = reason;
    }

    fn on_timeout(
        &mut self,
        raw: u64,
        ctx: &mut Context<'_, Ev>,
        _notes: &mut [RuntimeNotification],
    ) {
        if raw & KERNEL_FAIL_FLAG != 0 {
            // Deferred kernel-binding failure: deliver to the pattern via
            // the pending-results queue.
            let uid = raw & !KERNEL_FAIL_FLAG;
            if let Some(entry) = self.tasks.get(uid as usize) {
                self.pending_results.push(TaskResult::failed(
                    entry.task.tag,
                    entry.task.stage.clone(),
                    "kernel binding failed",
                ));
            }
            return;
        }
        let uid = raw;
        let Some(entry) = self.tasks.get(uid as usize) else {
            return;
        };
        if entry.terminal {
            return;
        }
        // Kill-replace: cancel the running unit and retry.
        if let Some(unit) = entry.unit {
            let state = self.runtime.unit_state(unit);
            if state.map(UnitState::is_terminal).unwrap_or(true) {
                return; // already finishing; let the normal path handle it
            }
            self.unit_to_task.remove(unit.0);
            let mut notes = Vec::new();
            self.runtime.cancel_unit(unit, ctx, &mut notes);
            // Swallow the cancellation notifications for this unit.
            self.retry_or_fail(uid, "kill-replace: task exceeded timeout", ctx);
        }
    }

    fn retry_or_fail(&mut self, uid: u64, reason: &str, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        self.retry_or_fail_at(uid, reason, now);
    }

    /// The retry engine. Accounts the failed attempt's wall time (and any
    /// retry backoff) as failure-lost, then either resubmits the task after
    /// the backoff delay or reports terminal failure to the pattern once
    /// `max_retries` is exhausted.
    fn retry_or_fail_at(&mut self, uid: u64, reason: &str, now: SimTime) {
        let backoff = self.fault.backoff;
        let max_retries = self.fault.max_retries;
        let entry = &mut self.tasks[uid as usize];
        let lost = entry
            .attempt_started
            .take()
            .map(|started| now.saturating_since(started))
            .unwrap_or(SimDuration::ZERO);
        entry.record.lost_to_failures += lost;
        self.failure_lost += lost;
        self.telemetry
            .record(now, "entk", "task_attempt_failed", Subject::Task(uid));
        if entry.record.retries < max_retries {
            entry.record.retries += 1;
            entry.unit = None;
            let delay = backoff.delay(entry.record.retries, &mut self.retry_rng);
            entry.record.lost_to_failures += delay;
            self.failure_lost += delay;
            self.total_retries += 1;
            // Stamped at the instant the backoff completes, so the backoff
            // charge is recoverable from the trace as (task_retry −
            // task_attempt_failed) even if the resubmission never runs.
            self.telemetry
                .record(now + delay, "entk", "task_retry", Subject::Task(uid));
            self.telemetry.inc("entk.retries");
            self.outbox
                .push((delay, Ev::TasksReady(RETRY_BATCH, vec![uid])));
        } else {
            entry.terminal = true;
            entry.record.finished = Some(now);
            entry.record.success = false;
            self.live_tasks -= 1;
            self.failed_tasks += 1;
            self.telemetry
                .record(now, "entk", "task_failed", Subject::Task(uid));
            self.telemetry.inc("entk.task_failures");
            self.pending_results.push(TaskResult::failed(
                entry.task.tag,
                entry.task.stage.clone(),
                reason,
            ));
        }
    }

    /// Graceful degradation: the session lost every pilot mid-run and the
    /// fault policy asks to keep what we have. All live tasks fail in place
    /// and their results are delivered to the pattern; follow-up tasks it
    /// spawns fail the same way (there is nothing left to run them on),
    /// until the pattern stops emitting.
    fn degrade(&mut self, pattern: &mut dyn ExecutionPattern) {
        self.degraded = true;
        let now = self.engine.now();
        // Rounds are bounded: every round terminates all currently-live
        // tasks, and a pattern that keeps spawning replacements forever is
        // a bug we'd rather stop than loop on.
        for _ in 0..10_000 {
            // Uid order by construction: the slab iterates densely.
            let live: Vec<u64> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.terminal)
                .map(|(uid, _)| uid as u64)
                .collect();
            if live.is_empty() && self.pending_results.is_empty() {
                break;
            }
            for uid in live {
                let entry = &mut self.tasks[uid as usize];
                let started = entry.attempt_started.take();
                if started.is_some() {
                    self.telemetry
                        .record(now, "entk", "task_attempt_failed", Subject::Task(uid));
                }
                let lost = started
                    .map(|s| now.saturating_since(s))
                    .unwrap_or(SimDuration::ZERO);
                entry.record.lost_to_failures += lost;
                self.failure_lost += lost;
                entry.terminal = true;
                entry.record.finished = Some(now);
                entry.record.success = false;
                self.live_tasks -= 1;
                self.failed_tasks += 1;
                self.telemetry
                    .record(now, "entk", "task_failed", Subject::Task(uid));
                self.telemetry.inc("entk.task_failures");
                self.pending_results.push(TaskResult::failed(
                    entry.task.tag,
                    entry.task.stage.clone(),
                    "resource lost: all pilots terminated",
                ));
            }
            let results = std::mem::take(&mut self.pending_results);
            // The spawns below book pattern overhead, but their submission
            // events are discarded (`outbox.clear()`): that overhead is
            // never actually paid, so restore the accounted value after.
            let booked = self.pattern_overhead;
            for result in results {
                let follow_ups = pattern.on_task_done(&result);
                self.spawn_tasks(follow_ups, now);
            }
            self.pattern_overhead = booked;
            // Those spawns queued submission events that will never run.
            self.outbox.clear();
        }
    }

    fn process_notifications<'a, 'b>(
        &mut self,
        notes: Vec<RuntimeNotification>,
        ctx: &mut Context<'_, Ev>,
        pattern: Option<&'a mut (dyn ExecutionPattern + 'b)>,
    ) {
        for note in notes {
            match note {
                RuntimeNotification::Pilot { id, state, .. } => {
                    if state == PilotState::Failed || state == PilotState::Canceled {
                        self.dead_pilots.insert(id);
                    }
                }
                // Shrunk pilots keep running on their remaining cores; the
                // units they dropped arrive as `Unit` failures below.
                RuntimeNotification::PilotShrunk { .. } => {}
                RuntimeNotification::Unit {
                    id,
                    state,
                    time,
                    detail,
                } => {
                    let Some(&uid) = self.unit_to_task.get(id.0) else {
                        continue;
                    };
                    match state {
                        UnitState::Executing => {
                            if let Some(e) = self.tasks.get_mut(uid as usize) {
                                e.record.exec_start = Some(time);
                            }
                        }
                        UnitState::Done => {
                            self.unit_to_task.remove(id.0);
                            self.complete_task(uid, id, time);
                        }
                        UnitState::Failed | UnitState::Canceled => {
                            self.unit_to_task.remove(id.0);
                            let reason = detail.unwrap_or_else(|| format!("{state:?}"));
                            self.retry_or_fail(uid, &reason, ctx);
                        }
                        _ => {}
                    }
                }
            }
        }
        // Deliver queued results to the pattern, spawning follow-up tasks.
        if let Some(p) = pattern {
            let results = std::mem::take(&mut self.pending_results);
            for result in results {
                let follow_ups = p.on_task_done(&result);
                self.spawn_tasks(follow_ups, ctx.now());
            }
        }
    }

    fn complete_task(&mut self, uid: u64, unit: UnitId, time: SimTime) {
        // Record execution timestamps from the runtime profiler.
        let (exec_start, exec_stop) = self
            .runtime
            .profiler()
            .unit(unit)
            .map(|p| (p.exec_start, p.exec_stop))
            .unwrap_or((None, None));
        let entry = &mut self.tasks[uid as usize];
        entry.record.exec_start = exec_start.or(entry.record.exec_start);
        entry.record.exec_stop = exec_stop;
        // Model-execute the kernel for semantic output.
        let call = entry.task.kernel.clone();
        let plugin = self
            .registry
            .get(&call.plugin)
            .expect("validated at submission");
        match plugin.execute_model(&call.args, &mut self.rng) {
            Ok(output) => {
                entry.terminal = true;
                entry.record.finished = Some(time);
                entry.record.success = true;
                self.live_tasks -= 1;
                self.telemetry
                    .record(time, "entk", "task_done", Subject::Task(uid));
                self.pending_results.push(TaskResult::ok(
                    entry.task.tag,
                    entry.task.stage.clone(),
                    output,
                ));
            }
            Err(e) => {
                // Semantic failure after execution: retry path.
                let reason = e.to_string();
                self.retry_or_fail_at(uid, &reason, time);
            }
        }
    }

    // ------------------------------------------------------------- report

    fn build_report(&self, pattern_name: &str) -> ExecutionReport {
        let (runtime_pilot, resource_wait) = self
            .pilots
            .first()
            .and_then(|&p| self.runtime.profiler().pilot(p).copied())
            .map(|prof| {
                let submit = prof
                    .launched
                    .zip(prof.submitted)
                    .map(|(l, s)| l.saturating_since(s))
                    .unwrap_or(SimDuration::ZERO);
                let wait = prof
                    .active
                    .zip(prof.launched)
                    .map(|(a, l)| a.saturating_since(l))
                    .unwrap_or(SimDuration::ZERO);
                (submit, wait)
            })
            .unwrap_or((SimDuration::ZERO, SimDuration::ZERO));
        // Slab order is uid order; no sort needed.
        let tasks: Vec<TaskRecord> = self.tasks.iter().map(|e| e.record.clone()).collect();
        ExecutionReport {
            pattern: pattern_name.to_string(),
            resource: self.config.resource.clone(),
            cores: self.config.cores,
            ttc: self.engine.now().saturating_since(SimTime::ZERO),
            overheads: OverheadBreakdown {
                core: self.core_overhead,
                pattern: self.pattern_overhead,
                runtime_pilot,
                resource_wait,
                failure_lost: self.failure_lost,
            },
            tasks,
            failed_tasks: self.failed_tasks,
            total_retries: self.total_retries,
            partial: self.degraded || self.failed_tasks > 0,
            events: self.engine.steps(),
        }
    }
}

/// Sentinel bit marking deferred kernel-binding failures in `TaskTimeout`.
const KERNEL_FAIL_FLAG: u64 = 1 << 63;

/// Sentinel batch id for retry resubmissions in `TasksReady`. Retries carry
/// no pattern overhead, so the trace derivation skips this batch.
const RETRY_BATCH: u64 = u64::MAX;
