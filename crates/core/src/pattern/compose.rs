//! Higher-order pattern composition (paper §V: "combining unit patterns to
//! form higher-order patterns").
//!
//! [`SequencePattern`] runs unit patterns back to back: when one completes,
//! the next starts. More elaborate compositions (nesting, fan-out) can be
//! built the same way since composites implement [`ExecutionPattern`]
//! themselves.

use crate::pattern::ExecutionPattern;
use crate::task::{Task, TaskResult};

/// Runs a list of patterns sequentially.
pub struct SequencePattern {
    stages: Vec<Box<dyn ExecutionPattern + Send>>,
    current: usize,
    started: bool,
    /// Tasks of the current child still in flight.
    in_flight: usize,
}

impl SequencePattern {
    /// Creates a sequence; panics on an empty list.
    pub fn new(stages: Vec<Box<dyn ExecutionPattern + Send>>) -> Self {
        assert!(!stages.is_empty(), "empty sequence");
        SequencePattern {
            stages,
            current: 0,
            started: false,
            in_flight: 0,
        }
    }

    /// Index of the pattern currently executing.
    pub fn current_index(&self) -> usize {
        self.current
    }

    fn start_current(&mut self) -> Vec<Task> {
        self.stages[self.current].on_start()
    }

    /// Advances past finished children (children may finish without
    /// emitting tasks, e.g. when aborting), starting each next child.
    fn roll_forward(&mut self, mut tasks: Vec<Task>) -> Vec<Task> {
        while tasks.is_empty()
            && self.in_flight == 0
            && self.stages[self.current].is_done()
            && self.current + 1 < self.stages.len()
        {
            self.current += 1;
            tasks = self.start_current();
        }
        self.in_flight += tasks.len();
        tasks
    }
}

impl ExecutionPattern for SequencePattern {
    fn name(&self) -> &str {
        "sequence"
    }

    fn on_start(&mut self) -> Vec<Task> {
        assert!(!self.started, "on_start called twice");
        self.started = true;
        let tasks = self.start_current();
        self.roll_forward(tasks)
    }

    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        self.in_flight = self.in_flight.saturating_sub(1);
        let tasks = self.stages[self.current].on_task_done(result);
        self.roll_forward(tasks)
    }

    fn is_done(&self) -> bool {
        self.started
            && self.current == self.stages.len() - 1
            && self.stages[self.current].is_done()
            && self.in_flight == 0
    }

    fn progress(&self) -> String {
        format!(
            "part {}/{}: {}",
            self.current + 1,
            self.stages.len(),
            self.stages[self.current].progress()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::pipeline::BagOfTasks;
    use crate::pattern::testutil::drive;
    use crate::pattern::SimulationAnalysisLoop;
    use entk_kernels::KernelCall;
    use serde_json::json;

    fn bag(n: usize, label: &'static str) -> Box<dyn ExecutionPattern + Send> {
        Box::new(BagOfTasks::new(n, move |i| {
            KernelCall::new("misc.sleep", json!({"secs": 1.0, "label": label, "i": i}))
        }))
    }

    #[test]
    fn sequence_runs_children_in_order() {
        let mut seq = SequencePattern::new(vec![bag(2, "first"), bag(3, "second")]);
        let mut labels = Vec::new();
        let results = drive(
            &mut seq,
            |t| {
                labels.push(t.kernel.args["label"].as_str().unwrap().to_string());
                Ok(json!({}))
            },
            100,
        );
        assert_eq!(results.len(), 5);
        assert_eq!(labels[..2], ["first", "first"]);
        assert_eq!(labels[2..], ["second", "second", "second"]);
    }

    #[test]
    fn sequence_of_heterogeneous_patterns() {
        // Bag of tasks, then a SAL — the "higher-order pattern" composition
        // the paper proposes.
        let sal = SimulationAnalysisLoop::new(
            1,
            2,
            |_, i| KernelCall::new("md.amber", json!({"i": i})),
            |_, outs| vec![KernelCall::new("ana.coco", json!({"n_sims": outs.len()}))],
        );
        let mut seq = SequencePattern::new(vec![bag(2, "prep"), Box::new(sal)]);
        let mut stages = Vec::new();
        drive(
            &mut seq,
            |t| {
                stages.push(t.stage.clone());
                Ok(json!({}))
            },
            100,
        );
        assert_eq!(
            stages,
            vec!["task", "task", "simulation", "simulation", "analysis"]
        );
    }

    #[test]
    fn current_index_advances() {
        let mut seq = SequencePattern::new(vec![bag(1, "a"), bag(1, "b"), bag(1, "c")]);
        assert_eq!(seq.current_index(), 0);
        drive(&mut seq, |_| Ok(json!({})), 100);
        assert_eq!(seq.current_index(), 2);
        assert!(seq.is_done());
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        SequencePattern::new(Vec::new());
    }
}

/// Runs several patterns concurrently on the same allocation, interleaving
/// their tasks — the other half of higher-order composition (paper §V):
/// sequence for ordering, concurrency for co-scheduled campaigns.
///
/// Child correlation tags are namespaced into the top 8 bits of the tag
/// space, so children may use any tag below 2^56 (all built-in patterns do).
pub struct ConcurrentPatterns {
    children: Vec<Box<dyn ExecutionPattern + Send>>,
    started: bool,
}

const CHILD_SHIFT: u32 = 56;
const CHILD_TAG_MASK: u64 = (1 << CHILD_SHIFT) - 1;

impl ConcurrentPatterns {
    /// Creates a concurrent composition; panics on an empty list or more
    /// than 255 children.
    pub fn new(children: Vec<Box<dyn ExecutionPattern + Send>>) -> Self {
        assert!(!children.is_empty(), "empty composition");
        assert!(children.len() <= 255, "at most 255 concurrent children");
        ConcurrentPatterns {
            children,
            started: false,
        }
    }

    fn wrap(child: usize, mut tasks: Vec<Task>) -> Vec<Task> {
        for t in &mut tasks {
            assert!(
                t.tag <= CHILD_TAG_MASK,
                "child pattern tag exceeds the 2^56 namespace budget"
            );
            t.tag |= (child as u64) << CHILD_SHIFT;
        }
        tasks
    }
}

impl ExecutionPattern for ConcurrentPatterns {
    fn name(&self) -> &str {
        "concurrent"
    }

    fn on_start(&mut self) -> Vec<Task> {
        assert!(!self.started, "on_start called twice");
        self.started = true;
        let mut tasks = Vec::new();
        for (i, child) in self.children.iter_mut().enumerate() {
            tasks.extend(Self::wrap(i, child.on_start()));
        }
        tasks
    }

    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        let child = (result.tag >> CHILD_SHIFT) as usize;
        assert!(child < self.children.len(), "completion for unknown child");
        let mut inner = result.clone();
        inner.tag &= CHILD_TAG_MASK;
        Self::wrap(child, self.children[child].on_task_done(&inner))
    }

    fn is_done(&self) -> bool {
        self.started && self.children.iter().all(|c| c.is_done())
    }

    fn progress(&self) -> String {
        let done = self.children.iter().filter(|c| c.is_done()).count();
        format!("{done}/{} children done", self.children.len())
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use crate::pattern::pipeline::BagOfTasks;
    use crate::pattern::testutil::drive;
    use crate::pattern::SimulationAnalysisLoop;
    use entk_kernels::KernelCall;
    use serde_json::json;

    fn bag(n: usize, label: &'static str) -> Box<dyn ExecutionPattern + Send> {
        Box::new(BagOfTasks::new(n, move |i| {
            KernelCall::new("misc.sleep", json!({"secs": 1.0, "label": label, "i": i}))
        }))
    }

    #[test]
    fn all_children_start_immediately() {
        let mut cp = ConcurrentPatterns::new(vec![bag(2, "a"), bag(3, "b")]);
        let initial = cp.on_start();
        assert_eq!(initial.len(), 5, "both children's tasks in the first batch");
        let labels: Vec<&str> = initial
            .iter()
            .map(|t| t.kernel.args["label"].as_str().unwrap())
            .collect();
        assert!(labels.contains(&"a") && labels.contains(&"b"));
    }

    #[test]
    fn completions_route_to_the_right_child() {
        let mut cp = ConcurrentPatterns::new(vec![
            Box::new(SimulationAnalysisLoop::new(
                1,
                2,
                |_, i| KernelCall::new("misc.sleep", json!({"secs": 1.0, "i": i})),
                |_, outs| vec![KernelCall::new("ana.coco", json!({"n_sims": outs.len()}))],
            )),
            bag(2, "side"),
        ]);
        let results = drive(&mut cp, |_| Ok(json!({})), 100);
        // SAL: 2 sims + 1 analysis; bag: 2 tasks.
        assert_eq!(results.len(), 5);
        assert!(cp.is_done());
    }

    #[test]
    fn mixed_with_sequence_composition() {
        // (bag ; bag) || bag — nesting both composites.
        let seq = SequencePattern::new(vec![bag(1, "s1"), bag(1, "s2")]);
        let mut cp = ConcurrentPatterns::new(vec![Box::new(seq), bag(2, "par")]);
        let mut order = Vec::new();
        drive(
            &mut cp,
            |t| {
                order.push(t.kernel.args["label"].as_str().unwrap().to_string());
                Ok(json!({}))
            },
            100,
        );
        assert_eq!(order.len(), 4);
        let pos = |l: &str| order.iter().position(|x| x == l).unwrap();
        assert!(pos("s2") > pos("s1"), "sequence order preserved inside");
    }

    #[test]
    #[should_panic(expected = "empty composition")]
    fn empty_composition_rejected() {
        ConcurrentPatterns::new(Vec::new());
    }
}
