//! The Ensemble-Exchange pattern (paper §III-D2).
//!
//! Interacting ensemble members alternate between an MD state and an
//! exchange state. Two exchange topologies are supported:
//!
//! * [`ExchangeMode::GlobalSynchronous`] — one exchange task per cycle over
//!   all replicas, as in the paper's scaling experiments (Figs. 5–6, where
//!   exchange time depends on the number of replicas);
//! * [`ExchangeMode::PairwiseAsync`] — replicas pair up as they finish,
//!   with no global barrier, matching the paper's description of EE
//!   ("no obligatory global synchronization … pairwise") and serving as an
//!   ablation point.

use crate::pattern::ExecutionPattern;
use crate::task::{Task, TaskResult};
use entk_kernels::KernelCall;
use entk_md::TemperatureLadder;
use serde_json::{json, Value};
use std::collections::HashMap;

/// Exchange topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Barrier per cycle, one serial exchange task over all replicas.
    GlobalSynchronous,
    /// Pairwise exchanges between replicas as they finish their segments.
    PairwiseAsync,
}

const EXCHANGE_TAG_BASE: u64 = 1 << 33;

type MdKernelFn = Box<dyn FnMut(usize, usize, f64) -> KernelCall + Send>;

/// The EE pattern.
pub struct EnsembleExchange {
    n_replicas: usize,
    n_cycles: usize,
    md_kernel: MdKernelFn,
    mode: ExchangeMode,
    ladder: TemperatureLadder,
    /// Cost-model parameters forwarded to the exchange kernel.
    exchange_base_secs: f64,
    exchange_per_replica_secs: f64,

    rung_of: Vec<usize>,
    cycle_of: Vec<usize>,
    energy_of: Vec<f64>,
    /// Replicas finished with all cycles.
    completed: usize,
    /// GlobalSynchronous: md completions so far in the current cycle.
    cycle_md_done: usize,
    /// PairwiseAsync: replicas waiting for an exchange partner.
    waiting: Vec<usize>,
    /// In-flight exchange tasks: tag → participating replicas.
    exchanges: HashMap<u64, Vec<usize>>,
    exchange_seq: u64,
    swaps_accepted: u64,
    swaps_attempted: u64,
    started: bool,
    aborted: bool,
}

impl EnsembleExchange {
    /// Creates an EE pattern of `n_replicas` replicas over `n_cycles`
    /// MD+exchange cycles, with temperatures from `ladder` (must have one
    /// rung per replica). `md_kernel(replica, cycle, temperature)` binds
    /// each MD segment.
    pub fn new(
        n_replicas: usize,
        n_cycles: usize,
        ladder: TemperatureLadder,
        md_kernel: impl FnMut(usize, usize, f64) -> KernelCall + Send + 'static,
    ) -> Self {
        assert!(n_replicas > 0 && n_cycles > 0, "empty pattern");
        assert_eq!(ladder.len(), n_replicas, "one ladder rung per replica");
        EnsembleExchange {
            n_replicas,
            n_cycles,
            md_kernel: Box::new(md_kernel),
            mode: ExchangeMode::GlobalSynchronous,
            ladder,
            exchange_base_secs: 1.0,
            exchange_per_replica_secs: 0.005,
            rung_of: (0..n_replicas).collect(),
            cycle_of: vec![0; n_replicas],
            energy_of: vec![0.0; n_replicas],
            completed: 0,
            cycle_md_done: 0,
            waiting: Vec::new(),
            exchanges: HashMap::new(),
            exchange_seq: 0,
            swaps_accepted: 0,
            swaps_attempted: 0,
            started: false,
            aborted: false,
        }
    }

    /// Selects the exchange topology (builder style).
    pub fn with_mode(mut self, mode: ExchangeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the exchange cost-model parameters (builder style).
    pub fn with_exchange_cost(mut self, base_secs: f64, per_replica_secs: f64) -> Self {
        self.exchange_base_secs = base_secs;
        self.exchange_per_replica_secs = per_replica_secs;
        self
    }

    /// Accepted/attempted swap counts so far.
    pub fn swap_stats(&self) -> (u64, u64) {
        (self.swaps_accepted, self.swaps_attempted)
    }

    /// Current temperature rung of each replica.
    pub fn rungs(&self) -> &[usize] {
        &self.rung_of
    }

    /// Whether the pattern aborted on a task failure.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    fn md_task(&mut self, replica: usize) -> Task {
        let t = self.ladder.temp(self.rung_of[replica]);
        let cycle = self.cycle_of[replica];
        Task::new(
            replica as u64,
            "simulation",
            (self.md_kernel)(replica, cycle, t),
        )
    }

    fn exchange_task(&mut self, participants: Vec<usize>) -> Task {
        let energies: Vec<f64> = participants.iter().map(|&r| self.energy_of[r]).collect();
        let temps: Vec<f64> = participants
            .iter()
            .map(|&r| self.ladder.temp(self.rung_of[r]))
            .collect();
        let tag = EXCHANGE_TAG_BASE + self.exchange_seq;
        let kernel = KernelCall::new(
            "md.exchange",
            json!({
                "energies": energies,
                "temperatures": temps,
                "phase": self.exchange_seq % 2,
                "seed": self.exchange_seq,
                "base_secs": self.exchange_base_secs,
                "per_replica_secs": self.exchange_per_replica_secs,
            }),
        );
        self.exchange_seq += 1;
        self.exchanges.insert(tag, participants);
        Task::new(tag, "exchange", kernel)
    }

    fn apply_swaps(&mut self, participants: &[usize], output: &Value) {
        self.swaps_attempted += output["attempted"].as_u64().unwrap_or(0);
        if let Some(swaps) = output["swaps"].as_array() {
            for pair in swaps {
                let (Some(a), Some(b)) = (
                    pair.get(0).and_then(Value::as_u64),
                    pair.get(1).and_then(Value::as_u64),
                ) else {
                    continue;
                };
                let (ra, rb) = (participants[a as usize], participants[b as usize]);
                self.rung_of.swap(ra, rb);
                self.swaps_accepted += 1;
            }
        }
    }

    /// PairwiseAsync: try to pair waiting replicas; prefer ladder-adjacent
    /// pairs, fall back to the two longest-waiting.
    fn try_pair(&mut self) -> Vec<Task> {
        let mut tasks = Vec::new();
        loop {
            if self.waiting.len() < 2 {
                break;
            }
            let mut pair: Option<(usize, usize)> = None;
            'outer: for i in 0..self.waiting.len() {
                for j in (i + 1)..self.waiting.len() {
                    let (ra, rb) = (self.waiting[i], self.waiting[j]);
                    if self.rung_of[ra].abs_diff(self.rung_of[rb]) == 1 {
                        pair = Some((i, j));
                        break 'outer;
                    }
                }
            }
            let (i, j) = pair.unwrap_or((0, 1));
            // Remove higher index first.
            let rb = self.waiting.remove(j);
            let ra = self.waiting.remove(i);
            tasks.push(self.exchange_task(vec![ra, rb]));
        }
        // Deadlock release: a lone waiter with no possible future partner
        // proceeds without exchanging.
        if self.waiting.len() == 1 {
            let others_live = self
                .n_replicas
                .saturating_sub(self.completed + self.waiting.len());
            if others_live == 0 && self.exchanges.is_empty() {
                let r = self.waiting.pop().expect("one waiter");
                tasks.extend(self.advance(r));
            }
        }
        tasks
    }

    /// Moves a replica to its next cycle, emitting its MD task, or marks it
    /// completed.
    fn advance(&mut self, replica: usize) -> Vec<Task> {
        self.cycle_of[replica] += 1;
        if self.cycle_of[replica] >= self.n_cycles {
            self.completed += 1;
            Vec::new()
        } else {
            vec![self.md_task(replica)]
        }
    }
}

impl ExecutionPattern for EnsembleExchange {
    fn name(&self) -> &str {
        "ensemble-exchange"
    }

    fn on_start(&mut self) -> Vec<Task> {
        assert!(!self.started, "on_start called twice");
        self.started = true;
        (0..self.n_replicas).map(|r| self.md_task(r)).collect()
    }

    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        if self.aborted {
            return Vec::new();
        }
        if !result.success {
            self.aborted = true;
            return Vec::new();
        }
        if result.tag >= EXCHANGE_TAG_BASE {
            // An exchange finished.
            let participants = self
                .exchanges
                .remove(&result.tag)
                .expect("exchange bookkeeping");
            self.apply_swaps(&participants, &result.output);
            match self.mode {
                ExchangeMode::GlobalSynchronous => {
                    let mut tasks = Vec::new();
                    for r in 0..self.n_replicas {
                        tasks.extend(self.advance(r));
                    }
                    self.cycle_md_done = 0;
                    tasks
                }
                ExchangeMode::PairwiseAsync => {
                    let mut tasks = Vec::new();
                    for r in participants {
                        tasks.extend(self.advance(r));
                    }
                    tasks.extend(self.try_pair());
                    tasks
                }
            }
        } else {
            // An MD segment finished.
            let r = result.tag as usize;
            self.energy_of[r] = result.output["potential"].as_f64().unwrap_or(0.0);
            match self.mode {
                ExchangeMode::GlobalSynchronous => {
                    self.cycle_md_done += 1;
                    if self.cycle_md_done == self.n_replicas {
                        let participants: Vec<usize> = (0..self.n_replicas).collect();
                        vec![self.exchange_task(participants)]
                    } else {
                        Vec::new()
                    }
                }
                ExchangeMode::PairwiseAsync => {
                    if self.cycle_of[r] + 1 >= self.n_cycles {
                        // Final segment: finish without a closing exchange.
                        self.cycle_of[r] += 1;
                        self.completed += 1;
                        self.try_pair()
                    } else {
                        self.waiting.push(r);
                        self.try_pair()
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        if !self.started {
            return false;
        }
        if self.aborted {
            return true;
        }
        self.completed == self.n_replicas && self.exchanges.is_empty()
    }

    fn progress(&self) -> String {
        format!(
            "{}/{} replicas done, {} swaps accepted / {} attempted",
            self.completed, self.n_replicas, self.swaps_accepted, self.swaps_attempted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::testutil::drive;
    use entk_kernels::{ExchangeKernel, KernelPlugin};

    fn md_kernel(r: usize, c: usize, t: f64) -> KernelCall {
        KernelCall::new(
            "md.amber",
            json!({ "replica": r, "cycle": c, "temperature": t }),
        )
    }

    /// Executes tasks: MD segments return an energy anti-correlated with
    /// replica index (so swaps are certain between neighbours); exchange
    /// tasks run the real exchange kernel.
    fn executor(task: &Task) -> Result<Value, String> {
        if task.stage == "exchange" {
            ExchangeKernel
                .execute(&task.kernel.args)
                .map_err(|e| e.to_string())
        } else {
            let r = task.kernel.args["replica"].as_f64().unwrap();
            Ok(json!({ "potential": 100.0 - 10.0 * r }))
        }
    }

    #[test]
    fn global_sync_runs_md_and_exchanges_per_cycle() {
        let n = 4;
        let cycles = 3;
        let mut pattern = EnsembleExchange::new(
            n,
            cycles,
            TemperatureLadder::geometric(n, 1.0, 2.0),
            md_kernel,
        );
        let results = drive(&mut pattern, executor, 1000);
        let md = results.iter().filter(|r| r.stage == "simulation").count();
        let ex = results.iter().filter(|r| r.stage == "exchange").count();
        assert_eq!(md, n * cycles);
        assert_eq!(ex, cycles);
        let (accepted, attempted) = pattern.swap_stats();
        assert!(attempted > 0);
        assert!(accepted <= attempted);
    }

    #[test]
    fn global_sync_md_waits_for_exchange_barrier() {
        let n = 3;
        let mut pattern =
            EnsembleExchange::new(n, 2, TemperatureLadder::geometric(n, 1.0, 2.0), md_kernel);
        let mut log = Vec::new();
        drive(
            &mut pattern,
            |t| {
                log.push((t.stage.clone(), t.kernel.args["cycle"].as_u64()));
                executor(t)
            },
            1000,
        );
        // No cycle-1 MD before the first exchange.
        let first_exchange = log.iter().position(|(s, _)| s == "exchange").unwrap();
        for (stage, cycle) in &log[..first_exchange] {
            assert_eq!(stage, "simulation");
            assert_eq!(*cycle, Some(0));
        }
    }

    #[test]
    fn swaps_move_replicas_up_the_ladder() {
        // Replica 0 (coldest rung) carries the highest energy: after cycles
        // of certain swaps it should have moved off rung 0.
        let n = 4;
        let mut pattern =
            EnsembleExchange::new(n, 4, TemperatureLadder::geometric(n, 1.0, 2.0), md_kernel);
        drive(&mut pattern, executor, 1000);
        assert!(
            pattern.rungs()[0] > 0,
            "replica 0 never moved: rungs {:?}",
            pattern.rungs()
        );
        // Rungs remain a permutation.
        let mut rungs = pattern.rungs().to_vec();
        rungs.sort_unstable();
        assert_eq!(rungs, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn pairwise_async_completes_even_replica_counts() {
        let n = 6;
        let cycles = 3;
        let mut pattern = EnsembleExchange::new(
            n,
            cycles,
            TemperatureLadder::geometric(n, 1.0, 2.0),
            md_kernel,
        )
        .with_mode(ExchangeMode::PairwiseAsync);
        let results = drive(&mut pattern, executor, 1000);
        let md = results.iter().filter(|r| r.stage == "simulation").count();
        assert_eq!(md, n * cycles);
        // Pairwise exchanges involve 2 replicas each; final segments skip
        // the closing exchange.
        let ex = results.iter().filter(|r| r.stage == "exchange").count();
        assert_eq!(ex, n * (cycles - 1) / 2);
    }

    #[test]
    fn pairwise_async_odd_replica_count_terminates() {
        let n = 5;
        let mut pattern =
            EnsembleExchange::new(n, 3, TemperatureLadder::geometric(n, 1.0, 2.0), md_kernel)
                .with_mode(ExchangeMode::PairwiseAsync);
        let results = drive(&mut pattern, executor, 1000);
        assert!(pattern.is_done());
        let md = results.iter().filter(|r| r.stage == "simulation").count();
        assert_eq!(md, n * 3);
    }

    #[test]
    fn failure_aborts_pattern() {
        let n = 3;
        let mut pattern =
            EnsembleExchange::new(n, 2, TemperatureLadder::geometric(n, 1.0, 2.0), md_kernel);
        drive(
            &mut pattern,
            |t| {
                if t.tag == 1 {
                    Err("replica crashed".into())
                } else {
                    executor(t)
                }
            },
            1000,
        );
        assert!(pattern.aborted());
        assert!(pattern.is_done());
    }

    #[test]
    #[should_panic(expected = "one ladder rung per replica")]
    fn ladder_size_must_match() {
        EnsembleExchange::new(4, 1, TemperatureLadder::geometric(3, 1.0, 2.0), md_kernel);
    }
}
