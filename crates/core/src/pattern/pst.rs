//! The Pipeline–Stage–Task (PST) application model.
//!
//! The paper's prototype exposes pattern templates; the Ensemble Toolkit
//! that grew out of it (RADICAL-EnTK 2.x) settled on PST: an application is
//! a set of concurrent **pipelines**, each a sequence of **stages**, each a
//! set of concurrent **tasks**. Stages within a pipeline are barriers;
//! pipelines are independent. This module implements PST as a higher-order
//! pattern on the same executor — demonstrating the paper's claim that unit
//! patterns compose into richer application models.

use crate::pattern::ExecutionPattern;
use crate::task::{Task, TaskResult};
use entk_kernels::KernelCall;
use std::collections::HashMap;

/// A task within a stage.
#[derive(Debug, Clone)]
pub struct PstTask {
    /// Task name (becomes part of trace labels).
    pub name: String,
    /// Bound kernel.
    pub kernel: KernelCall,
}

impl PstTask {
    /// Creates a task.
    pub fn new(name: impl Into<String>, kernel: KernelCall) -> Self {
        PstTask {
            name: name.into(),
            kernel,
        }
    }
}

/// A stage: a set of tasks that run concurrently; the next stage of the
/// same pipeline starts when all of them finished.
#[derive(Debug, Clone, Default)]
pub struct Stage {
    /// Stage name; used as the report's stage label.
    pub name: String,
    /// Concurrent tasks.
    pub tasks: Vec<PstTask>,
}

impl Stage {
    /// Creates an empty stage.
    pub fn new(name: impl Into<String>) -> Self {
        Stage {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Adds a task (builder style).
    pub fn with_task(mut self, task: PstTask) -> Self {
        self.tasks.push(task);
        self
    }
}

/// A pipeline: an ordered sequence of stages.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Pipeline name (bookkeeping).
    pub name: String,
    /// Ordered stages.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new(name: impl Into<String>) -> Self {
        Pipeline {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    /// Appends a stage (builder style).
    pub fn with_stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeState {
    Running { stage: usize, pending: usize },
    Done,
    Failed,
}

/// A PST workflow: concurrent pipelines of staged task sets, executable on
/// any backend as an [`ExecutionPattern`].
pub struct PstWorkflow {
    pipelines: Vec<Pipeline>,
    states: Vec<PipeState>,
    /// tag → (pipeline, stage) for in-flight tasks.
    tags: HashMap<u64, (usize, usize)>,
    next_tag: u64,
    started: bool,
}

impl PstWorkflow {
    /// Creates a workflow from pipelines. Pipelines must be non-empty and
    /// every stage must contain at least one task.
    pub fn new(pipelines: Vec<Pipeline>) -> Self {
        assert!(!pipelines.is_empty(), "PST workflow needs pipelines");
        for p in &pipelines {
            assert!(!p.stages.is_empty(), "pipeline {:?} has no stages", p.name);
            for s in &p.stages {
                assert!(
                    !s.tasks.is_empty(),
                    "stage {:?} of pipeline {:?} has no tasks",
                    s.name,
                    p.name
                );
            }
        }
        let states = pipelines
            .iter()
            .map(|_| PipeState::Running {
                stage: 0,
                pending: 0,
            })
            .collect();
        PstWorkflow {
            pipelines,
            states,
            tags: HashMap::new(),
            next_tag: 0,
            started: false,
        }
    }

    /// Number of pipelines that failed.
    pub fn failed_pipelines(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == PipeState::Failed)
            .count()
    }

    /// Total tasks across all pipelines and stages.
    pub fn total_tasks(&self) -> usize {
        self.pipelines
            .iter()
            .flat_map(|p| &p.stages)
            .map(|s| s.tasks.len())
            .sum()
    }

    fn emit_stage(&mut self, pipe: usize, stage: usize) -> Vec<Task> {
        let stage_def = &self.pipelines[pipe].stages[stage];
        let mut tasks = Vec::with_capacity(stage_def.tasks.len());
        for t in &stage_def.tasks {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.tags.insert(tag, (pipe, stage));
            tasks.push(Task::new(tag, stage_def.name.clone(), t.kernel.clone()));
        }
        self.states[pipe] = PipeState::Running {
            stage,
            pending: tasks.len(),
        };
        tasks
    }
}

impl ExecutionPattern for PstWorkflow {
    fn name(&self) -> &str {
        "pst-workflow"
    }

    fn on_start(&mut self) -> Vec<Task> {
        assert!(!self.started, "on_start called twice");
        self.started = true;
        let mut tasks = Vec::new();
        for pipe in 0..self.pipelines.len() {
            tasks.extend(self.emit_stage(pipe, 0));
        }
        tasks
    }

    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        let Some(&(pipe, stage)) = self.tags.get(&result.tag) else {
            panic!("completion for unknown PST tag {}", result.tag);
        };
        self.tags.remove(&result.tag);
        let PipeState::Running {
            stage: cur,
            pending,
        } = self.states[pipe]
        else {
            return Vec::new(); // pipeline already failed; drain stragglers
        };
        debug_assert_eq!(cur, stage, "completion from a stale stage");
        if !result.success {
            self.states[pipe] = PipeState::Failed;
            return Vec::new();
        }
        let pending = pending - 1;
        self.states[pipe] = PipeState::Running { stage, pending };
        if pending > 0 {
            return Vec::new(); // stage barrier not reached
        }
        let next = stage + 1;
        if next >= self.pipelines[pipe].stages.len() {
            self.states[pipe] = PipeState::Done;
            Vec::new()
        } else {
            self.emit_stage(pipe, next)
        }
    }

    fn is_done(&self) -> bool {
        self.started
            && self.states.iter().zip(0..).all(|(s, pipe)| match *s {
                PipeState::Running { .. } => false,
                PipeState::Done => true,
                // A failed pipeline is finished once its stragglers drained.
                PipeState::Failed => !self.tags.values().any(|&(p, _)| p == pipe),
            })
    }

    fn progress(&self) -> String {
        let done = self
            .states
            .iter()
            .filter(|s| **s == PipeState::Done)
            .count();
        format!(
            "{}/{} pipelines done ({} failed)",
            done,
            self.pipelines.len(),
            self.failed_pipelines()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::testutil::drive;
    use serde_json::json;

    fn k(label: &str) -> KernelCall {
        KernelCall::new("misc.sleep", json!({ "secs": 1.0, "label": label }))
    }

    fn two_pipe_workflow() -> PstWorkflow {
        PstWorkflow::new(vec![
            Pipeline::new("p0")
                .with_stage(
                    Stage::new("prepare")
                        .with_task(PstTask::new("a", k("p0.prep.a")))
                        .with_task(PstTask::new("b", k("p0.prep.b"))),
                )
                .with_stage(Stage::new("run").with_task(PstTask::new("c", k("p0.run.c")))),
            Pipeline::new("p1")
                .with_stage(Stage::new("prepare").with_task(PstTask::new("d", k("p1.prep.d")))),
        ])
    }

    #[test]
    fn stage_barriers_within_pipeline() {
        let mut wf = two_pipe_workflow();
        let mut order = Vec::new();
        let results = drive(
            &mut wf,
            |t| {
                order.push(t.kernel.args["label"].as_str().unwrap().to_string());
                Ok(json!({}))
            },
            100,
        );
        assert_eq!(results.len(), 4);
        let pos = |l: &str| order.iter().position(|x| x == l).unwrap();
        // p0.run.c strictly after both p0 prepare tasks.
        assert!(pos("p0.run.c") > pos("p0.prep.a"));
        assert!(pos("p0.run.c") > pos("p0.prep.b"));
    }

    #[test]
    fn pipelines_are_independent() {
        let mut wf = two_pipe_workflow();
        // Fail everything in p0; p1 still completes.
        drive(
            &mut wf,
            |t| {
                let label = t.kernel.args["label"].as_str().unwrap();
                if label.starts_with("p0") {
                    Err("p0 task failed".into())
                } else {
                    Ok(json!({}))
                }
            },
            100,
        );
        assert_eq!(wf.failed_pipelines(), 1);
        assert!(wf.is_done());
    }

    #[test]
    fn total_task_accounting() {
        let wf = two_pipe_workflow();
        assert_eq!(wf.total_tasks(), 4);
    }

    #[test]
    fn stage_names_become_report_stages() {
        let mut wf = two_pipe_workflow();
        let mut stages = Vec::new();
        drive(
            &mut wf,
            |t| {
                stages.push(t.stage.clone());
                Ok(json!({}))
            },
            100,
        );
        assert!(stages.contains(&"prepare".to_string()));
        assert!(stages.contains(&"run".to_string()));
    }

    #[test]
    #[should_panic(expected = "has no tasks")]
    fn empty_stage_rejected() {
        PstWorkflow::new(vec![Pipeline::new("p").with_stage(Stage::new("empty"))]);
    }

    #[test]
    #[should_panic(expected = "needs pipelines")]
    fn empty_workflow_rejected() {
        PstWorkflow::new(Vec::new());
    }

    #[test]
    fn failure_mid_stage_drains_siblings() {
        // Two tasks in a stage; one fails while the other is in flight.
        let mut wf = PstWorkflow::new(vec![Pipeline::new("p").with_stage(
            Stage::new("s")
                .with_task(PstTask::new("ok", k("ok")))
                .with_task(PstTask::new("bad", k("bad"))),
        )]);
        drive(
            &mut wf,
            |t| {
                if t.kernel.args["label"] == "bad" {
                    Err("boom".into())
                } else {
                    Ok(json!({}))
                }
            },
            100,
        );
        assert!(wf.is_done());
        assert_eq!(wf.failed_pipelines(), 1);
    }
}
