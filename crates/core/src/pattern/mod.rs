//! Execution patterns (paper §III-B component 1, §III-D).
//!
//! A pattern is "a high-level object that represents the synchronization and
//! communication patterns of ensembles … a parametrized template". Patterns
//! are event-driven state machines: the execution plugin calls
//! [`ExecutionPattern::on_start`] for the initial task batch and
//! [`ExecutionPattern::on_task_done`] for every completion; each call may
//! emit follow-up tasks. This shape expresses all three unit patterns —
//! ensembles of pipelines, ensemble exchange, and the simulation-analysis
//! loop — as well as their compositions and adaptive variants.

pub mod compose;
pub mod exchange;
pub mod pipeline;
pub mod pst;
pub mod sal;

use crate::task::{Task, TaskResult};

/// An ensemble execution pattern.
pub trait ExecutionPattern {
    /// Pattern name for reports.
    fn name(&self) -> &str;

    /// Emits the initial batch of tasks. Called exactly once.
    fn on_start(&mut self) -> Vec<Task>;

    /// Handles a task completion (success or terminal failure) and emits
    /// follow-up tasks.
    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task>;

    /// True once the pattern has no more work (all emitted tasks completed
    /// and no further tasks will be produced).
    fn is_done(&self) -> bool;

    /// Short human-readable progress line.
    fn progress(&self) -> String {
        String::new()
    }
}

/// Mutable references to patterns are themselves patterns, so wrappers and
/// drivers can borrow rather than own.
impl<P: ExecutionPattern + ?Sized> ExecutionPattern for &mut P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_start(&mut self) -> Vec<Task> {
        (**self).on_start()
    }
    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        (**self).on_task_done(result)
    }
    fn is_done(&self) -> bool {
        (**self).is_done()
    }
    fn progress(&self) -> String {
        (**self).progress()
    }
}

pub use compose::{ConcurrentPatterns, SequencePattern};
pub use exchange::{EnsembleExchange, ExchangeMode};
pub use pipeline::{BagOfTasks, EnsembleOfPipelines};
pub use pst::{Pipeline, PstTask, PstWorkflow, Stage};
pub use sal::SimulationAnalysisLoop;

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny synchronous pattern driver used by pattern unit tests: executes
    //! tasks by calling a provided "executor" closure immediately, in
    //! submission order. No overheads, no concurrency — pure pattern logic.

    use super::*;
    use serde_json::Value;
    use std::collections::VecDeque;

    /// Drives `pattern` to completion, executing every task with `exec`.
    /// Returns all task results in completion order. Panics after
    /// `max_tasks` executions (runaway-pattern guard).
    pub fn drive<P: ExecutionPattern>(
        pattern: &mut P,
        mut exec: impl FnMut(&Task) -> Result<Value, String>,
        max_tasks: usize,
    ) -> Vec<TaskResult> {
        let mut queue: VecDeque<Task> = pattern.on_start().into();
        let mut results = Vec::new();
        let mut executed = 0;
        while let Some(task) = queue.pop_front() {
            executed += 1;
            assert!(
                executed <= max_tasks,
                "pattern emitted more than {max_tasks} tasks"
            );
            let result = match exec(&task) {
                Ok(output) => TaskResult::ok(task.tag, task.stage.clone(), output),
                Err(e) => TaskResult::failed(task.tag, task.stage.clone(), e),
            };
            queue.extend(pattern.on_task_done(&result));
            results.push(result);
        }
        assert!(
            pattern.is_done(),
            "pattern queue drained but is_done() is false: {}",
            pattern.progress()
        );
        results
    }
}
