//! The Ensemble-of-Pipelines pattern (paper §III-D1) and its single-stage
//! special case, the bag of tasks.

use crate::pattern::ExecutionPattern;
use crate::task::{Task, TaskResult};
use entk_kernels::KernelCall;

/// Per-pipeline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeState {
    /// Currently executing stage `s`.
    Running(usize),
    /// All stages completed.
    Done,
    /// Aborted at stage `s` after a task failure.
    Failed(usize),
}

/// An ensemble of N independent pipelines of M ordered stages.
///
/// Each stage of a pipeline depends on its predecessor; pipelines do not
/// synchronize with each other — a fast pipeline may be on its last stage
/// while a slow one is still on its first.
pub struct EnsembleOfPipelines {
    n_pipelines: usize,
    n_stages: usize,
    kernel_for: Box<dyn FnMut(usize, usize) -> KernelCall + Send>,
    stage_label: Box<dyn Fn(usize) -> String + Send>,
    pipes: Vec<PipeState>,
    /// Pipelines still in `Running`; keeps `is_done` O(1) — the driver
    /// polls it after every event, so an O(n) scan here is quadratic over
    /// a run.
    running: usize,
    started: bool,
}

impl EnsembleOfPipelines {
    /// Creates the pattern. `kernel_for(pipeline, stage)` binds the kernel
    /// of each task; stages are labelled `stage-<index>` by default.
    pub fn new(
        n_pipelines: usize,
        n_stages: usize,
        kernel_for: impl FnMut(usize, usize) -> KernelCall + Send + 'static,
    ) -> Self {
        assert!(n_pipelines > 0 && n_stages > 0, "empty pattern");
        EnsembleOfPipelines {
            n_pipelines,
            n_stages,
            kernel_for: Box::new(kernel_for),
            stage_label: Box::new(|s| format!("stage-{s}")),
            pipes: vec![PipeState::Running(0); n_pipelines],
            running: n_pipelines,
            started: false,
        }
    }

    /// Overrides stage labels (builder style), e.g. `["mkfile", "ccount"]`.
    pub fn with_stage_labels(mut self, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.n_stages, "one label per stage");
        self.stage_label = Box::new(move |s| labels[s].clone());
        self
    }

    /// Number of pipelines that aborted on a task failure.
    pub fn failed_pipelines(&self) -> usize {
        self.pipes
            .iter()
            .filter(|p| matches!(p, PipeState::Failed(_)))
            .count()
    }

    fn task_for(&mut self, pipeline: usize, stage: usize) -> Task {
        let kernel = (self.kernel_for)(pipeline, stage);
        Task::new(pipeline as u64, (self.stage_label)(stage), kernel)
    }
}

impl ExecutionPattern for EnsembleOfPipelines {
    fn name(&self) -> &str {
        "ensemble-of-pipelines"
    }

    fn on_start(&mut self) -> Vec<Task> {
        assert!(!self.started, "on_start called twice");
        self.started = true;
        (0..self.n_pipelines).map(|p| self.task_for(p, 0)).collect()
    }

    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        let p = result.tag as usize;
        let PipeState::Running(stage) = self.pipes[p] else {
            panic!("completion for pipeline {p} which is not running");
        };
        if !result.success {
            self.pipes[p] = PipeState::Failed(stage);
            self.running -= 1;
            return Vec::new();
        }
        let next = stage + 1;
        if next >= self.n_stages {
            self.pipes[p] = PipeState::Done;
            self.running -= 1;
            Vec::new()
        } else {
            self.pipes[p] = PipeState::Running(next);
            vec![self.task_for(p, next)]
        }
    }

    fn is_done(&self) -> bool {
        self.started && self.running == 0
    }

    fn progress(&self) -> String {
        let done = self.pipes.iter().filter(|p| **p == PipeState::Done).count();
        format!(
            "{}/{} pipelines done ({} failed)",
            done,
            self.n_pipelines,
            self.failed_pipelines()
        )
    }
}

/// A bag of independent tasks: the degenerate one-stage ensemble of
/// pipelines, provided as its own constructor because it is the unit
/// pattern the paper uses to introduce the concept (§III-B).
pub struct BagOfTasks {
    inner: EnsembleOfPipelines,
}

impl BagOfTasks {
    /// Creates a bag of `n` tasks with `kernel_for(index)` bindings.
    pub fn new(n: usize, mut kernel_for: impl FnMut(usize) -> KernelCall + Send + 'static) -> Self {
        BagOfTasks {
            inner: EnsembleOfPipelines::new(n, 1, move |p, _| kernel_for(p))
                .with_stage_labels(vec!["task".into()]),
        }
    }
}

impl ExecutionPattern for BagOfTasks {
    fn name(&self) -> &str {
        "bag-of-tasks"
    }
    fn on_start(&mut self) -> Vec<Task> {
        self.inner.on_start()
    }
    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        self.inner.on_task_done(result)
    }
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
    fn progress(&self) -> String {
        self.inner.progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::testutil::drive;
    use serde_json::json;

    fn sleep_kernel() -> KernelCall {
        KernelCall::new("misc.sleep", json!({"secs": 1.0}))
    }

    #[test]
    fn all_stages_of_all_pipelines_execute_in_order() {
        let mut order: Vec<(usize, String)> = Vec::new();
        let mut pattern = EnsembleOfPipelines::new(3, 2, |_, _| sleep_kernel())
            .with_stage_labels(vec!["mkfile".into(), "ccount".into()]);
        let results = drive(
            &mut pattern,
            |t| {
                order.push((t.tag as usize, t.stage.clone()));
                Ok(json!({}))
            },
            100,
        );
        assert_eq!(results.len(), 6);
        // Per pipeline: mkfile strictly before ccount.
        for p in 0..3 {
            let stages: Vec<&str> = order
                .iter()
                .filter(|(pipe, _)| *pipe == p)
                .map(|(_, s)| s.as_str())
                .collect();
            assert_eq!(stages, vec!["mkfile", "ccount"], "pipeline {p}");
        }
    }

    #[test]
    fn pipelines_are_independent_on_failure() {
        let mut pattern = EnsembleOfPipelines::new(3, 2, |_, _| sleep_kernel());
        let results = drive(
            &mut pattern,
            |t| {
                if t.tag == 1 {
                    Err("stage 0 exploded".into())
                } else {
                    Ok(json!({}))
                }
            },
            100,
        );
        // Pipeline 1 aborts after stage 0; pipelines 0 and 2 run both stages.
        assert_eq!(results.len(), 5);
        assert_eq!(pattern.failed_pipelines(), 1);
        assert!(pattern.is_done());
    }

    #[test]
    fn kernel_binding_sees_pipeline_and_stage() {
        let mut pattern = EnsembleOfPipelines::new(2, 3, |p, s| {
            KernelCall::new("misc.sleep", json!({"secs": (p * 10 + s) as f64}))
        });
        let mut seen = Vec::new();
        drive(
            &mut pattern,
            |t| {
                seen.push(t.kernel.args["secs"].as_f64().unwrap() as usize);
                Ok(json!({}))
            },
            100,
        );
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn bag_of_tasks_runs_everything_once() {
        let mut pattern = BagOfTasks::new(5, |_| sleep_kernel());
        let results = drive(&mut pattern, |_| Ok(json!({})), 100);
        assert_eq!(results.len(), 5);
        let mut tags: Vec<u64> = results.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn zero_pipelines_rejected() {
        EnsembleOfPipelines::new(0, 1, |_, _| sleep_kernel());
    }

    #[test]
    fn not_done_before_start() {
        let pattern = EnsembleOfPipelines::new(1, 1, |_, _| sleep_kernel());
        assert!(!pattern.is_done());
    }
}
