//! The Simulation-Analysis-Loop pattern (paper §III-D3).
//!
//! A two-stage iterative pattern: an ensemble of N simulations, a global
//! barrier, an ensemble of analyses over all simulation outputs, another
//! barrier, next iteration. Supports the paper's planned *adaptivity*
//! extension (§V): a hook may change the ensemble size between iterations
//! based on analysis output.

use crate::pattern::ExecutionPattern;
use crate::task::{Task, TaskResult};
use entk_kernels::KernelCall;
use serde_json::Value;

/// Stage the loop is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Simulating,
    Analysing,
    Finished,
}

type SimKernelFn = Box<dyn FnMut(usize, usize) -> KernelCall + Send>;
type AnalysisKernelFn = Box<dyn FnMut(usize, &[Value]) -> Vec<KernelCall> + Send>;
type AdaptFn = Box<dyn FnMut(usize, &[Value]) -> usize + Send>;

/// The SAL pattern.
///
/// Task tags encode `(kind, index)`: simulations get tags `0..n_sims`,
/// analyses `ANALYSIS_TAG_BASE + 0..`.
pub struct SimulationAnalysisLoop {
    iterations: usize,
    n_sims: usize,
    sim_kernel: SimKernelFn,
    analysis_kernel: AnalysisKernelFn,
    adapt: Option<AdaptFn>,
    /// Abort the whole loop if any task fails (default true; with false,
    /// failed simulations are simply excluded from analysis input).
    strict: bool,

    iter: usize,
    phase: Phase,
    pending: usize,
    sim_outputs: Vec<Value>,
    analysis_outputs: Vec<Value>,
    started: bool,
    aborted: bool,
}

const ANALYSIS_TAG_BASE: u64 = 1 << 32;

impl SimulationAnalysisLoop {
    /// Creates a SAL with `iterations` loops of `n_sims` simulations.
    ///
    /// * `sim_kernel(iteration, index)` binds each simulation task.
    /// * `analysis_kernel(iteration, sim_outputs)` binds the analysis
    ///   ensemble for that iteration (commonly a single serial task).
    pub fn new(
        iterations: usize,
        n_sims: usize,
        sim_kernel: impl FnMut(usize, usize) -> KernelCall + Send + 'static,
        analysis_kernel: impl FnMut(usize, &[Value]) -> Vec<KernelCall> + Send + 'static,
    ) -> Self {
        assert!(iterations > 0 && n_sims > 0, "empty pattern");
        SimulationAnalysisLoop {
            iterations,
            n_sims,
            sim_kernel: Box::new(sim_kernel),
            analysis_kernel: Box::new(analysis_kernel),
            adapt: None,
            strict: true,
            iter: 0,
            phase: Phase::Simulating,
            pending: 0,
            sim_outputs: Vec::new(),
            analysis_outputs: Vec::new(),
            started: false,
            aborted: false,
        }
    }

    /// Installs an adaptivity hook: after each iteration's analysis it
    /// receives `(iteration, analysis_outputs)` and returns the ensemble
    /// size for the next iteration (clamped to ≥ 1).
    pub fn with_adaptivity(
        mut self,
        adapt: impl FnMut(usize, &[Value]) -> usize + Send + 'static,
    ) -> Self {
        self.adapt = Some(Box::new(adapt));
        self
    }

    /// Tolerate individual simulation failures instead of aborting.
    pub fn tolerate_failures(mut self) -> Self {
        self.strict = false;
        self
    }

    /// Iterations fully completed so far.
    pub fn completed_iterations(&self) -> usize {
        self.iter
    }

    /// Whether the loop aborted on a failure (strict mode).
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    fn emit_simulations(&mut self) -> Vec<Task> {
        self.phase = Phase::Simulating;
        self.pending = self.n_sims;
        self.sim_outputs.clear();
        let iter = self.iter;
        (0..self.n_sims)
            .map(|i| Task::new(i as u64, "simulation", (self.sim_kernel)(iter, i)))
            .collect()
    }

    fn emit_analyses(&mut self) -> Vec<Task> {
        self.phase = Phase::Analysing;
        let kernels = (self.analysis_kernel)(self.iter, &self.sim_outputs);
        assert!(
            !kernels.is_empty(),
            "analysis stage must contain at least one task"
        );
        self.pending = kernels.len();
        self.analysis_outputs.clear();
        kernels
            .into_iter()
            .enumerate()
            .map(|(i, k)| Task::new(ANALYSIS_TAG_BASE + i as u64, "analysis", k))
            .collect()
    }
}

impl ExecutionPattern for SimulationAnalysisLoop {
    fn name(&self) -> &str {
        "simulation-analysis-loop"
    }

    fn on_start(&mut self) -> Vec<Task> {
        assert!(!self.started, "on_start called twice");
        self.started = true;
        self.emit_simulations()
    }

    fn on_task_done(&mut self, result: &TaskResult) -> Vec<Task> {
        if self.phase == Phase::Finished {
            return Vec::new();
        }
        assert!(self.pending > 0, "unexpected completion");
        self.pending -= 1;
        if !result.success {
            if self.strict {
                self.aborted = true;
                self.phase = Phase::Finished;
                return Vec::new();
            }
        } else {
            match self.phase {
                Phase::Simulating => self.sim_outputs.push(result.output.clone()),
                Phase::Analysing => self.analysis_outputs.push(result.output.clone()),
                Phase::Finished => {}
            }
        }
        if self.pending > 0 {
            return Vec::new(); // barrier not yet reached
        }
        match self.phase {
            Phase::Simulating => {
                if self.sim_outputs.is_empty() {
                    // every simulation failed in tolerant mode
                    self.aborted = true;
                    self.phase = Phase::Finished;
                    return Vec::new();
                }
                self.emit_analyses()
            }
            Phase::Analysing => {
                self.iter += 1;
                if let Some(adapt) = &mut self.adapt {
                    self.n_sims = adapt(self.iter - 1, &self.analysis_outputs).max(1);
                }
                if self.iter >= self.iterations {
                    self.phase = Phase::Finished;
                    Vec::new()
                } else {
                    self.emit_simulations()
                }
            }
            Phase::Finished => Vec::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.started && self.phase == Phase::Finished
    }

    fn progress(&self) -> String {
        format!(
            "iteration {}/{}, phase {:?}, {} pending",
            self.iter + usize::from(self.phase != Phase::Finished),
            self.iterations,
            self.phase,
            self.pending
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::testutil::drive;
    use serde_json::json;

    fn sim_k(iter: usize, idx: usize) -> KernelCall {
        KernelCall::new("md.amber", json!({"iter": iter, "idx": idx}))
    }

    fn serial_analysis(n_sims_seen: &[Value]) -> Vec<KernelCall> {
        vec![KernelCall::new(
            "ana.coco",
            json!({"n_sims": n_sims_seen.len()}),
        )]
    }

    #[test]
    fn barrier_orders_simulations_before_analysis() {
        let mut pattern = SimulationAnalysisLoop::new(2, 3, sim_k, |_, outs| serial_analysis(outs));
        let mut log: Vec<String> = Vec::new();
        let results = drive(
            &mut pattern,
            |t| {
                log.push(t.stage.clone());
                Ok(json!({"ok": true}))
            },
            100,
        );
        // Per iteration: 3 sims then 1 analysis.
        assert_eq!(results.len(), 8);
        assert_eq!(
            log,
            vec![
                "simulation",
                "simulation",
                "simulation",
                "analysis",
                "simulation",
                "simulation",
                "simulation",
                "analysis"
            ]
        );
        assert_eq!(pattern.completed_iterations(), 2);
    }

    #[test]
    fn analysis_sees_all_sim_outputs() {
        let mut observed = Vec::new();
        let mut pattern = SimulationAnalysisLoop::new(1, 4, sim_k, move |_, outs| {
            vec![KernelCall::new("ana.coco", json!({"n_sims": outs.len()}))]
        });
        drive(
            &mut pattern,
            |t| {
                if t.stage == "analysis" {
                    observed.push(t.kernel.args["n_sims"].as_u64().unwrap());
                }
                Ok(json!({}))
            },
            100,
        );
        assert_eq!(observed, vec![4]);
    }

    #[test]
    fn strict_mode_aborts_on_failure() {
        let mut pattern = SimulationAnalysisLoop::new(3, 2, sim_k, |_, o| serial_analysis(o));
        let results = drive(
            &mut pattern,
            |t| {
                if t.tag == 1 {
                    Err("sim died".into())
                } else {
                    Ok(json!({}))
                }
            },
            100,
        );
        assert!(pattern.aborted());
        assert!(results.len() <= 2);
    }

    #[test]
    fn tolerant_mode_analyses_survivors() {
        let mut analysed = 0u64;
        let mut pattern = SimulationAnalysisLoop::new(1, 3, sim_k, move |_, outs| {
            vec![KernelCall::new("ana.coco", json!({"n_sims": outs.len()}))]
        })
        .tolerate_failures();
        drive(
            &mut pattern,
            |t| {
                if t.stage == "analysis" {
                    analysed = t.kernel.args["n_sims"].as_u64().unwrap();
                }
                if t.tag == 0 && t.stage == "simulation" {
                    Err("one sim died".into())
                } else {
                    Ok(json!({}))
                }
            },
            100,
        );
        assert!(!pattern.aborted());
        assert_eq!(analysed, 2, "analysis over the two survivors");
    }

    #[test]
    fn adaptivity_changes_ensemble_size() {
        // Double the ensemble after each iteration (paper §V: "vary the
        // number of tasks between stages").
        let mut pattern = SimulationAnalysisLoop::new(3, 2, sim_k, |_, o| serial_analysis(o))
            .with_adaptivity(|_, _| 4);
        let mut sims_per_iter = vec![0usize; 3];
        let mut iter_of_task = 0usize;
        drive(
            &mut pattern,
            |t| {
                if t.stage == "simulation" {
                    iter_of_task = t.kernel.args["iter"].as_u64().unwrap() as usize;
                    sims_per_iter[iter_of_task] += 1;
                }
                Ok(json!({}))
            },
            200,
        );
        assert_eq!(sims_per_iter, vec![2, 4, 4]);
    }

    #[test]
    fn all_sims_failing_in_tolerant_mode_ends_pattern() {
        let mut pattern =
            SimulationAnalysisLoop::new(2, 2, sim_k, |_, o| serial_analysis(o)).tolerate_failures();
        drive(&mut pattern, |_| Err("everything died".into()), 100);
        assert!(pattern.aborted());
        assert!(pattern.is_done());
    }
}
