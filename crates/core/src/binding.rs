//! Binding policies: the execution plugin's step from "simple translation
//! layer" to "intelligent middleware component" (paper §V).
//!
//! A binding policy may adjust a task's core count at submission time using
//! resource-state information (free cores, backlog) — the paper's execution
//! strategies of Ref.\[23\]: adapt the workload to optimally use a
//! pre-specified set of resources.

/// Decides the core count a task is bound with.
pub trait BindingPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Returns the core count to bind `stage`'s task with, given the
    /// pattern-requested count, currently free pilot cores, and the number
    /// of tasks being bound in the same batch. Must return ≥ 1; the driver
    /// clamps to the largest pilot.
    fn bind(
        &mut self,
        stage: &str,
        requested: usize,
        free_cores: usize,
        batch_size: usize,
    ) -> usize;
}

/// The paper's prototype behaviour: bind exactly what the pattern asked
/// for ("currently supports static binding and translation", §III-B).
#[derive(Debug, Default)]
pub struct StaticBinding;

impl BindingPolicy for StaticBinding {
    fn name(&self) -> &'static str {
        "static"
    }
    fn bind(&mut self, _stage: &str, requested: usize, _free: usize, _batch: usize) -> usize {
        requested.max(1)
    }
}

/// Adaptive MPI widening: when the batch is smaller than the free
/// capacity, divide idle cores evenly among the batch's tasks (capped at
/// `max_cores_per_task`), so MPI-capable kernels exploit otherwise-idle
/// cores. Never shrinks below the requested count.
#[derive(Debug)]
pub struct AdaptiveMpiBinding {
    /// Upper bound on the widened core count.
    pub max_cores_per_task: usize,
}

impl BindingPolicy for AdaptiveMpiBinding {
    fn name(&self) -> &'static str {
        "adaptive-mpi"
    }
    fn bind(&mut self, _stage: &str, requested: usize, free: usize, batch: usize) -> usize {
        let fair_share = free / batch.max(1);
        fair_share
            .max(requested)
            .min(self.max_cores_per_task.max(1))
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_binding_is_identity() {
        let mut b = StaticBinding;
        assert_eq!(b.bind("simulation", 4, 100, 2), 4);
        assert_eq!(b.bind("simulation", 0, 100, 2), 1, "clamped to 1");
    }

    #[test]
    fn adaptive_widens_to_fair_share() {
        let mut b = AdaptiveMpiBinding {
            max_cores_per_task: 64,
        };
        // 4 tasks, 64 free: each gets 16.
        assert_eq!(b.bind("simulation", 1, 64, 4), 16);
        // Cap applies.
        let mut capped = AdaptiveMpiBinding {
            max_cores_per_task: 8,
        };
        assert_eq!(capped.bind("simulation", 1, 64, 4), 8);
    }

    #[test]
    fn adaptive_never_shrinks_requests() {
        let mut b = AdaptiveMpiBinding {
            max_cores_per_task: 64,
        };
        // 32 tasks on 16 free cores: fair share is 0, but the request wins.
        assert_eq!(b.bind("simulation", 4, 16, 32), 4);
    }

    #[test]
    fn adaptive_handles_empty_batch_and_zero_free() {
        let mut b = AdaptiveMpiBinding {
            max_cores_per_task: 8,
        };
        assert_eq!(b.bind("x", 1, 0, 0), 1);
    }
}
