//! The execution plugin for real local runs.
//!
//! Binds pattern tasks to the kernels' *real* `execute` implementations and
//! runs them on the local pilot-like runtime (host threads under a
//! core-slot discipline). Used by the validation experiments and examples:
//! same patterns, same kernels API, actual computation.

use crate::error::EntkError;
use crate::fault::FaultConfig;
use crate::pattern::ExecutionPattern;
use crate::report::{ExecutionReport, OverheadBreakdown, TaskRecord};
use crate::task::{Task, TaskResult};
use entk_kernels::KernelRegistry;
use entk_pilot::{LocalRuntime, UnitDescription, UnitId, UnitState, UnitWork};
use entk_sim::{SimDuration, SimTime};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Output slot a kernel closure fills: (result, start offset s, end offset s).
type Slot = Arc<Mutex<Option<(Result<Value, String>, f64, f64)>>>;

struct LocalEntry {
    task: Task,
    record: TaskRecord,
    slot: Slot,
    terminal: bool,
}

/// The local-backend driver behind a `ResourceHandle`.
pub(crate) struct LocalDriver {
    runtime: LocalRuntime,
    registry: KernelRegistry,
    fault: FaultConfig,
    tasks: HashMap<u64, LocalEntry>,
    unit_to_task: HashMap<UnitId, u64>,
    next_uid: u64,
    live_tasks: usize,
    failed_tasks: usize,
    total_retries: u32,
    t0: Instant,
    allocated: bool,
}

impl LocalDriver {
    pub(crate) fn new(cores: usize, registry: KernelRegistry, fault: FaultConfig) -> Self {
        LocalDriver {
            runtime: LocalRuntime::new(cores),
            registry,
            fault,
            tasks: HashMap::new(),
            unit_to_task: HashMap::new(),
            next_uid: 0,
            live_tasks: 0,
            failed_tasks: 0,
            total_retries: 0,
            t0: Instant::now(),
            allocated: false,
        }
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.t0.elapsed().as_secs_f64())
    }

    pub(crate) fn allocate(&mut self) -> Result<(), EntkError> {
        if self.allocated {
            return Err(EntkError::Usage("allocate() called twice".into()));
        }
        self.allocated = true;
        self.t0 = Instant::now();
        Ok(())
    }

    pub(crate) fn run(
        &mut self,
        pattern: &mut dyn ExecutionPattern,
    ) -> Result<ExecutionReport, EntkError> {
        if !self.allocated {
            return Err(EntkError::Usage("run() requires allocate() first".into()));
        }
        let initial = pattern.on_start();
        self.submit(initial, pattern)?;
        while !(pattern.is_done() && self.live_tasks == 0) {
            if self.live_tasks == 0 {
                return Err(EntkError::Runtime(format!(
                    "no work in flight but pattern not done: {}",
                    pattern.progress()
                )));
            }
            let completion = self.runtime.wait_any();
            let uid = *self
                .unit_to_task
                .get(&completion.unit)
                .expect("completion for a submitted unit");
            self.unit_to_task.remove(&completion.unit);
            let now = self.now();
            let entry = self.tasks.get_mut(&uid).expect("entry exists");
            let slot_value = entry.slot.lock().take();
            let (result, start_off, end_off) = match slot_value {
                Some(v) => v,
                None => (
                    Err("kernel produced no output".to_string()),
                    0.0,
                    completion.wall_secs,
                ),
            };
            entry.record.exec_start = Some(SimTime::ZERO + SimDuration::from_secs_f64(start_off));
            entry.record.exec_stop = Some(SimTime::ZERO + SimDuration::from_secs_f64(end_off));
            let outcome = match (completion.state, result) {
                (UnitState::Done, Ok(output)) => Ok(output),
                (_, Err(e)) => Err(e),
                (state, Ok(_)) => Err(format!("unit ended in {state:?}")),
            };
            match outcome {
                Ok(output) => {
                    entry.terminal = true;
                    entry.record.success = true;
                    entry.record.finished = Some(now);
                    self.live_tasks -= 1;
                    let result = TaskResult::ok(entry.task.tag, entry.task.stage.clone(), output);
                    let follow = pattern.on_task_done(&result);
                    self.submit(follow, pattern)?;
                }
                Err(reason) => {
                    if entry.record.retries < self.fault.max_retries {
                        entry.record.retries += 1;
                        self.total_retries += 1;
                        let task = entry.task.clone();
                        self.resubmit(uid, task)?;
                    } else {
                        entry.terminal = true;
                        entry.record.success = false;
                        entry.record.finished = Some(now);
                        self.live_tasks -= 1;
                        self.failed_tasks += 1;
                        let result =
                            TaskResult::failed(entry.task.tag, entry.task.stage.clone(), reason);
                        let follow = pattern.on_task_done(&result);
                        self.submit(follow, pattern)?;
                    }
                }
            }
        }
        Ok(self.build_report(pattern.name()))
    }

    pub(crate) fn deallocate(&mut self) -> Result<ExecutionReport, EntkError> {
        if !self.allocated {
            return Err(EntkError::Usage("deallocate() requires allocate()".into()));
        }
        self.allocated = false;
        Ok(self.build_report("session"))
    }

    fn submit(
        &mut self,
        tasks: Vec<Task>,
        pattern: &mut dyn ExecutionPattern,
    ) -> Result<(), EntkError> {
        for task in tasks {
            let uid = self.next_uid;
            self.next_uid += 1;
            self.live_tasks += 1;
            let record = TaskRecord {
                uid,
                tag: task.tag,
                stage: task.stage.clone(),
                created: self.now(),
                exec_start: None,
                exec_stop: None,
                finished: None,
                success: false,
                retries: 0,
                lost_to_failures: SimDuration::ZERO,
            };
            let task_clone = task.clone();
            self.tasks.insert(
                uid,
                LocalEntry {
                    task,
                    record,
                    slot: Arc::new(Mutex::new(None)),
                    terminal: false,
                },
            );
            if let Err(e) = self.dispatch(uid, task_clone) {
                // Kernel-binding failure: terminal immediately.
                let now = self.now();
                let entry = self.tasks.get_mut(&uid).expect("entry exists");
                entry.terminal = true;
                entry.record.success = false;
                entry.record.finished = Some(now);
                self.live_tasks -= 1;
                self.failed_tasks += 1;
                let result =
                    TaskResult::failed(entry.task.tag, entry.task.stage.clone(), e.to_string());
                let follow = pattern.on_task_done(&result);
                self.submit(follow, pattern)?;
            }
        }
        Ok(())
    }

    fn resubmit(&mut self, uid: u64, task: Task) -> Result<(), EntkError> {
        self.dispatch(uid, task)
    }

    fn dispatch(&mut self, uid: u64, task: Task) -> Result<(), EntkError> {
        let plugin = self
            .registry
            .get(&task.kernel.plugin)
            .map_err(|e| EntkError::Kernel(e.to_string()))?;
        plugin
            .validate(&task.kernel.args)
            .map_err(|e| EntkError::Kernel(e.to_string()))?;
        let slot = Arc::clone(&self.tasks[&uid].slot);
        let args = task.kernel.args.clone();
        let t0 = self.t0;
        let work: Arc<dyn Fn() -> Result<(), String> + Send + Sync> = Arc::new(move || {
            let start = t0.elapsed().as_secs_f64();
            let result = plugin.execute(&args).map_err(|e| e.to_string());
            let end = t0.elapsed().as_secs_f64();
            let ok = result.is_ok();
            *slot.lock() = Some((result, start, end));
            if ok {
                Ok(())
            } else {
                Err("kernel failed".into())
            }
        });
        let ud = UnitDescription {
            name: format!("{}:{}", task.stage, uid),
            cores: task.kernel.cores,
            mpi: task.kernel.mpi || task.kernel.cores > 1,
            work: UnitWork::Real(work),
            input_staging: Vec::new(),
            output_staging: Vec::new(),
        };
        let units = self
            .runtime
            .submit_units(vec![ud])
            .map_err(EntkError::Runtime)?;
        self.unit_to_task.insert(units[0], uid);
        Ok(())
    }

    fn build_report(&self, pattern_name: &str) -> ExecutionReport {
        let mut tasks: Vec<TaskRecord> = self.tasks.values().map(|e| e.record.clone()).collect();
        tasks.sort_by_key(|t| t.uid);
        ExecutionReport {
            pattern: pattern_name.to_string(),
            resource: "fork://localhost".into(),
            cores: self.runtime.cores(),
            ttc: self.now().saturating_since(SimTime::ZERO),
            overheads: OverheadBreakdown::default(),
            tasks,
            failed_tasks: self.failed_tasks,
            total_retries: self.total_retries,
            partial: self.failed_tasks > 0,
            events: 0,
        }
    }
}
