//! The local (real execution) backend: kernels run as real closures on host
//! threads via [`LocalRuntime`], under the wall clock.
//!
//! Mirrors EnTK's `fork://localhost` resource: no pilots to wait for, no
//! modeled overheads, no virtual time. The session engine detects
//! `virtual_time() == false` and skips overhead sampling and retry backoff
//! delays; retries resubmit immediately, exactly like the pre-refactor
//! local driver.

use crate::backend::{BackendEvent, BackendStats, ExecutionBackend, Poll, UnitOutcome, UnitSpec};
use entk_kernels::{KernelCall, KernelRegistry};
use entk_pilot::{LocalCompletion, LocalRuntime, UnitDescription, UnitState, UnitWork};
use entk_sim::{DenseStore, SimDuration, SimRng, SimTime};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Kernel output parked by the execution closure until completion is
/// observed: `(result, start offset secs, end offset secs)`.
type Slot = Arc<Mutex<Option<(Result<Value, String>, f64, f64)>>>;

/// The wall-clock [`ExecutionBackend`] running real kernel code.
pub(crate) struct LocalBackend {
    runtime: LocalRuntime,
    registry: KernelRegistry,
    /// Session epoch: wall-clock zero for `now()` and exec offsets.
    t0: Instant,
    /// Output slots of in-flight units, by unit key.
    slots: DenseStore<Slot>,
    /// Completions observed by `poll`, waiting for `complete_unit`.
    completions: DenseStore<LocalCompletion>,
    /// Session-scheduled events (batches, deferred failures) delivered at
    /// the next poll — real time has no delays to model.
    pending: VecDeque<BackendEvent>,
    /// Units staged between prepare and commit.
    prepared: Vec<(u64, UnitDescription, Slot)>,
}

impl LocalBackend {
    /// A backend executing on `cores` host cores.
    pub(crate) fn new(cores: usize, registry: KernelRegistry) -> Self {
        LocalBackend {
            runtime: LocalRuntime::new(cores),
            registry,
            t0: Instant::now(),
            slots: DenseStore::new(),
            completions: DenseStore::new(),
            pending: VecDeque::new(),
            prepared: Vec::new(),
        }
    }
}

impl ExecutionBackend for LocalBackend {
    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.t0.elapsed().as_secs_f64())
    }

    fn virtual_time(&self) -> bool {
        false
    }

    fn begin_session(&mut self, _boot_delay: SimDuration) {
        self.t0 = Instant::now();
    }

    fn allocation_ready(&self) -> bool {
        true
    }

    fn capacity_lost(&self) -> bool {
        false
    }

    fn pilots_terminal(&self) -> bool {
        true
    }

    fn poll(&mut self) -> Poll {
        if let Some(ev) = self.pending.pop_front() {
            return Poll::Events(vec![ev]);
        }
        if self.runtime.live_units() == 0 {
            return Poll::Drained;
        }
        // Block until a worker thread finishes a unit. Failures also arrive
        // here as completions; `complete_unit` resolves the slot into a
        // success or a retryable failure.
        let completion = self.runtime.wait_any();
        let key = completion.unit.0;
        let time = self.now();
        self.completions.insert(key, completion);
        Poll::Events(vec![BackendEvent::UnitDone { key, time }])
    }

    fn prepare_batch(&mut self, specs: &[UnitSpec], _rng: &mut SimRng) -> Vec<Option<String>> {
        self.prepared.clear();
        let mut verdicts = Vec::with_capacity(specs.len());
        for spec in specs {
            let call: &KernelCall = &spec.kernel;
            let plugin = match self.registry.get(&call.plugin) {
                Ok(p) => p,
                Err(e) => {
                    verdicts.push(Some(e.to_string()));
                    continue;
                }
            };
            if let Err(e) = plugin.validate(&call.args) {
                verdicts.push(Some(e.to_string()));
                continue;
            }
            let name = format!("{}:{}", spec.stage, spec.uid);
            // Pre-empt the runtime's own all-or-nothing batch validation so
            // one oversized unit cannot reject its whole batch.
            if call.cores > self.runtime.cores() {
                verdicts.push(Some(format!(
                    "unit {:?} needs {} cores; local runtime has {}",
                    name,
                    call.cores,
                    self.runtime.cores()
                )));
                continue;
            }
            let slot: Slot = Arc::new(Mutex::new(None));
            let work_slot = Arc::clone(&slot);
            let args = call.args.clone();
            let epoch = self.t0;
            let work: Arc<dyn Fn() -> Result<(), String> + Send + Sync> = Arc::new(move || {
                let start = epoch.elapsed().as_secs_f64();
                let result = plugin.execute(&args).map_err(|e| e.to_string());
                let end = epoch.elapsed().as_secs_f64();
                let ok = result.is_ok();
                *work_slot.lock() = Some((result, start, end));
                if ok {
                    Ok(())
                } else {
                    Err("kernel failed".to_string())
                }
            });
            let ud = UnitDescription {
                name,
                cores: call.cores,
                mpi: call.mpi || call.cores > 1,
                work: UnitWork::Real(work),
                input_staging: Vec::new(),
                output_staging: Vec::new(),
            };
            if let Err(e) = ud.validate() {
                verdicts.push(Some(e));
                continue;
            }
            self.prepared.push((spec.uid, ud, slot));
            verdicts.push(None);
        }
        verdicts
    }

    fn commit_batch(&mut self) -> Vec<(u64, u64)> {
        let prepared = std::mem::take(&mut self.prepared);
        if prepared.is_empty() {
            return Vec::new();
        }
        let mut descriptions = Vec::with_capacity(prepared.len());
        let mut staged = Vec::with_capacity(prepared.len());
        for (uid, ud, slot) in prepared {
            descriptions.push(ud);
            staged.push((uid, slot));
        }
        // Prepare already enforced every condition the runtime's batch
        // validation checks, so this cannot fail.
        match self.runtime.submit_units(descriptions) {
            Ok(ids) => ids
                .into_iter()
                .zip(staged)
                .map(|(id, (uid, slot))| {
                    self.slots.insert(id.0, slot);
                    (uid, id.0)
                })
                .collect(),
            Err(e) => {
                debug_assert!(false, "descriptions validated in prepare: {e}");
                Vec::new()
            }
        }
    }

    fn arm_timeout(&mut self, _uid: u64, _timeout: SimDuration) {
        // Host threads cannot be interrupted; kill-replace is unavailable.
    }

    fn cancel_running_unit(&mut self, _key: u64) -> bool {
        false
    }

    fn complete_unit(&mut self, key: u64, _kernel: &KernelCall, _rng: &mut SimRng) -> UnitOutcome {
        let completion = self.completions.remove(key);
        let slot = self.slots.remove(key);
        let wall_secs = completion.as_ref().map(|c| c.wall_secs).unwrap_or(0.0);
        let state = completion.map(|c| c.state).unwrap_or(UnitState::Failed);
        let (result, start_off, end_off) = slot
            .and_then(|s| s.lock().take())
            .unwrap_or_else(|| (Err("kernel produced no output".to_string()), 0.0, wall_secs));
        let exec_start = Some(SimTime::ZERO + SimDuration::from_secs_f64(start_off));
        let exec_stop = Some(SimTime::ZERO + SimDuration::from_secs_f64(end_off));
        let result = match (state, result) {
            (UnitState::Done, Ok(output)) => Ok(output),
            (_, Err(e)) => Err(e),
            (state, Ok(_)) => Err(format!("unit ended in {state:?}")),
        };
        UnitOutcome {
            exec_start,
            exec_stop,
            result,
        }
    }

    fn schedule_batch(&mut self, _delay: SimDuration, batch: u64, uids: Vec<u64>) {
        self.pending
            .push_back(BackendEvent::BatchReady { batch, uids });
    }

    fn schedule_deferred_failure(&mut self, uid: u64) {
        self.pending
            .push_back(BackendEvent::DeferredFailure { uid });
    }

    fn begin_shutdown(&mut self) {}

    fn schedule_clock_mark(&mut self, _delay: SimDuration) {
        self.pending.push_back(BackendEvent::ClockMark);
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            resource: "fork://localhost".to_string(),
            cores: self.runtime.cores(),
            runtime_pilot: SimDuration::ZERO,
            resource_wait: SimDuration::ZERO,
            events: 0,
        }
    }
}
