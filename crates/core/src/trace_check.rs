//! Cross-validation of the overhead accounting against the event trace.
//!
//! The driver accounts `OverheadBreakdown` analytically as it runs (summing
//! sampled delays). The trace records *when things happened*. This module
//! re-derives the same breakdown purely from trace timestamps and compares
//! the two — any drift means either the accounting or the instrumentation
//! is wrong, so bench binaries assert the match on every figure run.

use crate::report::{ExecutionReport, OverheadBreakdown};
use entk_sim::{SimDuration, SimTime, Subject, Tracer};
use std::collections::HashMap;

/// Re-derives the paper's overhead decomposition from trace timestamps.
///
/// - **core** = (`resource_ready` − `session_start`) + (`teardown_done` −
///   `teardown_start`): the init/resource-request and teardown windows.
/// - **pattern** = Σ over spawn batches of (`tasks_submitted` −
///   `tasks_created`); batches with no submission event (discarded during
///   graceful degradation) are excluded, matching the accounting.
/// - **runtime_pilot** = first pilot's `pilot_launched` − `pilot_submitted`.
/// - **resource_wait** = first pilot's `pilot_active` − `pilot_launched`.
/// - **failure_lost** = per-task walk: each `task_attempt_failed` charges
///   the wall time since that task's last `task_submitted`; each
///   `task_retry` (stamped at backoff completion) charges the backoff since
///   the preceding `task_attempt_failed`.
pub fn breakdown_from_trace(tracer: &Tracer) -> OverheadBreakdown {
    let t = |name: &str| tracer.time_of("entk", name, Subject::Session);
    let span = |start: Option<SimTime>, end: Option<SimTime>| {
        end.zip(start)
            .map(|(e, s)| e.saturating_since(s))
            .unwrap_or(SimDuration::ZERO)
    };
    let core = span(t("session_start"), t("resource_ready"))
        + span(t("teardown_start"), t("teardown_done"));

    let mut created: HashMap<u64, SimTime> = HashMap::new();
    let mut pattern = SimDuration::ZERO;
    let mut first_pilot: Option<u64> = None;
    let mut last_sub: HashMap<u64, SimTime> = HashMap::new();
    let mut last_fail: HashMap<u64, SimTime> = HashMap::new();
    let mut failure_lost = SimDuration::ZERO;
    for r in tracer.records() {
        match (r.layer, r.name, r.subject) {
            ("entk", "tasks_created", Subject::Batch(b)) => {
                created.insert(b, r.time);
            }
            ("entk", "tasks_submitted", Subject::Batch(b)) => {
                if let Some(c) = created.remove(&b) {
                    pattern += r.time.saturating_since(c);
                }
            }
            ("entk", "task_submitted", Subject::Task(uid)) => {
                last_sub.insert(uid, r.time);
            }
            // Records are walked in append order: a retry's backoff stamp is
            // appended right after its attempt failure, so `last_fail` is
            // always the matching failure even though the stamp lies in the
            // future.
            ("entk", "task_attempt_failed", Subject::Task(uid)) => {
                let s = last_sub.remove(&uid).unwrap_or(r.time);
                failure_lost += r.time.saturating_since(s);
                last_fail.insert(uid, r.time);
            }
            ("entk", "task_retry", Subject::Task(uid)) => {
                let f = last_fail.remove(&uid).unwrap_or(r.time);
                failure_lost += r.time.saturating_since(f);
            }
            ("pilot", "pilot_submitted", Subject::Pilot(p)) => {
                first_pilot.get_or_insert(p);
            }
            _ => {}
        }
    }

    let (runtime_pilot, resource_wait) = first_pilot
        .map(|p| {
            let pt = |name: &str| tracer.time_of("pilot", name, Subject::Pilot(p));
            (
                span(pt("pilot_submitted"), pt("pilot_launched")),
                span(pt("pilot_launched"), pt("pilot_active")),
            )
        })
        .unwrap_or((SimDuration::ZERO, SimDuration::ZERO));

    OverheadBreakdown {
        core,
        pattern,
        runtime_pilot,
        resource_wait,
        failure_lost,
    }
}

/// Result of comparing the trace-derived breakdown with the accounted one.
#[derive(Debug, Clone, Copy)]
pub struct CrossCheck {
    /// Breakdown recomputed from trace timestamps.
    pub derived: OverheadBreakdown,
    /// Breakdown accounted analytically by the driver.
    pub accounted: OverheadBreakdown,
    /// Largest per-field absolute difference, in seconds.
    pub max_abs_error_secs: f64,
}

impl CrossCheck {
    /// True when every compared field agrees within `tol_secs`.
    pub fn within(&self, tol_secs: f64) -> bool {
        self.max_abs_error_secs <= tol_secs
    }

    /// Panics with a field-by-field diff unless the breakdowns agree to
    /// microsecond precision (1e-6 s, the virtual-clock resolution).
    pub fn assert_ok(&self) {
        assert!(
            self.within(1e-6),
            "trace-derived overheads diverge from accounted (max err {:.6e}s)\n  \
             derived:   {:?}\n  accounted: {:?}",
            self.max_abs_error_secs,
            self.derived,
            self.accounted,
        );
    }
}

/// Recomputes the overhead breakdown from `tracer` and compares it with the
/// breakdown accounted in `report`.
///
/// On partial runs (graceful degradation) the `pattern` field is excluded:
/// teardown may truncate submission events whose overhead the accounting
/// already booked. Every other field must always agree.
pub fn cross_check(report: &ExecutionReport, tracer: &Tracer) -> CrossCheck {
    let derived = breakdown_from_trace(tracer);
    let accounted = report.overheads;
    let diff = |d: SimDuration, a: SimDuration| (d.as_secs_f64() - a.as_secs_f64()).abs();
    let mut errs = vec![
        diff(derived.core, accounted.core),
        diff(derived.runtime_pilot, accounted.runtime_pilot),
        diff(derived.resource_wait, accounted.resource_wait),
        diff(derived.failure_lost, accounted.failure_lost),
    ];
    if !report.partial {
        errs.push(diff(derived.pattern, accounted.pattern));
    }
    let max_abs_error_secs = errs.iter().copied().fold(0.0, f64::max);
    CrossCheck {
        derived,
        accounted,
        max_abs_error_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_sim::Tracer;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn derives_core_and_pattern_from_synthetic_trace() {
        let mut tr = Tracer::new();
        tr.record(t(0.0), "entk", "session_start", Subject::Session);
        tr.record(t(2.5), "entk", "resource_ready", Subject::Session);
        tr.record(t(2.5), "entk", "tasks_created", Subject::Batch(0));
        tr.record(t(3.0), "entk", "tasks_submitted", Subject::Batch(0));
        // A degraded batch: created but never submitted — excluded.
        tr.record(t(4.0), "entk", "tasks_created", Subject::Batch(1));
        tr.record(t(90.0), "entk", "teardown_start", Subject::Session);
        tr.record(t(91.0), "entk", "teardown_done", Subject::Session);
        let d = breakdown_from_trace(&tr);
        assert!((d.core.as_secs_f64() - 3.5).abs() < 1e-9);
        assert!((d.pattern.as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(d.failure_lost, SimDuration::ZERO);
    }

    #[test]
    fn derives_pilot_overheads_from_first_pilot() {
        let mut tr = Tracer::new();
        tr.record(t(1.0), "pilot", "pilot_submitted", Subject::Pilot(7));
        tr.record(t(1.4), "pilot", "pilot_launched", Subject::Pilot(7));
        tr.record(t(11.4), "pilot", "pilot_active", Subject::Pilot(7));
        // A second pilot must not override the first.
        tr.record(t(2.0), "pilot", "pilot_submitted", Subject::Pilot(8));
        tr.record(t(3.0), "pilot", "pilot_launched", Subject::Pilot(8));
        let d = breakdown_from_trace(&tr);
        assert!((d.runtime_pilot.as_secs_f64() - 0.4).abs() < 1e-9);
        assert!((d.resource_wait.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn failure_lost_walk_charges_attempts_and_backoff() {
        let mut tr = Tracer::new();
        // Attempt 1: submitted at 10, fails at 25 (15s lost), retry with a
        // 5s backoff stamped at 30, resubmitted at 30, succeeds.
        tr.record(t(10.0), "entk", "task_submitted", Subject::Task(3));
        tr.record(t(25.0), "entk", "task_attempt_failed", Subject::Task(3));
        tr.record(t(30.0), "entk", "task_retry", Subject::Task(3));
        tr.record(t(30.0), "entk", "task_submitted", Subject::Task(3));
        tr.record(t(40.0), "entk", "task_done", Subject::Task(3));
        let d = breakdown_from_trace(&tr);
        assert!((d.failure_lost.as_secs_f64() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cross_check_flags_divergence() {
        let mut tr = Tracer::new();
        tr.record(t(0.0), "entk", "session_start", Subject::Session);
        tr.record(t(2.0), "entk", "resource_ready", Subject::Session);
        let mut report = crate::report::ExecutionReport {
            pattern: "x".into(),
            resource: "local".into(),
            cores: 1,
            ttc: SimDuration::from_secs(10),
            overheads: OverheadBreakdown {
                core: SimDuration::from_secs(2),
                ..Default::default()
            },
            tasks: vec![],
            failed_tasks: 0,
            total_retries: 0,
            partial: false,
            events: 0,
        };
        assert!(cross_check(&report, &tr).within(1e-6));
        report.overheads.core = SimDuration::from_secs(3);
        let cc = cross_check(&report, &tr);
        assert!(!cc.within(1e-6));
        assert!((cc.max_abs_error_secs - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod end_to_end_tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::pattern::BagOfTasks;
    use crate::resource::{run_simulated_traced, ResourceConfig, SimulatedConfig};
    use entk_kernels::KernelCall;
    use serde_json::json;

    fn pattern(n: usize) -> BagOfTasks {
        BagOfTasks::new(n, |_| KernelCall::new("misc.sleep", json!({"secs": 5.0})))
    }

    #[test]
    fn clean_run_cross_checks_exactly() {
        let config = ResourceConfig::new("xsede.comet", 16, SimDuration::from_secs(3600));
        let (report, telemetry) =
            run_simulated_traced(config, SimulatedConfig::default(), &mut pattern(24)).unwrap();
        assert!(!report.partial);
        let cc = cross_check(&report, &telemetry.tracer);
        cc.assert_ok();
        // The derivation actually saw the events (non-trivial match).
        assert!(cc.derived.core > SimDuration::ZERO);
        assert!(cc.derived.pattern > SimDuration::ZERO);
    }

    #[test]
    fn faulty_run_cross_checks_failure_lost() {
        let config = ResourceConfig::new("xsede.comet", 16, SimDuration::from_secs(3600));
        let sim = SimulatedConfig {
            unit_failure_rate: 0.3,
            fault: FaultConfig {
                max_retries: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let (report, telemetry) = run_simulated_traced(config, sim, &mut pattern(24)).unwrap();
        assert!(report.total_retries > 0, "seed should produce retries");
        let cc = cross_check(&report, &telemetry.tracer);
        cc.assert_ok();
        assert!(cc.derived.failure_lost > SimDuration::ZERO);
        // Retry counters flow into the metrics side of the pipeline.
        assert_eq!(
            telemetry.metrics.counter("entk.retries"),
            u64::from(report.total_retries)
        );
    }
}
