//! The Resource Handle (paper §III-B component 3): allocate resources, run
//! execution patterns on them, deallocate.

use crate::error::EntkError;
use crate::fault::FaultConfig;
use crate::overheads::EntkOverheads;
use crate::pattern::ExecutionPattern;
use crate::plugin_local::LocalDriver;
use crate::plugin_sim::SimDriver;
use crate::report::ExecutionReport;
use entk_cluster::PlatformSpec;
use entk_kernels::KernelRegistry;
use entk_pilot::{BatchPolicy, RuntimeOverheads, SimRuntimeConfig, UnitScheduler};
use entk_sim::{SharedTelemetry, SimDuration, Telemetry};
use serde::{Deserialize, Serialize};

/// What resources the application asks for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Resource label: `"xsede.comet"`, `"xsede.stampede"`, `"lsu.supermic"`
    /// or `"local"`.
    pub resource: String,
    /// Cores to acquire (the pilot size).
    pub cores: usize,
    /// Allocation wall time.
    pub walltime: SimDuration,
}

impl ResourceConfig {
    /// Creates a config.
    pub fn new(resource: impl Into<String>, cores: usize, walltime: SimDuration) -> Self {
        ResourceConfig {
            resource: resource.into(),
            cores,
            walltime,
        }
    }
}

/// How the requested cores are acquired: one big pilot (the paper's
/// configuration) or several smaller ones (the "execution strategy"
/// extension of paper §V / Ref.\[23\] — smaller pilots clear shared batch
/// queues faster when queue wait grows with allocation size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PilotStrategy {
    /// Number of pilots the cores are split across.
    pub count: usize,
    /// Wait for all pilots to activate before `allocate()` returns
    /// (`true`), or for just the first (`false`, late binding).
    pub wait_all: bool,
}

impl PilotStrategy {
    /// The paper's configuration: one pilot holding all cores.
    pub fn single() -> Self {
        PilotStrategy {
            count: 1,
            wait_all: true,
        }
    }

    /// `count` equal pilots; `allocate()` returns at the first active one.
    pub fn split(count: usize) -> Self {
        PilotStrategy {
            count,
            wait_all: false,
        }
    }
}

impl Default for PilotStrategy {
    fn default() -> Self {
        Self::single()
    }
}

/// Tuning of the simulated backend.
#[derive(Debug, Clone)]
pub struct SimulatedConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Platform override; `None` resolves `ResourceConfig::resource` by name.
    pub platform: Option<PlatformSpec>,
    /// EnTK-side overhead model.
    pub entk_overheads: EntkOverheads,
    /// Runtime-side overhead model.
    pub runtime_overheads: RuntimeOverheads,
    /// Probability a unit execution fails (failure injection).
    pub unit_failure_rate: f64,
    /// Retry / kill-replace policy.
    pub fault: FaultConfig,
    /// Pilot acquisition strategy.
    pub pilot_strategy: PilotStrategy,
    /// Synthetic competing workload on the target machine (queue
    /// contention); `None` models a dedicated allocation.
    pub background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    /// Batch-queue policy of the target machine.
    pub batch_policy: BatchPolicy,
    /// Platform-level fault injection (node crashes, task failures,
    /// stragglers); `None` models a fault-free machine.
    pub fault_profile: Option<entk_cluster::FaultProfile>,
    /// Collect the cross-layer trace and metrics (default `true`). Turn
    /// off for throughput measurements at extreme task counts: the trace
    /// grows by tens of records per task and comes to dominate memory and
    /// wall time long before the simulation itself does. Disabling never
    /// changes simulated timings, task outcomes, or RNG draws — only
    /// whether the run leaves an inspectable trace behind.
    pub telemetry: bool,
}

impl Default for SimulatedConfig {
    fn default() -> Self {
        SimulatedConfig {
            seed: 2016,
            platform: None,
            entk_overheads: EntkOverheads::calibrated(),
            runtime_overheads: RuntimeOverheads::radical_pilot(),
            unit_failure_rate: 0.0,
            fault: FaultConfig::default(),
            pilot_strategy: PilotStrategy::single(),
            background_load: None,
            batch_policy: BatchPolicy::Fifo,
            fault_profile: None,
            telemetry: true,
        }
    }
}

enum Inner {
    Sim(Box<SimDriver>),
    Local(Box<LocalDriver>),
}

/// A handle to allocated (simulated or local) resources.
///
/// Lifecycle: [`ResourceHandle::allocate`] → one or more
/// [`ResourceHandle::run`] calls → [`ResourceHandle::deallocate`].
pub struct ResourceHandle {
    inner: Inner,
}

impl ResourceHandle {
    /// Creates a handle on the simulated backend with built-in kernels.
    pub fn simulated(config: ResourceConfig, sim: SimulatedConfig) -> Result<Self, EntkError> {
        Self::simulated_with_registry(config, sim, KernelRegistry::with_builtins())
    }

    /// Creates a simulated handle with a custom kernel registry.
    pub fn simulated_with_registry(
        config: ResourceConfig,
        sim: SimulatedConfig,
        registry: KernelRegistry,
    ) -> Result<Self, EntkError> {
        let platform = match sim.platform.clone() {
            Some(p) => p,
            None => PlatformSpec::by_name(&config.resource).ok_or_else(|| {
                EntkError::Resource(format!("unknown resource {:?}", config.resource))
            })?,
        };
        if config.cores == 0 || config.cores > platform.total_cores() {
            return Err(EntkError::Resource(format!(
                "requested {} cores; {} has {}",
                config.cores,
                platform.name,
                platform.total_cores()
            )));
        }
        let runtime_config = SimRuntimeConfig {
            overheads: sim.runtime_overheads,
            unit_failure_rate: sim.unit_failure_rate,
            seed: sim.seed ^ 0x52_55_4E,
            batch_policy: sim.batch_policy,
            telemetry: sim.telemetry,
        };
        Ok(ResourceHandle {
            inner: Inner::Sim(Box::new(SimDriver::new(
                config,
                platform,
                registry,
                sim.entk_overheads,
                runtime_config,
                sim.fault,
                sim.seed,
                sim.pilot_strategy,
                sim.background_load,
                sim.fault_profile.clone(),
            ))),
        })
    }

    /// Creates a handle executing kernels for real on `cores` local
    /// core slots.
    pub fn local(cores: usize) -> Self {
        Self::local_with(
            cores,
            KernelRegistry::with_builtins(),
            FaultConfig::default(),
        )
    }

    /// Local handle with custom registry and fault policy.
    pub fn local_with(cores: usize, registry: KernelRegistry, fault: FaultConfig) -> Self {
        ResourceHandle {
            inner: Inner::Local(Box::new(LocalDriver::new(cores, registry, fault))),
        }
    }

    /// Replaces the unit scheduler (simulated backend only; ablation hook).
    pub fn set_unit_scheduler(&mut self, s: Box<dyn UnitScheduler>) {
        if let Inner::Sim(d) = &mut self.inner {
            d.set_unit_scheduler(s);
        }
    }

    /// Replaces the task-binding policy (simulated backend only) — the
    /// paper's §V "intelligent" execution plugin.
    pub fn set_binding_policy(&mut self, b: Box<dyn crate::binding::BindingPolicy>) {
        if let Inner::Sim(d) = &mut self.inner {
            d.set_binding_policy(b);
        }
    }

    /// The shared cross-layer trace/metrics pipeline behind this handle.
    /// `None` on the local backend, which executes in real time and has no
    /// virtual-clock trace.
    pub fn telemetry(&self) -> Option<&SharedTelemetry> {
        match &self.inner {
            Inner::Sim(d) => Some(d.telemetry()),
            Inner::Local(_) => None,
        }
    }

    /// Acquires resources: submits the pilot and waits (in virtual time)
    /// until its agent is active.
    pub fn allocate(&mut self) -> Result<(), EntkError> {
        match &mut self.inner {
            Inner::Sim(d) => d.allocate(),
            Inner::Local(d) => d.allocate(),
        }
    }

    /// Runs an execution pattern to completion on the allocated resources.
    pub fn run(
        &mut self,
        pattern: &mut dyn ExecutionPattern,
    ) -> Result<ExecutionReport, EntkError> {
        match &mut self.inner {
            Inner::Sim(d) => d.run(pattern),
            Inner::Local(d) => d.run(pattern),
        }
    }

    /// Releases resources; returns the final session report (including
    /// teardown in the core overhead and total TTC).
    pub fn deallocate(&mut self) -> Result<ExecutionReport, EntkError> {
        match &mut self.inner {
            Inner::Sim(d) => d.deallocate(),
            Inner::Local(d) => d.deallocate(),
        }
    }
}

/// Convenience: allocate → run → deallocate on the simulated backend.
/// Returns the session report: the pattern's task records with the full
/// session TTC and complete overhead decomposition.
pub fn run_simulated(
    config: ResourceConfig,
    sim: SimulatedConfig,
    pattern: &mut dyn ExecutionPattern,
) -> Result<ExecutionReport, EntkError> {
    run_simulated_traced(config, sim, pattern).map(|(report, _)| report)
}

/// Like [`run_simulated`], but also returns the session's telemetry: the
/// cross-layer event trace (exportable as Chrome trace JSON or JSONL) and
/// the metrics collected along the way. The trace is the input to
/// [`crate::trace_check::cross_check`], which re-derives the overhead
/// breakdown from timestamps and asserts it matches the accounting.
pub fn run_simulated_traced(
    config: ResourceConfig,
    sim: SimulatedConfig,
    pattern: &mut dyn ExecutionPattern,
) -> Result<(ExecutionReport, Telemetry), EntkError> {
    let mut handle = ResourceHandle::simulated(config, sim)?;
    handle.allocate()?;
    let run_report = handle.run(pattern)?;
    let mut session = handle.deallocate()?;
    session.pattern = run_report.pattern;
    let telemetry = handle
        .telemetry()
        .expect("simulated handle has telemetry")
        .snapshot();
    Ok((session, telemetry))
}
