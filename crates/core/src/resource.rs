//! The Resource Handle (paper §III-B component 3): allocate resources, run
//! execution patterns on them, deallocate.
//!
//! A handle is one [`crate::session::SessionEngine`] (all backend-independent
//! session semantics) bound to one [`crate::backend::ExecutionBackend`]
//! (simulated, local, or federated).

use crate::error::EntkError;
use crate::fault::FaultConfig;
use crate::overheads::EntkOverheads;
use crate::pattern::ExecutionPattern;
use crate::plugin_local::LocalBackend;
use crate::plugin_sim::{ClusterInit, EventBackend, FedDrive};
use crate::report::ExecutionReport;
use crate::session::SessionEngine;
use entk_cluster::PlatformSpec;
use entk_kernels::KernelRegistry;
use entk_pilot::{BatchPolicy, RuntimeOverheads, SimRuntimeConfig, UnitScheduler};
use entk_sim::{SharedTelemetry, SimDuration, Telemetry};
use serde::{Deserialize, Serialize};

/// What resources the application asks for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Resource label: `"xsede.comet"`, `"xsede.stampede"`, `"lsu.supermic"`
    /// or `"local"`.
    pub resource: String,
    /// Cores to acquire (the pilot size).
    pub cores: usize,
    /// Allocation wall time.
    pub walltime: SimDuration,
}

impl ResourceConfig {
    /// Creates a config.
    pub fn new(resource: impl Into<String>, cores: usize, walltime: SimDuration) -> Self {
        ResourceConfig {
            resource: resource.into(),
            cores,
            walltime,
        }
    }
}

/// How the requested cores are acquired: one big pilot (the paper's
/// configuration) or several smaller ones (the "execution strategy"
/// extension of paper §V / Ref.\[23\] — smaller pilots clear shared batch
/// queues faster when queue wait grows with allocation size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PilotStrategy {
    /// Number of pilots the cores are split across.
    pub count: usize,
    /// Wait for all pilots to activate before `allocate()` returns
    /// (`true`), or for just the first (`false`, late binding).
    pub wait_all: bool,
}

impl PilotStrategy {
    /// The paper's configuration: one pilot holding all cores.
    pub fn single() -> Self {
        PilotStrategy {
            count: 1,
            wait_all: true,
        }
    }

    /// `count` equal pilots; `allocate()` returns at the first active one.
    pub fn split(count: usize) -> Self {
        PilotStrategy {
            count,
            wait_all: false,
        }
    }
}

impl Default for PilotStrategy {
    fn default() -> Self {
        Self::single()
    }
}

/// Tuning of the simulated backend.
#[derive(Debug, Clone)]
pub struct SimulatedConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Platform override; `None` resolves `ResourceConfig::resource` by name.
    pub platform: Option<PlatformSpec>,
    /// EnTK-side overhead model.
    pub entk_overheads: EntkOverheads,
    /// Runtime-side overhead model.
    pub runtime_overheads: RuntimeOverheads,
    /// Probability a unit execution fails (failure injection).
    pub unit_failure_rate: f64,
    /// Retry / kill-replace policy.
    pub fault: FaultConfig,
    /// Pilot acquisition strategy.
    pub pilot_strategy: PilotStrategy,
    /// Synthetic competing workload on the target machine (queue
    /// contention); `None` models a dedicated allocation.
    pub background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    /// Batch-queue policy of the target machine.
    pub batch_policy: BatchPolicy,
    /// Registered scheduler plugin (see [`crate::registry::schedulers`]);
    /// when set it overrides `batch_policy`, so a spec file alone can put
    /// any registered policy on the machine.
    pub scheduler: Option<crate::registry::ComponentSpec>,
    /// Platform-level fault injection (node crashes, task failures,
    /// stragglers); `None` models a fault-free machine.
    pub fault_profile: Option<entk_cluster::FaultProfile>,
    /// Collect the cross-layer trace and metrics (default `true`). Turn
    /// off for throughput measurements at extreme task counts: the trace
    /// grows by tens of records per task and comes to dominate memory and
    /// wall time long before the simulation itself does. Disabling never
    /// changes simulated timings, task outcomes, or RNG draws — only
    /// whether the run leaves an inspectable trace behind.
    pub telemetry: bool,
}

impl Default for SimulatedConfig {
    fn default() -> Self {
        SimulatedConfig {
            seed: 2016,
            platform: None,
            entk_overheads: EntkOverheads::calibrated(),
            runtime_overheads: RuntimeOverheads::radical_pilot(),
            unit_failure_rate: 0.0,
            fault: FaultConfig::default(),
            pilot_strategy: PilotStrategy::single(),
            background_load: None,
            batch_policy: BatchPolicy::Fifo,
            scheduler: None,
            fault_profile: None,
            telemetry: true,
        }
    }
}

/// How a multi-member federated backend advances its member clusters
/// between merge points.
///
/// Both modes execute the *identical* conservative-lookahead windowed
/// schedule — same chunks, same merge order, byte-identical traces; they
/// differ only in whether member windows run concurrently. Single-cluster
/// and one-member federated backends ignore this knob entirely (classic
/// serial drive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveMode {
    /// Member windows run inline on the polling thread.
    Serial,
    /// Member windows run concurrently on a persistent worker pool (the
    /// default).
    #[default]
    Parallel,
}

/// One member cluster of a federated session: an independently simulated
/// machine with its own platform, batch queue, load, and faults.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Resource label (resolves a [`PlatformSpec`] by name unless
    /// [`ClusterSpec::platform`] overrides it).
    pub resource: String,
    /// Cores to acquire on this cluster.
    pub cores: usize,
    /// Allocation wall time on this cluster.
    pub walltime: SimDuration,
    /// Platform override; `None` resolves `resource` by name.
    pub platform: Option<PlatformSpec>,
    /// Pilots the cores are split across on this cluster.
    pub pilots: usize,
    /// Synthetic competing workload on this cluster's batch queue.
    pub background_load: Option<entk_cluster::cluster::BackgroundLoad>,
    /// Platform-level fault injection on this cluster only.
    pub fault_profile: Option<entk_cluster::FaultProfile>,
    /// Probability a unit execution fails on this cluster.
    pub unit_failure_rate: f64,
}

impl ClusterSpec {
    /// A dedicated, fault-free cluster with one pilot.
    pub fn new(resource: impl Into<String>, cores: usize, walltime: SimDuration) -> Self {
        ClusterSpec {
            resource: resource.into(),
            cores,
            walltime,
            platform: None,
            pilots: 1,
            background_load: None,
            fault_profile: None,
            unit_failure_rate: 0.0,
        }
    }
}

/// Tuning of the federated multi-cluster backend. Session-level knobs
/// (overheads, fault policy, seed) are shared; machine-level knobs live on
/// each [`ClusterSpec`].
#[derive(Debug, Clone)]
pub struct FederatedConfig {
    /// Master seed; each cluster's runtime derives an independent stream.
    pub seed: u64,
    /// EnTK-side overhead model (session-wide).
    pub entk_overheads: EntkOverheads,
    /// Runtime-side overhead model (applied on every cluster).
    pub runtime_overheads: RuntimeOverheads,
    /// Retry / kill-replace policy (session-wide).
    pub fault: FaultConfig,
    /// Batch-queue policy of every member cluster.
    pub batch_policy: BatchPolicy,
    /// Registered scheduler plugin (see [`crate::registry::schedulers`]);
    /// when set it overrides `batch_policy`. Each member cluster builds
    /// its own fresh scheduler instance from the resolved factory.
    pub scheduler: Option<crate::registry::ComponentSpec>,
    /// Wait for all pilots on all clusters before `allocate()` returns
    /// (`false` by default: first active pilot anywhere unblocks the
    /// session — late binding across clusters).
    pub wait_all: bool,
    /// Collect the cross-layer trace and metrics.
    pub telemetry: bool,
    /// How member clusters are driven between merge points (≥ 2 members
    /// only). Serial and parallel drives produce byte-identical traces.
    pub drive: DriveMode,
    /// Conservative lookahead in seconds beyond the earliest member event
    /// per window during the run phase. `None` derives it from the overhead
    /// and fault models: the guaranteed floor of the session's
    /// task-submission reaction delay (and of the retry backoff when
    /// retries are enabled). Affects window width (throughput), never
    /// correctness: both drive modes execute the same windowed schedule.
    pub lookahead: Option<f64>,
    /// Worker threads driving member windows in parallel mode; `0` (the
    /// default) uses one per member, capped at the host's parallelism.
    pub sim_threads: usize,
    /// The member clusters (at least one required).
    pub clusters: Vec<ClusterSpec>,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        FederatedConfig {
            seed: 2016,
            entk_overheads: EntkOverheads::calibrated(),
            runtime_overheads: RuntimeOverheads::radical_pilot(),
            fault: FaultConfig::default(),
            batch_policy: BatchPolicy::Fifo,
            scheduler: None,
            wait_all: false,
            telemetry: true,
            drive: DriveMode::default(),
            lookahead: None,
            sim_threads: 0,
            clusters: Vec::new(),
        }
    }
}

/// The conservative lookahead a federated session can safely default to:
/// the guaranteed floor of the earliest session reaction to a member event.
/// The session reacts to unit completions by scheduling the next batch
/// after at least the fixed task-submission overhead; with retries enabled
/// the retry backoff floor (often zero) also bounds the reaction, so
/// retry-heavy configs degrade toward serial-equivalent 1 µs windows.
fn derive_lookahead(overheads: &EntkOverheads, fault: &FaultConfig) -> f64 {
    let mut lookahead = overheads.task_submit_fixed.floor();
    if fault.max_retries > 0 {
        let backoff_floor = (fault.backoff.base * (1.0 - fault.backoff.jitter)).max(0.0);
        lookahead = lookahead.min(backoff_floor);
    }
    lookahead.max(0.0)
}

enum Inner {
    Event(Box<EventBackend>),
    Local(Box<LocalBackend>),
}

/// A handle to allocated (simulated, local, or federated) resources.
///
/// Lifecycle: [`ResourceHandle::allocate`] → one or more
/// [`ResourceHandle::run`] calls → [`ResourceHandle::deallocate`].
pub struct ResourceHandle {
    session: SessionEngine,
    inner: Inner,
}

impl ResourceHandle {
    /// Creates a handle on the simulated backend with built-in kernels.
    pub fn simulated(config: ResourceConfig, sim: SimulatedConfig) -> Result<Self, EntkError> {
        Self::simulated_with_registry(config, sim, KernelRegistry::with_builtins())
    }

    /// Creates a simulated handle with a custom kernel registry.
    pub fn simulated_with_registry(
        config: ResourceConfig,
        sim: SimulatedConfig,
        registry: KernelRegistry,
    ) -> Result<Self, EntkError> {
        let platform = match sim.platform.clone() {
            Some(p) => p,
            None => PlatformSpec::by_name(&config.resource).ok_or_else(|| {
                EntkError::Resource(format!("unknown resource {:?}", config.resource))
            })?,
        };
        if config.cores == 0 || config.cores > platform.total_cores() {
            return Err(EntkError::Resource(format!(
                "requested {} cores; {} has {}",
                config.cores,
                platform.name,
                platform.total_cores()
            )));
        }
        let scheduler = sim
            .scheduler
            .as_ref()
            .map(|spec| crate::registry::schedulers().build(spec, &()))
            .transpose()?;
        let runtime_config = SimRuntimeConfig {
            overheads: sim.runtime_overheads,
            unit_failure_rate: sim.unit_failure_rate,
            seed: sim.seed ^ 0x52_55_4E,
            batch_policy: sim.batch_policy,
            scheduler,
            telemetry: sim.telemetry,
        };
        let backend = EventBackend::single(
            config,
            platform,
            registry,
            runtime_config,
            sim.pilot_strategy,
            sim.background_load,
            sim.fault_profile.clone(),
        );
        let session = SessionEngine::new(
            sim.entk_overheads,
            sim.fault,
            sim.seed,
            backend.telemetry().clone(),
        );
        Ok(ResourceHandle {
            session,
            inner: Inner::Event(Box::new(backend)),
        })
    }

    /// Creates a federated handle with built-in kernels: one session
    /// late-binding units across several independently simulated clusters.
    pub fn federated(config: FederatedConfig) -> Result<Self, EntkError> {
        Self::federated_with_registry(config, KernelRegistry::with_builtins())
    }

    /// Creates a federated handle with a custom kernel registry.
    pub fn federated_with_registry(
        config: FederatedConfig,
        registry: KernelRegistry,
    ) -> Result<Self, EntkError> {
        if config.clusters.is_empty() {
            return Err(EntkError::Resource(
                "federated session needs at least one cluster".to_string(),
            ));
        }
        let runtime_seed = config.seed ^ 0x52_55_4E;
        let scheduler = config
            .scheduler
            .as_ref()
            .map(|spec| crate::registry::schedulers().build(spec, &()))
            .transpose()?;
        let mut inits = Vec::with_capacity(config.clusters.len());
        for (i, spec) in config.clusters.iter().enumerate() {
            let platform = match spec.platform.clone() {
                Some(p) => p,
                None => PlatformSpec::by_name(&spec.resource).ok_or_else(|| {
                    EntkError::Resource(format!("unknown resource {:?}", spec.resource))
                })?,
            };
            if spec.cores == 0 || spec.cores > platform.total_cores() {
                return Err(EntkError::Resource(format!(
                    "requested {} cores; {} has {}",
                    spec.cores,
                    platform.name,
                    platform.total_cores()
                )));
            }
            // Decorrelate the member clusters' stochastic streams while
            // keeping cluster 0 on the classic single-cluster stream.
            let cluster_seed = runtime_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            inits.push(ClusterInit {
                resource: spec.resource.clone(),
                cores: spec.cores,
                walltime: spec.walltime,
                platform,
                runtime_config: SimRuntimeConfig {
                    overheads: config.runtime_overheads,
                    unit_failure_rate: spec.unit_failure_rate,
                    seed: cluster_seed,
                    batch_policy: config.batch_policy,
                    // The factory is shared; each member's runtime builds
                    // its own fresh scheduler instance from it.
                    scheduler: scheduler.clone(),
                    telemetry: config.telemetry,
                },
                pilot_count: spec.pilots,
                background_load: spec.background_load,
                fault_profile: spec.fault_profile.clone(),
            });
        }
        let telemetry = if config.telemetry {
            SharedTelemetry::new()
        } else {
            SharedTelemetry::disabled()
        };
        let members = config.clusters.len();
        let workers = if config.sim_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.sim_threads
        }
        .clamp(1, members);
        let lookahead = config
            .lookahead
            .unwrap_or_else(|| derive_lookahead(&config.entk_overheads, &config.fault));
        let drive = FedDrive {
            mode: config.drive,
            lookahead: SimDuration::from_secs_f64(lookahead.max(0.0)),
            workers,
        };
        let backend =
            EventBackend::federated(inits, registry, config.wait_all, telemetry.clone(), drive);
        let session =
            SessionEngine::new(config.entk_overheads, config.fault, config.seed, telemetry);
        Ok(ResourceHandle {
            session,
            inner: Inner::Event(Box::new(backend)),
        })
    }

    /// Creates a handle executing kernels for real on `cores` local
    /// core slots.
    pub fn local(cores: usize) -> Self {
        Self::local_with(
            cores,
            KernelRegistry::with_builtins(),
            FaultConfig::default(),
        )
    }

    /// Local handle with custom registry and fault policy.
    pub fn local_with(cores: usize, registry: KernelRegistry, fault: FaultConfig) -> Self {
        // The local backend runs in real time: the session never draws from
        // its RNG (no modeled overheads or backoff), so the seed is inert,
        // and the disabled telemetry pipeline drops every record.
        let session = SessionEngine::new(
            EntkOverheads::calibrated(),
            fault,
            0,
            SharedTelemetry::disabled(),
        );
        ResourceHandle {
            session,
            inner: Inner::Local(Box::new(LocalBackend::new(cores, registry))),
        }
    }

    /// Replaces the unit scheduler (simulated backend only; ablation hook).
    pub fn set_unit_scheduler(&mut self, s: Box<dyn UnitScheduler>) {
        if let Inner::Event(b) = &mut self.inner {
            b.set_unit_scheduler(s);
        }
    }

    /// Replaces the task-binding policy (simulated backends only) — the
    /// paper's §V "intelligent" execution plugin.
    pub fn set_binding_policy(&mut self, b: Box<dyn crate::binding::BindingPolicy>) {
        if let Inner::Event(d) = &mut self.inner {
            d.set_binding_policy(b);
        }
    }

    /// The shared cross-layer trace/metrics pipeline behind this handle.
    /// `None` on the local backend, which executes in real time and has no
    /// virtual-clock trace.
    pub fn telemetry(&self) -> Option<&SharedTelemetry> {
        match &self.inner {
            Inner::Event(_) => Some(self.session.telemetry()),
            Inner::Local(_) => None,
        }
    }

    /// Acquires resources: submits the pilot(s) and waits (in virtual time)
    /// until the allocation is usable.
    pub fn allocate(&mut self) -> Result<(), EntkError> {
        let ResourceHandle { session, inner } = self;
        match inner {
            Inner::Event(b) => session.allocate(b.as_mut()),
            Inner::Local(b) => session.allocate(b.as_mut()),
        }
    }

    /// Runs an execution pattern to completion on the allocated resources.
    pub fn run(
        &mut self,
        pattern: &mut dyn ExecutionPattern,
    ) -> Result<ExecutionReport, EntkError> {
        let ResourceHandle { session, inner } = self;
        match inner {
            Inner::Event(b) => session.run(b.as_mut(), pattern),
            Inner::Local(b) => session.run(b.as_mut(), pattern),
        }
    }

    /// Releases resources; returns the final session report (including
    /// teardown in the core overhead and total TTC).
    pub fn deallocate(&mut self) -> Result<ExecutionReport, EntkError> {
        let ResourceHandle { session, inner } = self;
        match inner {
            Inner::Event(b) => session.deallocate(b.as_mut()),
            Inner::Local(b) => session.deallocate(b.as_mut()),
        }
    }
}

/// Convenience: allocate → run → deallocate on the simulated backend.
/// Returns the session report: the pattern's task records with the full
/// session TTC and complete overhead decomposition.
pub fn run_simulated(
    config: ResourceConfig,
    sim: SimulatedConfig,
    pattern: &mut dyn ExecutionPattern,
) -> Result<ExecutionReport, EntkError> {
    run_simulated_traced(config, sim, pattern).map(|(report, _)| report)
}

/// Like [`run_simulated`], but also returns the session's telemetry: the
/// cross-layer event trace (exportable as Chrome trace JSON or JSONL) and
/// the metrics collected along the way. The trace is the input to
/// [`crate::trace_check::cross_check`], which re-derives the overhead
/// breakdown from timestamps and asserts it matches the accounting.
pub fn run_simulated_traced(
    config: ResourceConfig,
    sim: SimulatedConfig,
    pattern: &mut dyn ExecutionPattern,
) -> Result<(ExecutionReport, Telemetry), EntkError> {
    let mut handle = ResourceHandle::simulated(config, sim)?;
    handle.allocate()?;
    let run_report = handle.run(pattern)?;
    let mut session = handle.deallocate()?;
    session.pattern = run_report.pattern;
    let telemetry = handle
        .telemetry()
        .ok_or_else(|| EntkError::Runtime("simulated handle lost its telemetry".to_string()))?
        .snapshot();
    Ok((session, telemetry))
}

/// Convenience: allocate → run → deallocate on the federated multi-cluster
/// backend.
pub fn run_federated(
    config: FederatedConfig,
    pattern: &mut dyn ExecutionPattern,
) -> Result<ExecutionReport, EntkError> {
    run_federated_traced(config, pattern).map(|(report, _)| report)
}

/// Like [`run_federated`], but also returns the session telemetry: one
/// chronologically interleaved trace covering every member cluster, with
/// per-cluster subject-id offsets keeping pilots/units/jobs/nodes distinct.
pub fn run_federated_traced(
    config: FederatedConfig,
    pattern: &mut dyn ExecutionPattern,
) -> Result<(ExecutionReport, Telemetry), EntkError> {
    let mut handle = ResourceHandle::federated(config)?;
    handle.allocate()?;
    let run_report = handle.run(pattern)?;
    let mut session = handle.deallocate()?;
    session.pattern = run_report.pattern;
    let telemetry = handle
        .telemetry()
        .ok_or_else(|| EntkError::Runtime("federated handle lost its telemetry".to_string()))?
        .snapshot();
    Ok((session, telemetry))
}
