//! Tasks: what execution patterns emit and what they get back.

use entk_kernels::KernelCall;
use serde_json::Value;

/// A task emitted by a pattern stage.
///
/// The `tag` is chosen by the pattern and echoed back in [`TaskResult`], so
/// patterns can correlate completions with their internal bookkeeping
/// (pipeline index, replica index, …) without knowing runtime unit ids.
#[derive(Debug, Clone)]
pub struct Task {
    /// Pattern-chosen correlation tag.
    pub tag: u64,
    /// Stage label, e.g. `"simulation"`, `"analysis"`, `"exchange"`.
    /// Reports aggregate execution time per stage under this label.
    pub stage: String,
    /// The bound kernel invocation.
    pub kernel: KernelCall,
}

impl Task {
    /// Creates a task.
    pub fn new(tag: u64, stage: impl Into<String>, kernel: KernelCall) -> Self {
        Task {
            tag,
            stage: stage.into(),
            kernel,
        }
    }
}

/// Completion report delivered to the pattern.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The pattern's correlation tag.
    pub tag: u64,
    /// Stage label of the completed task.
    pub stage: String,
    /// Whether the task succeeded (after any retries).
    pub success: bool,
    /// Kernel output (model output in simulated runs, real output locally).
    pub output: Value,
    /// Failure description, when `success` is false.
    pub error: Option<String>,
}

impl TaskResult {
    /// A successful result.
    pub fn ok(tag: u64, stage: impl Into<String>, output: Value) -> Self {
        TaskResult {
            tag,
            stage: stage.into(),
            success: true,
            output,
            error: None,
        }
    }

    /// A failed result.
    pub fn failed(tag: u64, stage: impl Into<String>, error: impl Into<String>) -> Self {
        TaskResult {
            tag,
            stage: stage.into(),
            success: false,
            output: Value::Null,
            error: Some(error.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn constructors_set_fields() {
        let t = Task::new(
            7,
            "simulation",
            KernelCall::new("misc.sleep", json!({"secs": 1.0})),
        );
        assert_eq!(t.tag, 7);
        assert_eq!(t.stage, "simulation");

        let ok = TaskResult::ok(7, "simulation", json!({"x": 1}));
        assert!(ok.success);
        assert!(ok.error.is_none());

        let bad = TaskResult::failed(7, "simulation", "boom");
        assert!(!bad.success);
        assert_eq!(bad.error.as_deref(), Some("boom"));
        assert!(bad.output.is_null());
    }
}
