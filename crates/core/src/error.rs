//! Toolkit error type.

use std::fmt;

/// Errors surfaced by the Ensemble Toolkit API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntkError {
    /// The resource configuration is invalid or the resource is unknown.
    Resource(String),
    /// A kernel binding failed (unknown plugin, bad arguments).
    Kernel(String),
    /// The runtime rejected or lost the work.
    Runtime(String),
    /// API misuse (run before allocate, double allocate, …).
    Usage(String),
    /// An admission queue is at capacity and the arrival was rejected or
    /// deferred (backpressure) — recorded per session, never stream-fatal.
    Saturated(String),
}

impl fmt::Display for EntkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntkError::Resource(m) => write!(f, "resource error: {m}"),
            EntkError::Kernel(m) => write!(f, "kernel error: {m}"),
            EntkError::Runtime(m) => write!(f, "runtime error: {m}"),
            EntkError::Usage(m) => write!(f, "usage error: {m}"),
            EntkError::Saturated(m) => write!(f, "saturated: {m}"),
        }
    }
}

impl std::error::Error for EntkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(EntkError::Resource("x".into())
            .to_string()
            .contains("resource"));
        assert!(EntkError::Usage("y".into()).to_string().contains("usage"));
        assert!(EntkError::Saturated("queue full".into())
            .to_string()
            .contains("saturated"));
    }
}
