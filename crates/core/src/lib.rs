//! # entk-core — the Ensemble Toolkit
//!
//! Rust reproduction of *Ensemble Toolkit: Scalable and Flexible Execution
//! of Ensembles of Tasks* (ICPP 2016). The four architectural components of
//! the paper's Fig. 1 map directly onto this crate:
//!
//! 1. **Execution patterns** ([`pattern`]) — ensemble of pipelines,
//!    ensemble exchange, simulation-analysis loop, plus composition.
//! 2. **Kernel plugins** (re-exported from `entk-kernels`) — task
//!    abstractions bound into patterns via [`entk_kernels::KernelCall`].
//! 3. **Resource handle** ([`ResourceHandle`]) — allocate / run / deallocate.
//! 4. **Execution plugins** (internal) — bind pattern × kernels × resource
//!    and drive the pilot runtime, on a simulated machine (virtual time,
//!    used by all scaling experiments) or the local host (real execution).
//!
//! ```no_run
//! use entk_core::prelude::*;
//! use serde_json::json;
//!
//! // Character-count app from the paper's Fig. 3: mkfile then ccount.
//! let mut pattern = EnsembleOfPipelines::new(24, 2, |p, s| {
//!     if s == 0 {
//!         KernelCall::new("misc.mkfile", json!({"bytes": 1024, "path": format!("/tmp/f{p}")}))
//!     } else {
//!         KernelCall::new("misc.ccount", json!({"path": format!("/tmp/f{p}")}))
//!     }
//! }).with_stage_labels(vec!["mkfile".into(), "ccount".into()]);
//!
//! let config = ResourceConfig::new("xsede.comet", 24, SimDuration::from_secs(3600));
//! let report = run_simulated(config, SimulatedConfig::default(), &mut pattern).unwrap();
//! println!("TTC {} with {} tasks", report.ttc, report.task_count());
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod binding;
pub mod error;
pub mod fault;
pub mod overheads;
pub mod pattern;
mod plugin_local;
mod plugin_sim;
pub mod registry;
pub mod report;
pub mod resource;
pub mod session;
pub mod task;
pub mod trace_check;

pub use backend::{BackendEvent, BackendStats, ExecutionBackend, Poll, UnitOutcome, UnitSpec};
pub use binding::{AdaptiveMpiBinding, BindingPolicy, StaticBinding};
pub use entk_cluster::FaultProfile;
pub use error::EntkError;
pub use fault::{BackoffPolicy, FaultConfig};
pub use overheads::EntkOverheads;
pub use pattern::{
    BagOfTasks, ConcurrentPatterns, EnsembleExchange, EnsembleOfPipelines, ExchangeMode,
    ExecutionPattern, Pipeline, PstTask, PstWorkflow, SequencePattern, SimulationAnalysisLoop,
    Stage,
};
pub use registry::{
    params_or_default, params_required, require_no_params, ComponentSpec, Registry,
};
pub use report::{ExecutionReport, OverheadBreakdown, TaskRecord};
pub use resource::{
    run_federated, run_federated_traced, run_simulated, run_simulated_traced, ClusterSpec,
    DriveMode, FederatedConfig, PilotStrategy, ResourceConfig, ResourceHandle, SimulatedConfig,
};
pub use session::SessionEngine;
pub use task::{Task, TaskResult};
pub use trace_check::{breakdown_from_trace, cross_check, CrossCheck};

/// Everything a toolkit application needs.
pub mod prelude {
    pub use crate::fault::{BackoffPolicy, FaultConfig};
    pub use crate::overheads::EntkOverheads;
    pub use crate::pattern::{
        BagOfTasks, ConcurrentPatterns, EnsembleExchange, EnsembleOfPipelines, ExchangeMode,
        ExecutionPattern, Pipeline, PstTask, PstWorkflow, SequencePattern, SimulationAnalysisLoop,
        Stage,
    };
    pub use crate::report::ExecutionReport;
    pub use crate::resource::{
        run_federated, run_federated_traced, run_simulated, run_simulated_traced, ClusterSpec,
        DriveMode, FederatedConfig, PilotStrategy, ResourceConfig, ResourceHandle, SimulatedConfig,
    };
    pub use crate::task::{Task, TaskResult};
    pub use crate::trace_check::{breakdown_from_trace, cross_check, CrossCheck};
    pub use entk_cluster::FaultProfile;
    pub use entk_kernels::{KernelCall, KernelRegistry};
    pub use entk_md::TemperatureLadder;
    pub use entk_sim::{SimDuration, SimTime, Telemetry, Tracer};
}
