//! Execution reports: time-to-completion and its decomposition.
//!
//! Every figure in the paper's evaluation is a view over these fields:
//! per-stage execution times (Figs. 3–9), EnTK core and pattern overheads
//! (Fig. 3's bottom subplot), and runtime-side latencies.

use entk_sim::{SimDuration, SimTime, Summary};
use serde::{Deserialize, Serialize};

/// Timeline of one task as executed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Driver-assigned unique id.
    pub uid: u64,
    /// Pattern correlation tag.
    pub tag: u64,
    /// Stage label.
    pub stage: String,
    /// When the pattern emitted the task.
    pub created: SimTime,
    /// Execution start on pilot cores, if it ran.
    pub exec_start: Option<SimTime>,
    /// Execution end, if it ran.
    pub exec_stop: Option<SimTime>,
    /// When the task reached a terminal state.
    pub finished: Option<SimTime>,
    /// Final success.
    pub success: bool,
    /// Resubmissions consumed (failures and kill-replace).
    pub retries: u32,
    /// Wall time spent on attempts that ended in failure, including retry
    /// backoff — the per-task contribution to `OverheadBreakdown::failure_lost`.
    pub lost_to_failures: SimDuration,
}

impl TaskRecord {
    /// Pure execution duration, if the task executed.
    pub fn exec_duration(&self) -> Option<SimDuration> {
        Some(self.exec_stop?.saturating_since(self.exec_start?))
    }
}

/// The paper's overhead decomposition.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// EnTK core overhead: init + resource request + teardown (constant
    /// per session).
    pub core: SimDuration,
    /// EnTK pattern overhead: task creation/submission (∝ tasks).
    pub pattern: SimDuration,
    /// Runtime (pilot) overhead: pilot submission bookkeeping.
    pub runtime_pilot: SimDuration,
    /// Batch-system time: queue wait + job startup until the agent ran.
    pub resource_wait: SimDuration,
    /// Time lost to failures: failed attempts' wall time plus retry
    /// backoff, summed over all tasks.
    pub failure_lost: SimDuration,
}

/// Result of executing one pattern on one resource allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Pattern name.
    pub pattern: String,
    /// Resource label.
    pub resource: String,
    /// Cores acquired.
    pub cores: usize,
    /// Total session time: allocate → pattern completion → deallocate.
    pub ttc: SimDuration,
    /// Overhead decomposition.
    pub overheads: OverheadBreakdown,
    /// Per-task timelines.
    pub tasks: Vec<TaskRecord>,
    /// Tasks whose final state was failure.
    pub failed_tasks: usize,
    /// Total resubmissions across all tasks.
    pub total_retries: u32,
    /// True when the pattern did not fully complete: retries exhausted on
    /// some tasks, or the session degraded gracefully after losing its
    /// resources mid-run.
    pub partial: bool,
    /// Discrete events the simulation engine processed for this session so
    /// far — the denominator of the events/sec throughput metric. Zero on
    /// the local backend, which has no virtual-clock engine.
    #[serde(default)]
    pub events: u64,
}

impl ExecutionReport {
    /// Number of tasks executed (including failures).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Union length of `[exec_start, exec_stop]` intervals for one stage —
    /// "time spent executing stage X", robust to stages interleaving across
    /// iterations.
    pub fn stage_time(&self, stage: &str) -> SimDuration {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .tasks
            .iter()
            .filter(|t| t.stage == stage)
            .filter_map(|t| Some((t.exec_start?, t.exec_stop?)))
            .collect();
        union_length(&mut intervals)
    }

    /// Union length of execution intervals across all stages.
    pub fn exec_time(&self) -> SimDuration {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .tasks
            .iter()
            .filter_map(|t| Some((t.exec_start?, t.exec_stop?)))
            .collect();
        union_length(&mut intervals)
    }

    /// Summary of per-task execution durations for one stage (seconds).
    pub fn stage_exec_summary(&self, stage: &str) -> Summary {
        let mut s = Summary::new();
        for t in &self.tasks {
            if t.stage == stage {
                if let Some(d) = t.exec_duration() {
                    s.add_duration(d);
                }
            }
        }
        s
    }

    /// Stage labels present, in first-appearance order.
    pub fn stages(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for t in &self.tasks {
            if !seen.contains(&t.stage.as_str()) {
                seen.push(t.stage.as_str());
            }
        }
        seen
    }

    /// Total EnTK-attributable overhead (core + pattern).
    pub fn entk_overhead(&self) -> SimDuration {
        self.overheads.core + self.overheads.pattern
    }

    /// Tasks that failed at least once but ultimately succeeded — the
    /// retry engine's save count.
    pub fn recovered_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.success && t.retries > 0)
            .count()
    }
}

/// Total length of the union of (possibly overlapping) intervals.
fn union_length(intervals: &mut [(SimTime, SimTime)]) -> SimDuration {
    if intervals.is_empty() {
        return SimDuration::ZERO;
    }
    intervals.sort_by_key(|&(s, _)| s);
    let mut total = SimDuration::ZERO;
    let (mut cur_start, mut cur_end) = intervals[0];
    for &(s, e) in intervals[1..].iter() {
        if s <= cur_end {
            cur_end = cur_end.max(e);
        } else {
            total += cur_end.saturating_since(cur_start);
            cur_start = s;
            cur_end = e;
        }
    }
    total += cur_end.saturating_since(cur_start);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(stage: &str, start: u64, stop: u64) -> TaskRecord {
        TaskRecord {
            uid: 0,
            tag: 0,
            stage: stage.into(),
            created: SimTime::ZERO,
            exec_start: Some(SimTime::from_secs(start)),
            exec_stop: Some(SimTime::from_secs(stop)),
            finished: Some(SimTime::from_secs(stop)),
            success: true,
            retries: 0,
            lost_to_failures: SimDuration::ZERO,
        }
    }

    fn report(tasks: Vec<TaskRecord>) -> ExecutionReport {
        ExecutionReport {
            pattern: "test".into(),
            resource: "local".into(),
            cores: 4,
            ttc: SimDuration::from_secs(100),
            overheads: OverheadBreakdown::default(),
            tasks,
            failed_tasks: 0,
            total_retries: 0,
            partial: false,
            events: 0,
        }
    }

    #[test]
    fn stage_time_unions_overlapping_intervals() {
        let r = report(vec![
            record("sim", 0, 10),
            record("sim", 5, 15),  // overlaps
            record("sim", 20, 25), // disjoint
            record("analysis", 15, 20),
        ]);
        assert_eq!(r.stage_time("sim"), SimDuration::from_secs(20));
        assert_eq!(r.stage_time("analysis"), SimDuration::from_secs(5));
        assert_eq!(r.exec_time(), SimDuration::from_secs(25));
        assert_eq!(r.stage_time("nonexistent"), SimDuration::ZERO);
    }

    #[test]
    fn stage_summary_and_listing() {
        let r = report(vec![
            record("sim", 0, 10),
            record("sim", 0, 20),
            record("analysis", 20, 21),
        ]);
        let s = r.stage_exec_summary("sim");
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 15.0);
        assert_eq!(r.stages(), vec!["sim", "analysis"]);
        assert_eq!(r.task_count(), 3);
    }

    #[test]
    fn tasks_without_execution_are_ignored() {
        let mut t = record("sim", 0, 5);
        t.exec_start = None;
        t.exec_stop = None;
        let r = report(vec![t]);
        assert_eq!(r.stage_time("sim"), SimDuration::ZERO);
        assert_eq!(r.stage_exec_summary("sim").count(), 0);
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pattern {} on {} ({} cores): {} tasks, {} failed, {} retries{}",
            self.pattern,
            self.resource,
            self.cores,
            self.task_count(),
            self.failed_tasks,
            self.total_retries,
            if self.partial { " [partial]" } else { "" }
        )?;
        writeln!(
            f,
            "  TTC {}  (exec {}, core ovh {}, pattern ovh {}, pilot ovh {}, resource wait {}, failure lost {})",
            self.ttc,
            self.exec_time(),
            self.overheads.core,
            self.overheads.pattern,
            self.overheads.runtime_pilot,
            self.overheads.resource_wait,
            self.overheads.failure_lost
        )?;
        for stage in self.stages() {
            let s = self.stage_exec_summary(stage);
            writeln!(
                f,
                "  stage {stage}: {} tasks, mean {:.3}s, span {}",
                s.count(),
                s.mean(),
                self.stage_time(stage)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_mentions_key_numbers() {
        let r = ExecutionReport {
            pattern: "bag-of-tasks".into(),
            resource: "xsede.comet".into(),
            cores: 24,
            ttc: SimDuration::from_secs(100),
            overheads: OverheadBreakdown::default(),
            tasks: vec![],
            failed_tasks: 2,
            total_retries: 3,
            partial: true,
            events: 0,
        };
        let text = r.to_string();
        assert!(text.contains("bag-of-tasks"));
        assert!(text.contains("xsede.comet"));
        assert!(text.contains("2 failed"));
        assert!(text.contains("3 retries"));
        assert!(text.contains("[partial]"));
    }
}
