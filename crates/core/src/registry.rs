//! Pluggable scenario registry: named component factories behind trait
//! objects, so a spec file — not a `match` arm — selects the batch
//! scheduler, admission policy, fault grid, workload source, kernels, and
//! report sinks of a run (EnTK's "decouple what the ensemble does from how
//! it executes", and the follow-up papers' plugin-interface extensibility).
//!
//! Three pieces:
//!
//! * [`ComponentSpec`] — how a spec file names a component: either a bare
//!   string (`"fifo"`) or an object with typed parameters
//!   (`{"name": "fair_share", "params": {"half_life_secs": 600.0}}`).
//! * [`Registry`] — a name → factory map. Factories take the declared
//!   params as a JSON [`Value`] plus a build context `C` and return the
//!   component or a typed [`EntkError::Usage`]. Unknown names fail with an
//!   error listing every registered alternative.
//! * The built-in tables: [`schedulers`] (batch scheduling policies) and
//!   [`faults`] (retry / kill-replace grids) live here; the workload crate
//!   adds admission policies, arrival sources, and report sinks on the
//!   same [`Registry`] type.
//!
//! Adding a plugin is a closed operation on one file: implement the trait,
//! then `register` a factory under a new name (see DESIGN.md §17 — under
//! 30 lines for a new scheduler).
//!
//! Registry resolution happens at session/admission boundaries only —
//! never on the per-event hot path — so the indirection costs nothing at
//! serve scale.

use crate::error::EntkError;
use crate::fault::FaultConfig;
use entk_cluster::{
    EasyBackfillScheduler, FairShareScheduler, FifoScheduler, PriorityAgingScheduler,
    RoundRobinScheduler, SchedulerFactory, SjfScheduler,
};
use entk_sim::SimDuration;
use serde::{DeError, Deserialize, Map, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A named component selection with optional typed parameters, as written
/// in a spec file. Deserializes from a bare string (`"fifo"`) or an object
/// (`{"name": "fair_share", "params": {...}}`), so pre-registry spec files
/// keep parsing unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Registered component name.
    pub name: String,
    /// Plugin-specific parameters; `Null` means "all defaults".
    pub params: Value,
}

impl ComponentSpec {
    /// A component selected by name with default parameters.
    pub fn named(name: impl Into<String>) -> Self {
        ComponentSpec {
            name: name.into(),
            params: Value::Null,
        }
    }

    /// A component selected by name with explicit parameters.
    pub fn with_params(name: impl Into<String>, params: Value) -> Self {
        ComponentSpec {
            name: name.into(),
            params,
        }
    }
}

impl Serialize for ComponentSpec {
    fn to_value(&self) -> Value {
        if self.params.is_null() {
            Value::String(self.name.clone())
        } else {
            let mut m = Map::new();
            m.insert("name".to_string(), Value::String(self.name.clone()));
            m.insert("params".to_string(), self.params.clone());
            Value::Object(m)
        }
    }
}

impl Deserialize for ComponentSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(name) => Ok(ComponentSpec::named(name.clone())),
            Value::Object(m) => {
                let name = m
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| {
                        DeError::custom(
                            "component spec object needs a string \"name\" field".to_string(),
                        )
                    })?
                    .to_string();
                let params = m.get("params").cloned().unwrap_or(Value::Null);
                Ok(ComponentSpec { name, params })
            }
            other => Err(DeError::custom(format!(
                "expected a component name string or {{\"name\", \"params\"}} object, got {other:?}"
            ))),
        }
    }
}

/// A plugin factory: builds a `T` from the shared context and the
/// component's JSON params block.
type Factory<T, C> = Arc<dyn Fn(&C, &Value) -> Result<T, EntkError> + Send + Sync>;

/// A name → factory table for one extension point. `T` is what a factory
/// produces; `C` is the build context threaded through (seed, paths — `()`
/// when none is needed).
pub struct Registry<T, C = ()> {
    kind: &'static str,
    factories: BTreeMap<String, Factory<T, C>>,
}

impl<T, C> Registry<T, C> {
    /// An empty registry; `kind` names the extension point in error
    /// messages ("scheduler", "admission policy", …).
    pub fn new(kind: &'static str) -> Self {
        Registry {
            kind,
            factories: BTreeMap::new(),
        }
    }

    /// Registers `factory` under `name`, replacing any previous entry.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(&C, &Value) -> Result<T, EntkError> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// What this registry dispenses (for error messages).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Builds the component a spec names, passing its declared params to
    /// the factory. Unknown names fail with a [`EntkError::Usage`] listing
    /// every registered alternative.
    pub fn build(&self, spec: &ComponentSpec, ctx: &C) -> Result<T, EntkError> {
        match self.factories.get(&spec.name) {
            Some(factory) => factory(ctx, &spec.params),
            None => Err(self.unknown(&spec.name)),
        }
    }

    /// Builds a component by bare name with default parameters.
    pub fn build_named(&self, name: &str, ctx: &C) -> Result<T, EntkError> {
        self.build(&ComponentSpec::named(name), ctx)
    }

    /// The typed unknown-name error: lists the registered alternatives.
    pub fn unknown(&self, name: &str) -> EntkError {
        EntkError::Usage(format!(
            "unknown {} {:?} (registered: {})",
            self.kind,
            name,
            self.names().join(", ")
        ))
    }
}

impl<T, C> std::fmt::Debug for Registry<T, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("kind", &self.kind)
            .field("names", &self.names())
            .finish()
    }
}

/// Parses a plugin's typed params struct from the declared JSON, treating
/// `Null` (no `"params"` key) as "all defaults". Factories call this so a
/// malformed params block fails as a [`EntkError::Usage`] naming the
/// component, not as a panic deep in deserialization.
pub fn params_or_default<P: Deserialize + Default>(
    kind: &str,
    name: &str,
    params: &Value,
) -> Result<P, EntkError> {
    if params.is_null() {
        return Ok(P::default());
    }
    serde_json::from_value(params)
        .map_err(|e| EntkError::Usage(format!("bad params for {kind} {name:?}: {e}")))
}

// ------------------------------------------------------- batch schedulers

/// Params of the `fair_share` scheduler plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FairShareParams {
    /// Usage half-life in seconds.
    #[serde(default = "default_half_life")]
    half_life_secs: f64,
}

fn default_half_life() -> f64 {
    // Matches the pre-registry hard-wired FairShareScheduler::new(3600.0),
    // keeping golden traces for `"batch_policy": "fair_share"` byte-identical.
    3600.0
}

impl Default for FairShareParams {
    fn default() -> Self {
        FairShareParams {
            half_life_secs: default_half_life(),
        }
    }
}

/// Params of the `priority_aging` scheduler plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PriorityAgingParams {
    /// Priority gained per waiting second.
    #[serde(default = "default_aging_rate")]
    aging_rate: f64,
    /// Priority subtracted per requested core.
    #[serde(default = "default_core_penalty")]
    core_penalty: f64,
}

fn default_aging_rate() -> f64 {
    1.0
}

fn default_core_penalty() -> f64 {
    4.0
}

impl Default for PriorityAgingParams {
    fn default() -> Self {
        PriorityAgingParams {
            aging_rate: default_aging_rate(),
            core_penalty: default_core_penalty(),
        }
    }
}

/// The batch-scheduler registry: every named policy a spec file can put
/// behind `"scheduler"` / `"batch_policy"`. Factories return a
/// [`SchedulerFactory`] rather than a built scheduler because federated
/// sessions construct one fresh (stateful) instance per member cluster.
pub fn schedulers() -> &'static Registry<SchedulerFactory> {
    static TABLE: OnceLock<Registry<SchedulerFactory>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut r = Registry::new("scheduler");
        r.register("fifo", |_: &(), params| {
            require_no_params("scheduler", "fifo", params)?;
            Ok(SchedulerFactory::new("fifo", || Box::new(FifoScheduler)))
        });
        r.register("backfill", |_: &(), params| {
            require_no_params("scheduler", "backfill", params)?;
            Ok(SchedulerFactory::new("backfill", || {
                Box::new(EasyBackfillScheduler)
            }))
        });
        r.register("fair_share", |_: &(), params| {
            let p: FairShareParams = params_or_default("scheduler", "fair_share", params)?;
            Ok(SchedulerFactory::new("fair_share", move || {
                Box::new(FairShareScheduler::new(p.half_life_secs))
            }))
        });
        r.register("priority_aging", |_: &(), params| {
            let p: PriorityAgingParams = params_or_default("scheduler", "priority_aging", params)?;
            Ok(SchedulerFactory::new("priority_aging", move || {
                Box::new(PriorityAgingScheduler::new(p.aging_rate, p.core_penalty))
            }))
        });
        r.register("sjf", |_: &(), params| {
            require_no_params("scheduler", "sjf", params)?;
            Ok(SchedulerFactory::new("sjf", || Box::new(SjfScheduler)))
        });
        r.register("round_robin", |_: &(), params| {
            require_no_params("scheduler", "round_robin", params)?;
            Ok(SchedulerFactory::new("round_robin", || {
                Box::<RoundRobinScheduler>::default()
            }))
        });
        r
    })
}

/// Parses a plugin's typed params struct, rejecting a missing params block
/// (for plugins with no sensible defaults, e.g. a sink that needs a path).
pub fn params_required<P: Deserialize>(
    kind: &str,
    name: &str,
    params: &Value,
) -> Result<P, EntkError> {
    if params.is_null() {
        return Err(EntkError::Usage(format!("{kind} {name:?} requires params")));
    }
    serde_json::from_value(params)
        .map_err(|e| EntkError::Usage(format!("bad params for {kind} {name:?}: {e}")))
}

/// Rejects a non-null params block on a parameterless plugin (a typo like
/// `{"name": "fifo", "params": {...}}` should fail loudly, not silently
/// ignore the params).
pub fn require_no_params(kind: &str, name: &str, params: &Value) -> Result<(), EntkError> {
    if params.is_null() {
        Ok(())
    } else {
        Err(EntkError::Usage(format!("{kind} {name:?} takes no params")))
    }
}

// ------------------------------------------------------------ fault grids

/// Params of the `retries` fault plugin.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RetryParams {
    /// Resubmissions before a task failure is reported to the pattern.
    #[serde(default = "default_max_retries")]
    max_retries: u32,
    /// Kill-replace watchdog in seconds; `0` disables it.
    #[serde(default)]
    task_timeout_secs: f64,
    /// Exponential-backoff base in seconds; `0` disables backoff.
    #[serde(default)]
    backoff_base_secs: f64,
    /// Finish with a partial report if every pilot dies mid-run.
    #[serde(default)]
    graceful: bool,
}

fn default_max_retries() -> u32 {
    3
}

impl Default for RetryParams {
    fn default() -> Self {
        RetryParams {
            max_retries: default_max_retries(),
            task_timeout_secs: 0.0,
            backoff_base_secs: 0.0,
            graceful: false,
        }
    }
}

/// The fault-grid registry: named session-level fault-tolerance policies
/// ([`FaultConfig`]).
pub fn faults() -> &'static Registry<FaultConfig> {
    static TABLE: OnceLock<Registry<FaultConfig>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut r = Registry::new("fault grid");
        r.register("none", |_: &(), params| {
            require_no_params("fault grid", "none", params)?;
            Ok(FaultConfig::default())
        });
        r.register("retries", |_: &(), params| {
            let p: RetryParams = params_or_default("fault grid", "retries", params)?;
            let mut fault = FaultConfig::retries(p.max_retries);
            if p.task_timeout_secs > 0.0 {
                fault = fault.with_timeout(SimDuration::from_secs_f64(p.task_timeout_secs));
            }
            if p.backoff_base_secs > 0.0 {
                fault = fault.with_backoff(crate::fault::BackoffPolicy::exponential(
                    p.backoff_base_secs,
                ));
            }
            if p.graceful {
                fault = fault.graceful();
            }
            Ok(fault)
        });
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_cluster::{PendingView, RunningView};
    use entk_sim::SimTime;

    #[test]
    fn component_spec_round_trips_both_shapes() {
        let bare: ComponentSpec = serde_json::from_str("\"fifo\"").unwrap();
        assert_eq!(bare, ComponentSpec::named("fifo"));
        assert_eq!(serde_json::to_string(&bare).unwrap(), "\"fifo\"");

        let full: ComponentSpec =
            serde_json::from_str(r#"{"name": "fair_share", "params": {"half_life_secs": 600.0}}"#)
                .unwrap();
        assert_eq!(full.name, "fair_share");
        assert_eq!(full.params["half_life_secs"].as_f64(), Some(600.0));
        let text = serde_json::to_string(&full).unwrap();
        let back: ComponentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, full);

        assert!(serde_json::from_str::<ComponentSpec>("17").is_err());
        assert!(serde_json::from_str::<ComponentSpec>(r#"{"params": {}}"#).is_err());
    }

    #[test]
    fn unknown_name_lists_registered_alternatives() {
        let err = schedulers()
            .build_named("priority", &())
            .expect_err("unregistered");
        let EntkError::Usage(msg) = &err else {
            panic!("expected Usage, got {err:?}");
        };
        assert!(msg.contains("unknown scheduler \"priority\""), "{msg}");
        for name in [
            "backfill",
            "fair_share",
            "fifo",
            "priority_aging",
            "round_robin",
            "sjf",
        ] {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn every_registered_scheduler_builds_and_selects() {
        let queue = [PendingView {
            cores: 2,
            walltime: SimDuration::from_secs(60),
            project: "p".into(),
            submitted: SimTime::ZERO,
        }];
        let running: [RunningView; 0] = [];
        for name in schedulers().names() {
            let factory = schedulers().build_named(name, &()).expect(name);
            let mut sched = factory.build();
            let picked = sched.select(&queue, 4, SimTime::ZERO, &running);
            assert_eq!(picked, vec![0], "{name} must start the lone fitting job");
        }
    }

    #[test]
    fn scheduler_params_are_typed_and_validated() {
        let spec = ComponentSpec::with_params(
            "priority_aging",
            serde_json::from_str(r#"{"aging_rate": 2.0, "core_penalty": 0.0}"#).unwrap(),
        );
        schedulers().build(&spec, &()).unwrap();

        let bad = ComponentSpec::with_params(
            "fair_share",
            serde_json::from_str(r#"{"half_life_secs": "soon"}"#).unwrap(),
        );
        let err = schedulers().build(&bad, &()).expect_err("bad params");
        assert!(matches!(err, EntkError::Usage(_)), "{err:?}");

        let stray = ComponentSpec::with_params("fifo", serde_json::from_str("{}").unwrap());
        let err = schedulers().build(&stray, &()).expect_err("no params");
        assert!(err.to_string().contains("takes no params"), "{err}");
    }

    #[test]
    fn fault_grid_builds_typed_configs() {
        assert_eq!(
            faults().build_named("none", &()).unwrap(),
            FaultConfig::default()
        );
        let spec = ComponentSpec::with_params(
            "retries",
            serde_json::from_str(
                r#"{"max_retries": 2, "task_timeout_secs": 30.0, "graceful": true}"#,
            )
            .unwrap(),
        );
        let fault = faults().build(&spec, &()).unwrap();
        assert_eq!(fault.max_retries, 2);
        assert_eq!(fault.task_timeout, Some(SimDuration::from_secs(30)));
        assert!(fault.graceful);
        assert!(faults().build_named("chaos", &()).is_err());
    }

    #[test]
    fn fair_share_default_matches_legacy_half_life() {
        // The hard-wired pre-registry constant; golden traces depend on it.
        assert_eq!(FairShareParams::default().half_life_secs, 3600.0);
    }
}
