//! The backend seam of the execution layer (paper §III-B component 4).
//!
//! "The execution plugin binds the kernel plugins and the execution
//! pattern, and translates the tasks into executable units … forwarded to
//! the underlying runtime system, thus decoupling execution from the
//! expression of the application."
//!
//! Everything backend-*independent* — pattern driving, task tables, the
//! retry/backoff/kill-replace fault policy, graceful degradation, telemetry
//! subjects, and `TaskRecord`/`OverheadBreakdown` assembly — lives once in
//! [`crate::session::SessionEngine`]. Everything backend-*specific* — how
//! units actually run, what the clock is, when completions arrive — lives
//! behind the [`ExecutionBackend`] trait defined here. Three backends
//! implement it:
//!
//! | backend     | clock        | units execute as                          |
//! |-------------|--------------|-------------------------------------------|
//! | simulated   | virtual      | cost-modeled durations on a simulated machine |
//! | local       | wall clock   | real kernel closures on host threads       |
//! | federated   | virtual      | cost-modeled durations late-bound across several simulated clusters |
//!
//! The trait is deliberately synchronous and single-threaded: the session
//! engine drives it with a poll loop, and each [`ExecutionBackend::poll`]
//! call surfaces at most one timestep's worth of [`BackendEvent`]s. Unit
//! submission is split into a *prepare* phase (validate and bind each task,
//! reporting per-task rejections) and a *commit* phase (hand the accepted
//! batch to the runtime) so the session can account rejected tasks before
//! the runtime's own submission side effects land in the shared trace.

use entk_kernels::KernelCall;
use entk_sim::{SimDuration, SimRng, SimTime};
use serde_json::Value;

/// Sentinel batch id for retry resubmissions in scheduled batches. Retries
/// carry no pattern overhead, so trace derivations skip this batch and the
/// session records no `tasks_submitted` event for it.
pub const RETRY_BATCH: u64 = u64::MAX;

/// One task's submission request: what the session asks a backend to run.
#[derive(Debug, Clone)]
pub struct UnitSpec {
    /// Session-wide task uid.
    pub uid: u64,
    /// Stage label (becomes part of the unit name).
    pub stage: String,
    /// The kernel binding to execute.
    pub kernel: KernelCall,
}

/// A state change surfaced by [`ExecutionBackend::poll`].
///
/// Unit events carry the backend's opaque unit `key` (assigned at commit
/// time); batch/timeout/failure events echo session-side ids the session
/// previously scheduled through the backend's clock.
#[derive(Debug, Clone)]
pub enum BackendEvent {
    /// A unit began executing (maps to the task attempt's `exec_start`).
    UnitStarted {
        /// Backend unit key.
        key: u64,
        /// When execution began.
        time: SimTime,
    },
    /// A unit finished successfully; the session completes the task via
    /// [`ExecutionBackend::complete_unit`].
    UnitDone {
        /// Backend unit key.
        key: u64,
        /// Completion time.
        time: SimTime,
    },
    /// A unit failed or was cancelled; the session applies the fault policy.
    UnitFailed {
        /// Backend unit key.
        key: u64,
        /// When the failure was observed (the current step time).
        time: SimTime,
        /// Failure reason.
        reason: String,
    },
    /// A batch scheduled via [`ExecutionBackend::schedule_batch`] became
    /// due: the pattern overhead (or retry backoff) was paid.
    BatchReady {
        /// Spawn-batch id, or [`RETRY_BATCH`] for retry resubmissions.
        batch: u64,
        /// Task uids to submit.
        uids: Vec<u64>,
    },
    /// A kill-replace watchdog armed via [`ExecutionBackend::arm_timeout`]
    /// fired.
    TaskTimeout {
        /// The watched task.
        uid: u64,
    },
    /// A deferred kernel-binding failure scheduled via
    /// [`ExecutionBackend::schedule_deferred_failure`] became deliverable.
    DeferredFailure {
        /// The failed task.
        uid: u64,
    },
    /// A pilot lost cores but keeps running on what remains. Informational:
    /// the units dropped by the shrink arrive as [`BackendEvent::UnitFailed`].
    CapacityShrunk {
        /// Cores lost.
        lost_cores: usize,
        /// Cores still held.
        remaining_cores: usize,
    },
    /// The clock mark scheduled via
    /// [`ExecutionBackend::schedule_clock_mark`] was reached (teardown
    /// accounting).
    ClockMark,
}

/// Result of one [`ExecutionBackend::poll`] call.
#[derive(Debug)]
pub enum Poll {
    /// One timestep advanced; zero or more state changes surfaced.
    Events(Vec<BackendEvent>),
    /// Nothing left to process: the backend cannot make further progress.
    Drained,
}

/// Backend-side figures folded into the session's `ExecutionReport`.
#[derive(Debug, Clone)]
pub struct BackendStats {
    /// Resource label (e.g. `"xsede.comet"`, `"fork://localhost"`,
    /// `"federated:…"`).
    pub resource: String,
    /// Total cores behind the backend.
    pub cores: usize,
    /// Pilot submission overhead (first pilot: submitted → launched).
    pub runtime_pilot: SimDuration,
    /// Batch-queue wait (first pilot: launched → active).
    pub resource_wait: SimDuration,
    /// Discrete events processed (0 for real-time backends).
    pub events: u64,
}

/// What the backend knows about a finished unit, resolved at completion.
#[derive(Debug)]
pub struct UnitOutcome {
    /// When execution started, per the backend's profiler.
    pub exec_start: Option<SimTime>,
    /// When execution stopped.
    pub exec_stop: Option<SimTime>,
    /// Semantic result: kernel output on success, failure reason otherwise.
    pub result: Result<Value, String>,
}

/// The resource-backend interface the [`crate::session::SessionEngine`]
/// drives.
///
/// A backend owns the clock, the runtime(s) executing units, and the
/// mapping from committed units to opaque `u64` keys. It never touches
/// task records, retry policy, or the pattern — those are session
/// concerns. See the module docs for the poll/prepare/commit protocol.
pub trait ExecutionBackend {
    /// Current time on the backend's clock (virtual or wall).
    fn now(&self) -> SimTime;

    /// True when the backend models time (virtual clock, modeled overheads
    /// and backoff delays). Real-time backends return false and the session
    /// skips overhead sampling and backoff waits entirely.
    fn virtual_time(&self) -> bool;

    /// Starts the session: after `boot_delay` (the toolkit's init +
    /// resource-request overhead) the backend boots its resource(s) and
    /// submits pilots. Real-time backends reset their clock here.
    fn begin_session(&mut self, boot_delay: SimDuration);

    /// True when the allocation is usable per the backend's wait policy.
    fn allocation_ready(&self) -> bool;

    /// True when every pilot has failed or been cancelled: no capacity is
    /// left and none will come back.
    fn capacity_lost(&self) -> bool;

    /// True when every pilot reached a terminal state (shutdown complete).
    fn pilots_terminal(&self) -> bool;

    /// Advances the backend by one timestep and surfaces what changed.
    fn poll(&mut self) -> Poll;

    /// Phase one of submission: validate and bind each spec, drawing cost
    /// samples from `rng` in spec order. Returns one entry per spec —
    /// `None` when accepted (and staged for [`ExecutionBackend::commit_batch`]),
    /// or `Some(reason)` when rejected. Staged units replace any prior
    /// uncommitted batch.
    fn prepare_batch(&mut self, specs: &[UnitSpec], rng: &mut SimRng) -> Vec<Option<String>>;

    /// Phase two: hands the staged batch to the runtime(s). Returns
    /// `(uid, unit key)` pairs in the original spec order.
    fn commit_batch(&mut self) -> Vec<(u64, u64)>;

    /// Arms the kill-replace watchdog for a task. Backends that cannot
    /// interrupt running work treat this as a no-op.
    fn arm_timeout(&mut self, uid: u64, timeout: SimDuration);

    /// Cancels a unit if it is still running. Returns false when the unit
    /// is already terminal (or cannot be cancelled), in which case the
    /// session lets the normal completion path handle it.
    fn cancel_running_unit(&mut self, key: u64) -> bool;

    /// Resolves a finished unit: execution timestamps plus the semantic
    /// result. Simulated backends model-execute the kernel here (drawing
    /// from `rng`); real backends return the captured output.
    fn complete_unit(&mut self, key: u64, kernel: &KernelCall, rng: &mut SimRng) -> UnitOutcome;

    /// Schedules a [`BackendEvent::BatchReady`] after `delay` (pattern
    /// overhead, or retry backoff for [`RETRY_BATCH`]). Real-time backends
    /// deliver it at the next poll.
    fn schedule_batch(&mut self, delay: SimDuration, batch: u64, uids: Vec<u64>);

    /// Schedules a [`BackendEvent::DeferredFailure`] for the next timestep,
    /// so the pattern learns about a kernel-binding failure in a clean
    /// processing pass.
    fn schedule_deferred_failure(&mut self, uid: u64);

    /// Begins graceful shutdown: finish all pilots.
    fn begin_shutdown(&mut self);

    /// Schedules a [`BackendEvent::ClockMark`] after `delay`, advancing the
    /// clock across the teardown overhead.
    fn schedule_clock_mark(&mut self, delay: SimDuration);

    /// Backend-side report figures.
    fn stats(&self) -> BackendStats;
}
