//! EnTK-level overhead model (paper Fig. 3's decomposition).
//!
//! The paper splits Ensemble-toolkit overhead into a **core overhead** —
//! initializing the toolkit, launching and cancelling resource requests —
//! that is constant per session, and a **pattern overhead** — creating
//! tasks and submitting them to the runtime — that grows with the number
//! of tasks. These distributions model the EnTK side; `entk-pilot`'s
//! [`entk_pilot::RuntimeOverheads`] models the runtime side.

use entk_sim::Dist;
use serde::{Deserialize, Serialize};

/// Delay model for the toolkit's own machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntkOverheads {
    /// Toolkit initialization (module loading, session setup).
    pub init: Dist,
    /// Assembling and issuing the resource request (before the pilot
    /// submission overhead paid inside the runtime).
    pub resource_request: Dist,
    /// Cancelling the resource allocation at teardown.
    pub teardown: Dist,
    /// Per-task creation cost when a pattern stage emits tasks.
    pub task_create_per_task: Dist,
    /// Fixed per-batch submission cost.
    pub task_submit_fixed: Dist,
}

impl EntkOverheads {
    /// Calibrated defaults: constant seconds-scale core costs, ~10 ms/task
    /// pattern costs — the magnitudes Fig. 3 reports.
    pub fn calibrated() -> Self {
        EntkOverheads {
            init: Dist::Normal { mean: 1.5, sd: 0.1 },
            resource_request: Dist::Normal { mean: 1.0, sd: 0.1 },
            teardown: Dist::Normal { mean: 1.2, sd: 0.1 },
            task_create_per_task: Dist::Normal {
                mean: 0.010,
                sd: 0.002,
            },
            task_submit_fixed: Dist::Normal {
                mean: 0.05,
                sd: 0.005,
            },
        }
    }

    /// All-zero overheads for ablations.
    pub fn zero() -> Self {
        EntkOverheads {
            init: Dist::ZERO,
            resource_request: Dist::ZERO,
            teardown: Dist::ZERO,
            task_create_per_task: Dist::ZERO,
            task_submit_fixed: Dist::ZERO,
        }
    }
}

impl Default for EntkOverheads {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_magnitudes() {
        let o = EntkOverheads::calibrated();
        assert!(o.init.mean() >= 1.0);
        assert!(o.task_create_per_task.mean() < 0.1);
    }

    #[test]
    fn zero_is_zero() {
        let o = EntkOverheads::zero();
        let mut rng = entk_sim::SimRng::seed_from_u64(1);
        assert_eq!(o.init.sample(&mut rng), 0.0);
        assert_eq!(o.task_create_per_task.sample(&mut rng), 0.0);
    }
}
