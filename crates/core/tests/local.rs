//! End-to-end tests of the local backend: same patterns and kernels, real
//! execution on host threads.

use entk_core::prelude::*;
use serde_json::json;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("entk-local-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn char_count_app_runs_for_real() {
    let dir = tmpdir("charcount");
    let n = 6;
    let dir_c = dir.clone();
    let mut pattern = EnsembleOfPipelines::new(n, 2, move |p, s| {
        let path = dir_c.join(format!("file-{p}.txt"));
        let path = path.to_str().unwrap();
        if s == 0 {
            KernelCall::new("misc.mkfile", json!({ "path": path, "bytes": 4096 }))
        } else {
            KernelCall::new("misc.ccount", json!({ "path": path }))
        }
    })
    .with_stage_labels(vec!["mkfile".into(), "ccount".into()]);

    let mut handle = ResourceHandle::local(4);
    handle.allocate().unwrap();
    let report = handle.run(&mut pattern).unwrap();
    handle.deallocate().unwrap();

    assert_eq!(report.task_count(), 2 * n);
    assert_eq!(report.failed_tasks, 0);
    // Files really exist with the right size.
    for p in 0..n {
        let meta = std::fs::metadata(dir.join(format!("file-{p}.txt"))).unwrap();
        assert_eq!(meta.len(), 4096);
    }
    // Real execution recorded nonzero durations.
    let s = report.stage_exec_summary("mkfile");
    assert_eq!(s.count(), n);
    assert!(s.mean() >= 0.0);
}

#[test]
fn real_md_sal_produces_analysis() {
    // One SAL iteration with tiny real MD + real CoCo.
    let n_sims = 3;
    let mut pattern = SimulationAnalysisLoop::new(
        1,
        n_sims,
        |_, i| {
            KernelCall::new(
                "md.amber",
                json!({ "n_atoms": 40, "steps": 60, "record_every": 20, "seed": i }),
            )
        },
        move |_, outs| {
            // Gather real frames from the simulation outputs.
            let mut frames: Vec<serde_json::Value> = Vec::new();
            for o in outs {
                if let Some(fs) = o["frames"].as_array() {
                    frames.extend(fs.iter().cloned());
                }
            }
            assert!(!frames.is_empty(), "simulations produced frames");
            vec![KernelCall::new(
                "ana.coco",
                json!({ "frames": frames, "n_new": 2 }),
            )]
        },
    );
    let mut handle = ResourceHandle::local(3);
    handle.allocate().unwrap();
    let report = handle.run(&mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(report.task_count(), n_sims + 1);
    assert_eq!(pattern.completed_iterations(), 1);
}

#[test]
fn real_remd_exchanges_real_energies() {
    let n = 4;
    let mut pattern = EnsembleExchange::new(
        n,
        2,
        TemperatureLadder::geometric(n, 0.6, 1.8),
        |r, c, t| {
            KernelCall::new(
                "md.amber",
                json!({
                    "n_atoms": 40, "steps": 40, "record_every": 40,
                    "temperature": t, "seed": (r * 13 + c) as u64,
                }),
            )
        },
    );
    let mut handle = ResourceHandle::local(4);
    handle.allocate().unwrap();
    let report = handle.run(&mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 0);
    let (_, attempted) = pattern.swap_stats();
    assert!(attempted > 0, "exchanges ran on real energies");
}

#[test]
fn local_failures_retry_then_report() {
    // ccount on a missing file always fails; with 2 retries it fails 3 times
    // then reaches the pattern.
    let mut pattern = BagOfTasks::new(2, |i| {
        if i == 0 {
            KernelCall::new("misc.ccount", json!({ "path": "/nonexistent/entk/x" }))
        } else {
            KernelCall::new("misc.stress", json!({ "iters": 1000u64 }))
        }
    });
    let mut handle =
        ResourceHandle::local_with(2, KernelRegistry::with_builtins(), FaultConfig::retries(2));
    handle.allocate().unwrap();
    let report = handle.run(&mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 1);
    assert_eq!(report.total_retries, 2);
}

#[test]
fn unknown_kernel_fails_cleanly_locally() {
    let mut pattern = BagOfTasks::new(1, |_| KernelCall::new("md.namd", json!({})));
    let mut handle = ResourceHandle::local(1);
    handle.allocate().unwrap();
    let report = handle.run(&mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 1);
}

#[test]
fn local_lifecycle_misuse() {
    let mut handle = ResourceHandle::local(1);
    let mut pattern = BagOfTasks::new(1, |_| KernelCall::new("misc.sleep", json!({"secs": 0.01})));
    assert!(handle.run(&mut pattern).is_err());
    handle.allocate().unwrap();
    assert!(handle.allocate().is_err());
}
