//! End-to-end tests of the simulated backend: EnTK → pilot runtime →
//! cluster, in virtual time.

use entk_core::prelude::*;
use entk_core::{EntkError, EntkOverheads};
use serde_json::json;

fn quiet_sim(seed: u64) -> SimulatedConfig {
    SimulatedConfig {
        seed,
        entk_overheads: EntkOverheads::zero(),
        runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
        ..Default::default()
    }
}

fn sleep_bag(n: usize, secs: f64) -> BagOfTasks {
    BagOfTasks::new(n, move |_| {
        KernelCall::new("misc.sleep", json!({ "secs": secs }))
    })
}

#[test]
fn bag_of_tasks_completes_with_correct_ttc_shape() {
    // 8 tasks of 10 s on 4 cores: two waves => exec time ≈ 20 s.
    let config = ResourceConfig::new("local", 4, SimDuration::from_secs(100_000));
    let mut pattern = sleep_bag(8, 10.0);
    let report = run_simulated(config, quiet_sim(1), &mut pattern).unwrap();
    assert_eq!(report.task_count(), 8);
    assert_eq!(report.failed_tasks, 0);
    let exec = report.exec_time().as_secs_f64();
    assert!((20.0..21.5).contains(&exec), "exec time {exec}");
    assert!(report.ttc.as_secs_f64() >= exec);
}

#[test]
fn char_count_pipeline_on_comet() {
    // The paper's Fig. 3 app: mkfile then ccount, tasks == cores == 24.
    let n = 24;
    let config = ResourceConfig::new("xsede.comet", n, SimDuration::from_secs(100_000));
    let mut pattern = EnsembleOfPipelines::new(n, 2, |_, s| {
        if s == 0 {
            KernelCall::new("misc.mkfile", json!({ "bytes": 1024 }))
        } else {
            KernelCall::new("misc.ccount", json!({ "bytes": 1024 }))
        }
    })
    .with_stage_labels(vec!["mkfile".into(), "ccount".into()]);
    let report = run_simulated(config, SimulatedConfig::default(), &mut pattern).unwrap();
    assert_eq!(report.task_count(), 2 * n);
    assert_eq!(report.failed_tasks, 0);
    // Both stages ran, each ≈1 s (fully concurrent), so stage times ≈ 1 s.
    let mk = report.stage_time("mkfile").as_secs_f64();
    let cc = report.stage_time("ccount").as_secs_f64();
    assert!((0.7..2.0).contains(&mk), "mkfile stage {mk}");
    assert!((0.7..2.0).contains(&cc), "ccount stage {cc}");
    // Overheads recorded: core constant parts and per-task pattern part.
    assert!(report.overheads.core.as_secs_f64() > 1.0);
    assert!(report.overheads.pattern.as_secs_f64() > 0.0);
    assert!(report.overheads.resource_wait.as_secs_f64() > 10.0); // job startup
}

#[test]
fn sal_with_md_and_coco_on_stampede() {
    let n_sims = 16;
    let iterations = 2;
    let config = ResourceConfig::new("xsede.stampede", n_sims, SimDuration::from_secs(1_000_000));
    let mut pattern = SimulationAnalysisLoop::new(
        iterations,
        n_sims,
        |_, i| {
            KernelCall::new(
                "md.amber",
                json!({ "steps": 300, "n_atoms": 2881, "seed": i }),
            )
        },
        move |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
    );
    let report = run_simulated(config, quiet_sim(2), &mut pattern).unwrap();
    assert_eq!(report.task_count(), iterations * (n_sims + 1));
    assert_eq!(report.failed_tasks, 0);
    assert!(report.stage_time("simulation") > SimDuration::ZERO);
    assert!(report.stage_time("analysis") > SimDuration::ZERO);
    assert_eq!(pattern.completed_iterations(), iterations);
}

#[test]
fn ensemble_exchange_on_supermic_swaps_replicas() {
    let n = 8;
    let cycles = 3;
    let config = ResourceConfig::new("lsu.supermic", n, SimDuration::from_secs(1_000_000));
    let mut pattern = EnsembleExchange::new(
        n,
        cycles,
        TemperatureLadder::geometric(n, 0.8, 2.0),
        |r, _c, t| {
            KernelCall::new(
                "md.amber",
                json!({ "steps": 300, "n_atoms": 500, "temperature": t, "seed": r }),
            )
        },
    );
    let report = run_simulated(config, quiet_sim(3), &mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(
        report
            .tasks
            .iter()
            .filter(|t| t.stage == "simulation")
            .count(),
        n * cycles
    );
    assert_eq!(
        report
            .tasks
            .iter()
            .filter(|t| t.stage == "exchange")
            .count(),
        cycles
    );
    let (_, attempted) = pattern.swap_stats();
    assert!(attempted > 0);
}

#[test]
fn identical_seeds_give_identical_reports() {
    let run = || {
        let config = ResourceConfig::new("xsede.comet", 16, SimDuration::from_secs(100_000));
        let mut pattern = sleep_bag(32, 5.0);
        run_simulated(
            config,
            SimulatedConfig {
                seed: 77,
                ..Default::default()
            },
            &mut pattern,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.ttc, b.ttc);
    assert_eq!(a.overheads.pattern, b.overheads.pattern);
    let starts = |r: &ExecutionReport| r.tasks.iter().map(|t| t.exec_start).collect::<Vec<_>>();
    assert_eq!(starts(&a), starts(&b));
}

#[test]
fn different_seeds_perturb_overheads() {
    let run = |seed| {
        let config = ResourceConfig::new("xsede.comet", 16, SimDuration::from_secs(100_000));
        let mut pattern = sleep_bag(32, 5.0);
        run_simulated(
            config,
            SimulatedConfig {
                seed,
                ..Default::default()
            },
            &mut pattern,
        )
        .unwrap()
    };
    assert_ne!(run(1).ttc, run(2).ttc);
}

#[test]
fn failure_injection_with_retries_recovers() {
    let config = ResourceConfig::new("local", 8, SimDuration::from_secs(1_000_000));
    let sim = SimulatedConfig {
        seed: 5,
        unit_failure_rate: 0.3,
        fault: entk_core::FaultConfig::retries(10),
        entk_overheads: EntkOverheads::zero(),
        runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
        ..Default::default()
    };
    let mut pattern = sleep_bag(30, 1.0);
    let report = run_simulated(config, sim, &mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 0, "all tasks recovered via retry");
    assert!(report.total_retries > 0, "some retries happened");
}

#[test]
fn failure_without_retries_reaches_pattern() {
    let config = ResourceConfig::new("local", 8, SimDuration::from_secs(1_000_000));
    let sim = SimulatedConfig {
        seed: 6,
        unit_failure_rate: 0.5,
        fault: entk_core::FaultConfig::default(),
        entk_overheads: EntkOverheads::zero(),
        runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
        ..Default::default()
    };
    let mut pattern = sleep_bag(40, 1.0);
    let report = run_simulated(config, sim, &mut pattern).unwrap();
    assert!(report.failed_tasks > 0);
    assert!(report.failed_tasks < 40, "some tasks still succeed");
    assert_eq!(report.total_retries, 0);
}

#[test]
fn kill_replace_times_out_stragglers() {
    let config = ResourceConfig::new("local", 4, SimDuration::from_secs(1_000_000));
    let sim = SimulatedConfig {
        seed: 7,
        fault: entk_core::FaultConfig::retries(1).with_timeout(SimDuration::from_secs(10)),
        entk_overheads: EntkOverheads::zero(),
        runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
        ..Default::default()
    };
    // One task runs 1000 s: killed at 10 s, retried once, killed again, fails.
    let mut pattern = sleep_bag(1, 1000.0);
    let report = run_simulated(config, sim, &mut pattern).unwrap();
    assert_eq!(report.failed_tasks, 1);
    assert_eq!(report.total_retries, 1);
    assert!(
        report.ttc.as_secs_f64() < 100.0,
        "kill-replace bounded TTC at {}",
        report.ttc
    );
}

#[test]
fn unknown_resource_is_rejected() {
    let config = ResourceConfig::new("xsede.frontera", 8, SimDuration::from_secs(100));
    let err = ResourceHandle::simulated(config, SimulatedConfig::default()).err();
    assert!(matches!(err, Some(EntkError::Resource(_))));
}

#[test]
fn oversized_request_is_rejected() {
    let config = ResourceConfig::new("lsu.supermic", 1_000_000, SimDuration::from_secs(100));
    assert!(ResourceHandle::simulated(config, SimulatedConfig::default()).is_err());
}

#[test]
fn lifecycle_misuse_is_reported() {
    let config = ResourceConfig::new("local", 4, SimDuration::from_secs(100));
    let mut handle = ResourceHandle::simulated(config, quiet_sim(1)).unwrap();
    let mut pattern = sleep_bag(1, 1.0);
    assert!(matches!(handle.run(&mut pattern), Err(EntkError::Usage(_))));
    handle.allocate().unwrap();
    assert!(matches!(handle.allocate(), Err(EntkError::Usage(_))));
}

#[test]
fn multiple_patterns_share_one_allocation() {
    let config = ResourceConfig::new("local", 8, SimDuration::from_secs(1_000_000));
    let mut handle = ResourceHandle::simulated(config, quiet_sim(9)).unwrap();
    handle.allocate().unwrap();
    let mut first = sleep_bag(8, 2.0);
    let r1 = handle.run(&mut first).unwrap();
    let mut second = sleep_bag(8, 2.0);
    let r2 = handle.run(&mut second).unwrap();
    let session = handle.deallocate().unwrap();
    assert!(r2.ttc > r1.ttc, "virtual clock advances across runs");
    assert_eq!(session.task_count(), 16);
}

#[test]
fn pilot_walltime_expiry_fails_the_run() {
    // Pilot wall time shorter than the workload: run() must error.
    let config = ResourceConfig::new("local", 2, SimDuration::from_secs(30));
    let mut handle = ResourceHandle::simulated(config, quiet_sim(4)).unwrap();
    handle.allocate().unwrap();
    let mut pattern = sleep_bag(10, 100.0);
    let err = handle.run(&mut pattern);
    assert!(matches!(err, Err(EntkError::Runtime(_))), "{err:?}");
}

#[test]
fn mpi_tasks_occupy_multiple_cores() {
    // Two 4-core MPI sleeps on 4 cores must serialize.
    let config = ResourceConfig::new("local", 4, SimDuration::from_secs(100_000));
    let mut pattern = BagOfTasks::new(2, |_| {
        KernelCall::new("misc.sleep", json!({ "secs": 10.0 })).with_cores(4)
    });
    let report = run_simulated(config, quiet_sim(8), &mut pattern).unwrap();
    let exec = report.exec_time().as_secs_f64();
    assert!(exec >= 20.0, "serialized MPI tasks, exec {exec}");
}

#[test]
fn pattern_overhead_scales_with_task_count() {
    let run = |n: usize| {
        let config = ResourceConfig::new("xsede.comet", 64, SimDuration::from_secs(1_000_000));
        let mut pattern = sleep_bag(n, 1.0);
        run_simulated(
            config,
            SimulatedConfig {
                seed: 11,
                ..Default::default()
            },
            &mut pattern,
        )
        .unwrap()
    };
    let small = run(16).overheads.pattern.as_secs_f64();
    let large = run(256).overheads.pattern.as_secs_f64();
    assert!(
        large > 4.0 * small,
        "pattern overhead ∝ tasks: {small} vs {large}"
    );
}

#[test]
fn core_overhead_is_constant_in_task_count() {
    let run = |n: usize| {
        let config = ResourceConfig::new("xsede.comet", 64, SimDuration::from_secs(1_000_000));
        let mut pattern = sleep_bag(n, 1.0);
        run_simulated(
            config,
            SimulatedConfig {
                seed: 12,
                ..Default::default()
            },
            &mut pattern,
        )
        .unwrap()
    };
    let small = run(16).overheads.core.as_secs_f64();
    let large = run(256).overheads.core.as_secs_f64();
    assert!(
        (small - large).abs() < 0.25 * small.max(large),
        "core overhead roughly constant: {small} vs {large}"
    );
}

#[test]
fn multi_pilot_strategy_completes_workload() {
    let config = ResourceConfig::new("xsede.comet", 64, SimDuration::from_secs(1_000_000));
    let sim = SimulatedConfig {
        seed: 21,
        pilot_strategy: entk_core::PilotStrategy {
            count: 4,
            wait_all: true,
        },
        ..Default::default()
    };
    let mut pattern = sleep_bag(128, 5.0);
    let report = run_simulated(config, sim, &mut pattern).unwrap();
    assert_eq!(report.task_count(), 128);
    assert_eq!(report.failed_tasks, 0);
}

#[test]
fn split_pilots_beat_one_big_pilot_under_size_dependent_queue_wait() {
    // When queue wait grows with allocation size (shared batch queues),
    // splitting the request clears the queue faster — the "execution
    // strategy" rationale of paper §V / Ref.\[23\].
    let mut platform = entk_cluster::PlatformSpec::comet();
    platform.queue_wait_per_core = 2.0; // 2 s per requested core
    let run = |strategy: entk_core::PilotStrategy| {
        let config = ResourceConfig::new("xsede.comet", 64, SimDuration::from_secs(1_000_000));
        let sim = SimulatedConfig {
            seed: 22,
            platform: Some(platform.clone()),
            pilot_strategy: strategy,
            ..Default::default()
        };
        let mut pattern = sleep_bag(64, 30.0);
        run_simulated(config, sim, &mut pattern)
            .unwrap()
            .ttc
            .as_secs_f64()
    };
    let single = run(entk_core::PilotStrategy::single());
    let split = run(entk_core::PilotStrategy::split(8));
    assert!(
        split < single,
        "8 small pilots (late binding) should beat one big pilot: {split} vs {single}"
    );
}

#[test]
fn background_load_inflates_resource_wait() {
    use entk_cluster::cluster::BackgroundLoad;
    use entk_sim::Dist;
    let run = |load: Option<BackgroundLoad>| {
        let mut platform = entk_cluster::PlatformSpec::local(2, 16); // 32 cores
        platform.job_startup = Dist::Constant(1.0);
        let config = ResourceConfig::new("local", 24, SimDuration::from_secs(1_000_000));
        let sim = SimulatedConfig {
            seed: 31,
            platform: Some(platform),
            background_load: load,
            entk_overheads: EntkOverheads::zero(),
            runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
            ..Default::default()
        };
        let mut pattern = sleep_bag(24, 5.0);
        run_simulated(config, sim, &mut pattern)
            .unwrap()
            .overheads
            .resource_wait
            .as_secs_f64()
    };
    let clean = run(None);
    let contended = run(Some(BackgroundLoad {
        // Two 24-core 120 s competitors already queued when the pilot is
        // submitted: it reliably waits behind them.
        mean_interarrival_secs: 1_000.0,
        cores: Dist::Constant(24.0),
        runtime: Dist::Constant(120.0),
        initial_jobs: 2,
    }));
    assert!(
        contended > clean + 30.0,
        "contention should delay pilot activation: {clean} vs {contended}"
    );
}

#[test]
fn adaptive_binding_widens_mpi_tasks() {
    // 4 MD tasks on a 64-core pilot: static binding runs them on 1 core
    // each; adaptive binding widens each to 16 cores, cutting exec time.
    let run = |adaptive: bool| {
        let config = ResourceConfig::new("xsede.stampede", 64, SimDuration::from_secs(1_000_000));
        let mut handle = ResourceHandle::simulated(config, quiet_sim(41)).unwrap();
        if adaptive {
            handle.set_binding_policy(Box::new(entk_core::AdaptiveMpiBinding {
                max_cores_per_task: 64,
            }));
        }
        handle.allocate().unwrap();
        let mut pattern = BagOfTasks::new(4, |i| {
            KernelCall::new(
                "md.amber",
                json!({ "steps": 3000, "n_atoms": 2881, "seed": i }),
            )
        });
        let report = handle.run(&mut pattern).unwrap();
        handle.deallocate().unwrap();
        report.exec_time().as_secs_f64()
    };
    let static_t = run(false);
    let adaptive_t = run(true);
    assert!(
        adaptive_t < static_t / 4.0,
        "adaptive binding should exploit idle cores: static {static_t}, adaptive {adaptive_t}"
    );
}

#[test]
fn backfill_beats_fifo_behind_a_blocked_head() {
    // Split-pilot strategy + a huge background head job: with FIFO the
    // small pilots wait behind it; with EASY backfill they jump it.
    use entk_cluster::cluster::BackgroundLoad;
    use entk_sim::Dist;
    let run = |policy: entk_pilot::BatchPolicy| {
        let mut platform = entk_cluster::PlatformSpec::local(4, 8); // 32 cores
        platform.job_startup = Dist::Constant(1.0);
        let config = ResourceConfig::new("local", 8, SimDuration::from_secs(1_000_000));
        let sim = SimulatedConfig {
            seed: 51,
            platform: Some(platform),
            batch_policy: policy,
            // A 24-core, 500 s competitor is already queued: it starts
            // immediately and a second one queues as the blocked head.
            background_load: Some(BackgroundLoad {
                mean_interarrival_secs: 10_000.0,
                cores: Dist::Constant(24.0),
                runtime: Dist::Constant(500.0),
                initial_jobs: 2,
            }),
            entk_overheads: EntkOverheads::zero(),
            runtime_overheads: entk_pilot::RuntimeOverheads::zero(),
            ..Default::default()
        };
        let mut pattern = sleep_bag(8, 5.0);
        run_simulated(config, sim, &mut pattern)
            .unwrap()
            .ttc
            .as_secs_f64()
    };
    let fifo = run(entk_pilot::BatchPolicy::Fifo);
    let backfill = run(entk_pilot::BatchPolicy::Backfill);
    assert!(
        backfill + 100.0 < fifo,
        "backfill should jump the blocked 24-core head: fifo {fifo}, backfill {backfill}"
    );
}
