//! Serial-vs-parallel drive equivalence for the federated backend.
//!
//! The conservative-lookahead merge promises that `DriveMode::Serial` and
//! `DriveMode::Parallel` execute the *identical* windowed schedule — same
//! chunks, same merge order — so the session report and the full JSONL
//! trace must be byte-identical between the two. This suite checks that
//! promise across randomized member counts, seeds, fault grids, and
//! pattern shapes, plus targeted regressions for the stale-horizon edge
//! (a member event landing exactly on a window boundary).

use entk_core::prelude::*;
use entk_core::resource::run_federated_traced;
use entk_core::trace_check::cross_check;
use entk_pilot::RuntimeOverheads;
use entk_sim::Dist;
use proptest::prelude::*;
use serde_json::json;

/// A `members`-way federation alternating the two calibrated platforms,
/// with full telemetry so traces can be compared byte-for-byte.
fn fed_config(members: usize, seed: u64, drive: DriveMode) -> FederatedConfig {
    let clusters = (0..members)
        .map(|i| {
            let resource = if i % 2 == 0 {
                "xsede.comet"
            } else {
                "xsede.stampede"
            };
            ClusterSpec::new(resource, 4, SimDuration::from_secs(200_000))
        })
        .collect();
    FederatedConfig {
        seed,
        clusters,
        drive,
        ..FederatedConfig::default()
    }
}

/// The pattern shapes the equivalence is checked over.
#[derive(Clone, Copy, Debug)]
enum Shape {
    Eop { pipelines: usize, stages: usize },
    Sal { sims: usize },
}

fn build_pattern(shape: Shape) -> Box<dyn ExecutionPattern> {
    match shape {
        Shape::Eop { pipelines, stages } => {
            Box::new(EnsembleOfPipelines::new(pipelines, stages, |p, s| {
                KernelCall::new(
                    "misc.stress",
                    json!({ "iters": 300u64 + (p * 7 + s) as u64 }),
                )
            }))
        }
        Shape::Sal { sims } => Box::new(SimulationAnalysisLoop::new(
            1,
            sims,
            |_, i| KernelCall::new("misc.stress", json!({ "iters": 400u64 + i as u64 })),
            |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
        )),
    }
}

/// Runs one session and returns `(report-json, trace-jsonl)` — the two
/// deterministic fingerprints the drive modes must agree on.
fn run_fingerprint(config: FederatedConfig, shape: Shape) -> (String, String) {
    let mut pattern = build_pattern(shape);
    let (report, telemetry) =
        run_federated_traced(config, pattern.as_mut()).expect("federated run");
    let report_json = serde_json::to_string(&report).expect("serialize report");
    (report_json, telemetry.tracer.to_jsonl())
}

/// Asserts both drive modes produce byte-identical reports and traces for
/// the given base config, and returns the shared fingerprint.
fn assert_drive_equivalence(mut config: FederatedConfig, shape: Shape) -> (String, String) {
    config.drive = DriveMode::Serial;
    let serial = run_fingerprint(config.clone(), shape);
    config.drive = DriveMode::Parallel;
    let parallel = run_fingerprint(config, shape);
    assert!(
        serial.1.lines().count() > 10,
        "trace too small to be a meaningful comparison"
    );
    assert_eq!(
        serial.0, parallel.0,
        "serial and parallel drives disagree on the session report"
    );
    assert_eq!(
        serial.1, parallel.1,
        "serial and parallel drives disagree on the trace"
    );
    serial
}

proptest! {
    // Each case runs two full telemetry-on federated sessions; keep the
    // case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel member-driving is byte-identical to serial driving across
    /// member counts, seeds, fault grids, and EoP/SAL pattern shapes.
    #[test]
    fn prop_parallel_drive_matches_serial(
        members in 1usize..5,
        seed in 0u64..1_000_000,
        max_retries in 0u32..3,
        flaky in any::<bool>(),
        eop in any::<bool>(),
        size in 1usize..4,
    ) {
        let mut config = fed_config(members, seed, DriveMode::Serial);
        config.fault = FaultConfig::retries(max_retries);
        if flaky {
            for c in &mut config.clusters {
                c.unit_failure_rate = 0.25;
            }
        }
        let shape = if eop {
            Shape::Eop { pipelines: size, stages: 2 }
        } else {
            Shape::Sal { sims: size + 1 }
        };
        assert_drive_equivalence(config, shape);
    }
}

#[test]
fn parallel_trace_passes_overhead_cross_check() {
    // The interleaved multi-member trace must still reconstruct the
    // overhead accounting to within a microsecond, in both drive modes.
    for drive in [DriveMode::Serial, DriveMode::Parallel] {
        let config = fed_config(3, 77, drive);
        let shape = Shape::Eop {
            pipelines: 3,
            stages: 2,
        };
        let mut pattern = build_pattern(shape);
        let (report, telemetry) =
            run_federated_traced(config, pattern.as_mut()).expect("federated run");
        let check = cross_check(&report, &telemetry.tracer);
        assert!(
            check.max_abs_error_secs <= 1e-6,
            "{drive:?}: cross-check error {} s",
            check.max_abs_error_secs
        );
    }
}

#[test]
fn stale_horizon_event_on_window_boundary_is_not_lost() {
    // Regression: with all-constant overhead shapes, member events land on
    // an exact grid; choosing lookaheads aligned with that grid places the
    // next member event exactly on the window horizon. The strictly-before
    // window semantics must leave that event pending (processed at the next
    // merge point), never drop or double-process it. A bug here shows up as
    // a trace divergence, a lost task, or a hang.
    for lookahead_secs in [0.5, 1.0, 2.0] {
        let mut config = fed_config(2, 9, DriveMode::Serial);
        config.entk_overheads = EntkOverheads {
            init: Dist::Constant(1.0),
            resource_request: Dist::Constant(0.5),
            teardown: Dist::Constant(0.5),
            task_create_per_task: Dist::Constant(0.0),
            task_submit_fixed: Dist::Constant(0.5),
        };
        config.runtime_overheads = RuntimeOverheads::zero();
        config.lookahead = Some(lookahead_secs);
        let shape = Shape::Eop {
            pipelines: 2,
            stages: 2,
        };
        let (report_json, _) = assert_drive_equivalence(config, shape);
        let report: ExecutionReport = serde_json::from_str(&report_json).unwrap();
        assert_eq!(report.task_count(), 4, "lookahead {lookahead_secs}");
        assert_eq!(report.failed_tasks, 0, "lookahead {lookahead_secs}");
        assert!(!report.partial, "lookahead {lookahead_secs}");
    }
}

#[test]
fn one_member_federation_ignores_drive_mode() {
    // N = 1 keeps the classic serial path in both modes — trivially
    // identical, and identical to the historical single-member trace.
    let config = fed_config(1, 4242, DriveMode::Serial);
    let shape = Shape::Eop {
        pipelines: 2,
        stages: 1,
    };
    assert_drive_equivalence(config, shape);
}

#[test]
fn tiny_lookahead_still_completes_and_matches() {
    // A 1 µs lookahead degenerates every window to a single timestamp —
    // the serial-equivalent schedule — and must still terminate and agree
    // across drive modes.
    let mut config = fed_config(3, 123, DriveMode::Serial);
    config.lookahead = Some(0.000_001);
    let shape = Shape::Sal { sims: 3 };
    assert_drive_equivalence(config, shape);
}
