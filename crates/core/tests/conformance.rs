//! Backend-conformance suite: one shared test matrix run against the
//! simulated, local, and federated backends.
//!
//! All three implement `ExecutionBackend` under the same `SessionEngine`,
//! so pattern *semantics* must be identical everywhere — task counts,
//! terminal states, the `partial` flag, and retry accounting — even though
//! clocks (virtual vs wall) and unit execution (modeled vs real) differ.

use entk_core::prelude::*;
use entk_core::EntkError;
use serde_json::json;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Backend {
    Sim,
    Local,
    /// Two-member federation, parallel windowed drive (the default).
    Federated,
    /// Two-member federation, serial windowed drive — must be trace- and
    /// semantics-identical to `Federated`.
    FederatedSerial,
}

const ALL_BACKENDS: [Backend; 4] = [
    Backend::Sim,
    Backend::Local,
    Backend::Federated,
    Backend::FederatedSerial,
];

/// A fresh handle of the given flavor, sized to `cores` and carrying the
/// session fault policy. Federated splits the cores across two clusters.
fn handle(backend: Backend, cores: usize, fault: FaultConfig) -> ResourceHandle {
    match backend {
        Backend::Sim => {
            let config = ResourceConfig::new("xsede.comet", cores, SimDuration::from_secs(100_000));
            let sim = SimulatedConfig {
                fault,
                telemetry: false,
                ..SimulatedConfig::default()
            };
            ResourceHandle::simulated(config, sim).expect("simulated handle")
        }
        Backend::Local => ResourceHandle::local_with(cores, KernelRegistry::with_builtins(), fault),
        Backend::Federated | Backend::FederatedSerial => {
            let first = cores.div_ceil(2).max(1);
            let second = (cores - cores / 2).max(1);
            let config = FederatedConfig {
                fault,
                telemetry: false,
                drive: drive_of(backend),
                clusters: vec![
                    ClusterSpec::new("xsede.comet", first, SimDuration::from_secs(100_000)),
                    ClusterSpec::new("xsede.stampede", second, SimDuration::from_secs(100_000)),
                ],
                ..FederatedConfig::default()
            };
            ResourceHandle::federated(config).expect("federated handle")
        }
    }
}

fn drive_of(backend: Backend) -> DriveMode {
    match backend {
        Backend::FederatedSerial => DriveMode::Serial,
        _ => DriveMode::Parallel,
    }
}

fn run_session(
    backend: Backend,
    cores: usize,
    fault: FaultConfig,
    pattern: &mut dyn ExecutionPattern,
) -> ExecutionReport {
    let mut h = handle(backend, cores, fault);
    h.allocate().expect("allocate");
    let report = h.run(pattern).expect("run");
    h.deallocate().expect("deallocate");
    report
}

/// A tiny 3×2 ensemble of pipelines on a kernel every backend supports
/// (modeled cost and a fast real implementation).
fn tiny_eop() -> EnsembleOfPipelines {
    EnsembleOfPipelines::new(3, 2, |p, s| {
        KernelCall::new("misc.stress", json!({ "iters": 500u64 + (p + s) as u64 }))
    })
    .with_stage_labels(vec!["warm".into(), "cool".into()])
}

#[test]
fn eop_semantics_identical_across_backends() {
    for backend in ALL_BACKENDS {
        let mut pattern = tiny_eop();
        let report = run_session(backend, 4, FaultConfig::default(), &mut pattern);
        assert_eq!(report.task_count(), 6, "{backend:?}: task count");
        assert_eq!(report.failed_tasks, 0, "{backend:?}: no failures");
        assert_eq!(report.total_retries, 0, "{backend:?}: no retries");
        assert!(!report.partial, "{backend:?}: complete run");
        for t in &report.tasks {
            assert!(t.success, "{backend:?}: task {} terminal success", t.uid);
            assert!(t.finished.is_some(), "{backend:?}: task {} finished", t.uid);
        }
        // Stage structure survives the backend: 3 tasks per stage label.
        for stage in ["warm", "cool"] {
            let n = report.tasks.iter().filter(|t| t.stage == stage).count();
            assert_eq!(n, 3, "{backend:?}: stage {stage}");
        }
    }
}

#[test]
fn sal_semantics_identical_across_backends() {
    for backend in ALL_BACKENDS {
        let n_sims = 2;
        let mut pattern = SimulationAnalysisLoop::new(
            1,
            n_sims,
            |_, i| {
                KernelCall::new(
                    "md.amber",
                    json!({ "n_atoms": 40, "steps": 40, "record_every": 20, "seed": i }),
                )
            },
            move |_, outs| {
                // Real runs produce frames; modeled runs only summary
                // statistics. CoCo accepts either form.
                let frames: Vec<serde_json::Value> = outs
                    .iter()
                    .filter_map(|o| o["frames"].as_array())
                    .flatten()
                    .cloned()
                    .collect();
                let args = if frames.is_empty() {
                    json!({ "n_sims": outs.len() })
                } else {
                    json!({ "frames": frames, "n_new": 2 })
                };
                vec![KernelCall::new("ana.coco", args)]
            },
        );
        let report = run_session(backend, n_sims, FaultConfig::default(), &mut pattern);
        assert_eq!(report.task_count(), n_sims + 1, "{backend:?}: SAL count");
        assert_eq!(report.failed_tasks, 0, "{backend:?}: SAL failures");
        assert!(!report.partial, "{backend:?}: SAL complete");
        assert_eq!(
            pattern.completed_iterations(),
            1,
            "{backend:?}: SAL iterated"
        );
    }
}

#[test]
fn unknown_kernel_is_a_task_failure_not_a_session_error() {
    for backend in ALL_BACKENDS {
        let mut pattern = BagOfTasks::new(3, |i| {
            if i == 1 {
                KernelCall::new("md.namd", json!({}))
            } else {
                KernelCall::new("misc.stress", json!({ "iters": 200u64 }))
            }
        });
        let report = run_session(backend, 2, FaultConfig::retries(2), &mut pattern);
        assert_eq!(report.task_count(), 3, "{backend:?}");
        assert_eq!(report.failed_tasks, 1, "{backend:?}: one binding failure");
        // Binding failures are not retried — the kernel can never resolve.
        assert_eq!(report.total_retries, 0, "{backend:?}: no retries");
        assert!(report.partial, "{backend:?}: partial flagged");
        let failed: Vec<_> = report.tasks.iter().filter(|t| !t.success).collect();
        assert_eq!(failed.len(), 1, "{backend:?}");
        assert_eq!(failed[0].retries, 0, "{backend:?}");
    }
}

#[test]
fn retry_accounting_invariants_hold_everywhere() {
    // Sim/federated inject failures via unit_failure_rate; local forces a
    // real failure with a kernel reading a nonexistent path. In every case:
    // retries ≤ max per failed task, and partial ⇔ failures (absent
    // degradation).
    let fault = FaultConfig::retries(2);

    // Local: task 0 always fails, exhausts 2 retries.
    let mut pattern = BagOfTasks::new(2, |i| {
        if i == 0 {
            KernelCall::new(
                "misc.ccount",
                json!({ "path": "/nonexistent/entk/conformance" }),
            )
        } else {
            KernelCall::new("misc.stress", json!({ "iters": 200u64 }))
        }
    });
    let report = run_session(Backend::Local, 2, fault, &mut pattern);
    assert_eq!(report.failed_tasks, 1);
    assert_eq!(report.total_retries, 2);
    assert!(report.partial);

    // Sim + federated (both drive modes): stochastic unit failures, same
    // accounting rules.
    for backend in [Backend::Sim, Backend::Federated, Backend::FederatedSerial] {
        let mut pattern = BagOfTasks::new(24, |i| {
            KernelCall::new("misc.stress", json!({ "iters": 500u64 + i as u64 }))
        });
        let mut h = match backend {
            Backend::Sim => {
                let config = ResourceConfig::new("xsede.comet", 8, SimDuration::from_secs(100_000));
                let sim = SimulatedConfig {
                    fault,
                    unit_failure_rate: 0.3,
                    telemetry: false,
                    ..SimulatedConfig::default()
                };
                ResourceHandle::simulated(config, sim).unwrap()
            }
            _ => {
                let mut c0 = ClusterSpec::new("xsede.comet", 4, SimDuration::from_secs(100_000));
                c0.unit_failure_rate = 0.3;
                let mut c1 = ClusterSpec::new("xsede.stampede", 4, SimDuration::from_secs(100_000));
                c1.unit_failure_rate = 0.3;
                let config = FederatedConfig {
                    fault,
                    telemetry: false,
                    drive: drive_of(backend),
                    clusters: vec![c0, c1],
                    ..FederatedConfig::default()
                };
                ResourceHandle::federated(config).unwrap()
            }
        };
        h.allocate().unwrap();
        let report = h.run(&mut pattern).unwrap();
        h.deallocate().unwrap();
        assert_eq!(report.task_count(), 24, "{backend:?}");
        assert_eq!(report.partial, report.failed_tasks > 0, "{backend:?}");
        let mut per_task_retries = 0;
        for t in &report.tasks {
            assert!(t.retries <= 2, "{backend:?}: task retries capped");
            if !t.success {
                assert_eq!(t.retries, 2, "{backend:?}: failed task exhausted retries");
            }
            per_task_retries += t.retries;
        }
        assert_eq!(
            per_task_retries, report.total_retries,
            "{backend:?}: retry totals consistent"
        );
    }
}

#[test]
fn lifecycle_misuse_rejected_with_typed_errors_everywhere() {
    for backend in ALL_BACKENDS {
        let mut pattern = tiny_eop();
        let mut h = handle(backend, 2, FaultConfig::default());
        // Run before allocate.
        match h.run(&mut pattern) {
            Err(EntkError::Usage(_)) => {}
            other => panic!("{backend:?}: run-before-allocate gave {other:?}"),
        }
        // Deallocate before allocate.
        match h.deallocate() {
            Err(EntkError::Usage(_)) => {}
            other => panic!("{backend:?}: deallocate-before-allocate gave {other:?}"),
        }
        h.allocate().expect("allocate");
        // Double allocate.
        match h.allocate() {
            Err(EntkError::Usage(_)) => {}
            other => panic!("{backend:?}: double allocate gave {other:?}"),
        }
    }
}

#[test]
fn construction_errors_are_typed() {
    // Unknown resource name.
    let config = ResourceConfig::new("xsede.nonesuch", 8, SimDuration::from_secs(1000));
    match ResourceHandle::simulated(config, SimulatedConfig::default()) {
        Err(EntkError::Resource(msg)) => assert!(msg.contains("xsede.nonesuch")),
        other => panic!("unknown resource gave {:?}", other.err()),
    }
    // Core request beyond the platform.
    let config = ResourceConfig::new("xsede.comet", usize::MAX, SimDuration::from_secs(1000));
    match ResourceHandle::simulated(config, SimulatedConfig::default()) {
        Err(EntkError::Resource(_)) => {}
        other => panic!("oversized request gave {:?}", other.err()),
    }
    // Federated session with no clusters.
    match ResourceHandle::federated(FederatedConfig::default()) {
        Err(EntkError::Resource(msg)) => assert!(msg.contains("at least one cluster")),
        other => panic!("empty federation gave {:?}", other.err()),
    }
    // Federated member with a bad platform name.
    let config = FederatedConfig {
        clusters: vec![ClusterSpec::new(
            "no.such.machine",
            4,
            SimDuration::from_secs(1000),
        )],
        ..FederatedConfig::default()
    };
    match ResourceHandle::federated(config) {
        Err(EntkError::Resource(msg)) => assert!(msg.contains("no.such.machine")),
        other => panic!("bad federated member gave {:?}", other.err()),
    }
}

#[test]
fn federated_reports_span_all_clusters() {
    let config = FederatedConfig {
        clusters: vec![
            ClusterSpec::new("xsede.comet", 24, SimDuration::from_secs(100_000)),
            ClusterSpec::new("xsede.stampede", 16, SimDuration::from_secs(100_000)),
        ],
        ..FederatedConfig::default()
    };
    let mut pattern = BagOfTasks::new(60, |i| {
        KernelCall::new("misc.stress", json!({ "iters": 400u64 + i as u64 }))
    });
    let (report, telemetry) =
        entk_core::resource::run_federated_traced(config, &mut pattern).expect("federated run");
    assert_eq!(report.resource, "federated:xsede.comet+xsede.stampede");
    assert_eq!(report.cores, 40);
    assert_eq!(report.task_count(), 60);
    assert_eq!(report.failed_tasks, 0);
    // With 60 tasks on 24+16 cores, late binding must use both clusters:
    // the trace carries unit subjects from both id spaces (cluster 1's
    // units are offset by 1e9).
    let mut saw_c0 = false;
    let mut saw_c1 = false;
    for rec in telemetry.tracer.records() {
        if let entk_sim::Subject::Unit(u) = rec.subject {
            if u >= 1_000_000_000 {
                saw_c1 = true;
            } else {
                saw_c0 = true;
            }
        }
    }
    assert!(saw_c0, "cluster 0 executed units");
    assert!(saw_c1, "cluster 1 executed units");
}

#[test]
fn pattern_semantics_hold_under_every_registered_scheduler() {
    // The registry sweep: every named scheduler plugin must preserve
    // pattern semantics on the simulated backend and on both federated
    // drive modes — scheduling policy may reorder starts, never outcomes.
    for name in entk_core::registry::schedulers().names() {
        let spec = entk_core::ComponentSpec::named(name);
        let config = ResourceConfig::new("xsede.comet", 4, SimDuration::from_secs(100_000));
        let sim = SimulatedConfig {
            scheduler: Some(spec.clone()),
            telemetry: false,
            ..SimulatedConfig::default()
        };
        let mut h = ResourceHandle::simulated(config, sim).expect("simulated handle");
        h.allocate().expect("allocate");
        let mut pattern = tiny_eop();
        let report = h.run(&mut pattern).expect("run");
        h.deallocate().expect("deallocate");
        assert_eq!(report.task_count(), 6, "{name}: sim task count");
        assert_eq!(report.failed_tasks, 0, "{name}: sim failures");
        assert!(!report.partial, "{name}: sim complete");

        for drive in [DriveMode::Parallel, DriveMode::Serial] {
            let config = FederatedConfig {
                scheduler: Some(spec.clone()),
                telemetry: false,
                drive,
                clusters: vec![
                    ClusterSpec::new("xsede.comet", 2, SimDuration::from_secs(100_000)),
                    ClusterSpec::new("xsede.stampede", 2, SimDuration::from_secs(100_000)),
                ],
                ..FederatedConfig::default()
            };
            let mut h = ResourceHandle::federated(config).expect("federated handle");
            h.allocate().expect("allocate");
            let mut pattern = tiny_eop();
            let report = h.run(&mut pattern).expect("run");
            h.deallocate().expect("deallocate");
            assert_eq!(report.task_count(), 6, "{name}/{drive:?}: fed task count");
            assert_eq!(report.failed_tasks, 0, "{name}/{drive:?}: fed failures");
            assert!(!report.partial, "{name}/{drive:?}: fed complete");
        }
    }
}

#[test]
fn named_fifo_plugin_is_trace_identical_to_the_default_policy() {
    // Selecting "fifo" through the registry must not perturb a single
    // event relative to the pre-registry default batch policy.
    let run = |scheduler: Option<entk_core::ComponentSpec>| {
        let config = ResourceConfig::new("xsede.comet", 4, SimDuration::from_secs(100_000));
        let sim = SimulatedConfig {
            seed: 11,
            scheduler,
            ..SimulatedConfig::default()
        };
        let mut pattern = tiny_eop();
        let (report, telemetry) =
            entk_core::resource::run_simulated_traced(config, sim, &mut pattern).expect("run");
        (report.ttc, telemetry.tracer.to_jsonl())
    };
    let (default_ttc, default_trace) = run(None);
    let (fifo_ttc, fifo_trace) = run(Some(entk_core::ComponentSpec::named("fifo")));
    assert_eq!(default_ttc, fifo_ttc);
    assert_eq!(default_trace, fifo_trace);
}

#[test]
fn unknown_scheduler_plugin_fails_with_registered_names() {
    let config = ResourceConfig::new("xsede.comet", 4, SimDuration::from_secs(100_000));
    let sim = SimulatedConfig {
        scheduler: Some(entk_core::ComponentSpec::named("priority")),
        ..SimulatedConfig::default()
    };
    match ResourceHandle::simulated(config, sim).err() {
        Some(EntkError::Usage(msg)) => {
            assert!(msg.contains("unknown scheduler \"priority\""), "{msg}");
            assert!(msg.contains("priority_aging"), "{msg}");
            assert!(msg.contains("round_robin"), "{msg}");
        }
        other => panic!("unknown scheduler gave {other:?}"),
    }
}

#[test]
fn federated_survives_a_crash_heavy_member() {
    // One clean cluster + one crash-heavy cluster: the session retries
    // casualties and still completes every task.
    let mut crashy = ClusterSpec::new("xsede.stampede", 16, SimDuration::from_secs(200_000));
    crashy.fault_profile = Some(FaultProfile {
        node_mtbf_secs: 600.0,
        ..FaultProfile::default()
    });
    let config = FederatedConfig {
        fault: FaultConfig::retries(5),
        telemetry: false,
        clusters: vec![
            ClusterSpec::new("xsede.comet", 16, SimDuration::from_secs(200_000)),
            crashy,
        ],
        ..FederatedConfig::default()
    };
    let mut pattern = BagOfTasks::new(48, |i| {
        KernelCall::new("misc.stress", json!({ "iters": 50_000u64 + i as u64 }))
    });
    let report = run_federated(config, &mut pattern).expect("crash-heavy federated run");
    assert_eq!(report.task_count(), 48);
    assert_eq!(report.failed_tasks, 0, "retries absorb the crashes");
    assert!(!report.partial);
}
