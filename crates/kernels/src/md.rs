//! MD kernels: `md.amber`, `md.gromacs`, and `md.exchange`.
//!
//! The science kernels of the paper's workloads. Real execution integrates
//! the toy MD engine on the alanine-dipeptide surrogate; model execution
//! samples energies from the temperature-dependent distribution the real
//! engine produces. Cost models reproduce the runtime properties the paper
//! measures: MD time ∝ steps × atoms / cores, exchange time ∝ replicas.

use crate::plugin::{argutil, KernelError, KernelPlugin};
use entk_cluster::PlatformSpec;
use entk_md::{alanine_dipeptide_surrogate, exchange_probability, EngineFlavor, MdEngine};
use entk_sim::{SimDuration, SimRng};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

/// Seconds per MD step per atom per core at perf_factor 1.0: calibrated so a
/// 2881-atom, 3000-step (6 ps) single-core segment costs ≈ 22 s.
const SECS_PER_STEP_ATOM: f64 = 2.5e-6;

/// An MD-segment kernel standing in for Amber (`md.amber`) or Gromacs
/// (`md.gromacs`).
///
/// Args: `n_atoms` (u64, default 2881), `steps` (u64, default 3000),
/// `temperature` (f64, default 1.0), `seed` (u64, default 0),
/// `record_every` (u64, default 100), `start` (rows, optional solute start
/// conformation for real runs).
#[derive(Debug)]
pub struct MdKernel {
    flavor: EngineFlavor,
}

impl MdKernel {
    /// Amber-flavored kernel.
    pub fn amber() -> Self {
        MdKernel {
            flavor: EngineFlavor::Amber,
        }
    }

    /// Gromacs-flavored kernel.
    pub fn gromacs() -> Self {
        MdKernel {
            flavor: EngineFlavor::Gromacs,
        }
    }

    fn params(args: &Value) -> (usize, usize, f64, u64, usize) {
        (
            argutil::u64_or(args, "n_atoms", 2881) as usize,
            argutil::u64_or(args, "steps", 3000) as usize,
            argutil::f64_or(args, "temperature", 1.0),
            argutil::u64_or(args, "seed", 0),
            argutil::u64_or(args, "record_every", 100) as usize,
        )
    }
}

impl KernelPlugin for MdKernel {
    fn name(&self) -> &str {
        match self.flavor {
            EngineFlavor::Amber => "md.amber",
            EngineFlavor::Gromacs => "md.gromacs",
        }
    }

    fn validate(&self, args: &Value) -> Result<(), KernelError> {
        let (n_atoms, steps, t, _, _) = Self::params(args);
        if n_atoms == 0 || steps == 0 {
            return Err(KernelError::new("n_atoms and steps must be positive"));
        }
        if t <= 0.0 {
            return Err(KernelError::new("temperature must be positive"));
        }
        Ok(())
    }

    fn cost(
        &self,
        args: &Value,
        cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let (n_atoms, steps, _, _, _) = Self::params(args);
        let base = 0.5;
        let compute = SECS_PER_STEP_ATOM * steps as f64 * n_atoms as f64
            / (cores.max(1) as f64 * platform.perf_factor);
        let jitter = (1.0 + 0.03 * rng.standard_normal()).max(0.5);
        SimDuration::from_secs_f64((base + compute) * jitter)
    }

    fn execute_model(&self, args: &Value, rng: &mut SimRng) -> Result<Value, KernelError> {
        self.validate(args)?;
        let (n_atoms, steps, t, _, record_every) = Self::params(args);
        // Potential-energy model matching the toy engine's behaviour:
        // per-particle mean rises roughly linearly with temperature.
        let mean = n_atoms as f64 * (-2.5 + 1.4 * t);
        let sd = (n_atoms as f64).sqrt() * 0.9;
        let potential = rng.normal(mean, sd);
        Ok(json!({
            "engine": self.name(),
            "potential": potential,
            "temperature": t,
            "n_frames": (steps / record_every.max(1)).max(1),
            "modeled": true,
        }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        self.validate(args)?;
        let (n_atoms, steps, t, seed, record_every) = Self::params(args);
        let mut sys = alanine_dipeptide_surrogate(n_atoms, seed);
        if let Some(start) = argutil::rows_opt(args, "start") {
            // Apply a provided solute conformation (relative coordinates
            // around the current solute centroid).
            if let Some(conf) = start.first() {
                if conf.len() == 3 * sys.n_solute {
                    let centre = sys.box_len / 2.0;
                    for i in 0..sys.n_solute {
                        for a in 0..3 {
                            sys.positions[i][a] =
                                (centre + conf[3 * i + a]).rem_euclid(sys.box_len);
                        }
                    }
                }
            }
        }
        sys.thermalize(t, seed ^ 0xBEEF);
        let mut engine = MdEngine::new(self.flavor);
        engine.config.temperature = t;
        engine.config.record_every = record_every;
        let result = engine.run(&mut sys, steps, seed ^ 0xD1CE);
        let frames: Vec<Vec<f64>> = result.trajectory.frames().to_vec();
        Ok(json!({
            "engine": self.name(),
            "potential": result.final_potential,
            "temperature": result.mean_temperature,
            "n_frames": frames.len(),
            "frames": frames,
            "modeled": false,
        }))
    }

    fn input_bytes(&self, args: &Value) -> u64 {
        // Coordinates + velocities, 6 f64 per atom.
        let (n_atoms, _, _, _, _) = Self::params(args);
        (n_atoms * 48) as u64
    }

    fn output_bytes(&self, args: &Value) -> u64 {
        let (n_atoms, steps, _, _, record_every) = Self::params(args);
        let frames = (steps / record_every.max(1)).max(1);
        (frames * n_atoms.min(22) * 24) as u64
    }
}

/// The temperature-exchange kernel (`md.exchange`) used in the EE pattern's
/// exchange stage.
///
/// Stateless Metropolis sweep: given each replica's potential energy and
/// current temperature, decide neighbour swaps for the given `phase`
/// (even/odd pairing). Real and model execution are identical — the
/// decision *is* the computation.
///
/// Args: `energies` (array of f64), `temperatures` (array of f64, same
/// length, ladder-ordered per replica), `phase` (u64 0/1, default 0),
/// `seed` (u64, default 0), `per_replica_secs` (f64 cost slope, default
/// 0.005), `base_secs` (f64, default 1.0).
#[derive(Debug, Default)]
pub struct ExchangeKernel;

impl ExchangeKernel {
    fn decide(args: &Value) -> Result<Value, KernelError> {
        let energies: Vec<f64> = args
            .get("energies")
            .and_then(Value::as_array)
            .ok_or_else(|| KernelError::new("missing energies"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| KernelError::new("bad energy")))
            .collect::<Result<_, _>>()?;
        let temps: Vec<f64> = args
            .get("temperatures")
            .and_then(Value::as_array)
            .ok_or_else(|| KernelError::new("missing temperatures"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| KernelError::new("bad temperature"))
            })
            .collect::<Result<_, _>>()?;
        if energies.len() != temps.len() {
            return Err(KernelError::new("energies/temperatures length mismatch"));
        }
        let phase = argutil::u64_or(args, "phase", 0) as usize % 2;
        let seed = argutil::u64_or(args, "seed", 0);
        let mut rng = StdRng::seed_from_u64(seed);

        // Order replicas by temperature, pair ladder neighbours.
        let n = energies.len();
        let mut by_temp: Vec<usize> = (0..n).collect();
        by_temp.sort_by(|&a, &b| temps[a].partial_cmp(&temps[b]).expect("finite temps"));
        let mut swaps = Vec::new();
        let mut attempted = 0u64;
        let mut k = phase;
        while k + 1 < n {
            let (ra, rb) = (by_temp[k], by_temp[k + 1]);
            let p = exchange_probability(energies[ra], temps[ra], energies[rb], temps[rb]);
            attempted += 1;
            if rng.random::<f64>() < p {
                swaps.push(json!([ra, rb]));
            }
            k += 2;
        }
        let accepted = swaps.len() as u64;
        Ok(json!({
            "swaps": swaps,
            "attempted": attempted,
            "accepted": accepted,
        }))
    }
}

impl KernelPlugin for ExchangeKernel {
    fn name(&self) -> &str {
        "md.exchange"
    }

    fn validate(&self, args: &Value) -> Result<(), KernelError> {
        if args.get("energies").is_none() && args.get("n_replicas").is_none() {
            return Err(KernelError::new("need energies or n_replicas"));
        }
        Ok(())
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let n = args
            .get("energies")
            .and_then(Value::as_array)
            .map(Vec::len)
            .or_else(|| {
                argutil::u64_req(args, "n_replicas")
                    .ok()
                    .map(|v| v as usize)
            })
            .unwrap_or(0) as f64;
        let base = argutil::f64_or(args, "base_secs", 1.0);
        let per = argutil::f64_or(args, "per_replica_secs", 0.005);
        let jitter = (1.0 + 0.02 * rng.standard_normal()).max(0.5);
        SimDuration::from_secs_f64((base / platform.perf_factor + per * n) * jitter)
    }

    fn execute_model(&self, args: &Value, _rng: &mut SimRng) -> Result<Value, KernelError> {
        Self::decide(args)
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        Self::decide(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn amber_real_run_produces_frames_and_energy() {
        let out = MdKernel::amber()
            .execute(&json!({ "n_atoms": 60, "steps": 100, "record_every": 50, "seed": 3 }))
            .unwrap();
        assert_eq!(out["engine"], "md.amber");
        assert_eq!(out["n_frames"], 2);
        assert!(out["potential"].as_f64().unwrap().is_finite());
        assert_eq!(out["frames"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn model_energy_tracks_temperature() {
        let mut r = rng();
        let sample = |t: f64, r: &mut SimRng| {
            (0..32)
                .map(|i| {
                    MdKernel::amber()
                        .execute_model(&json!({ "n_atoms": 500, "temperature": t, "seed": i }), r)
                        .unwrap()["potential"]
                        .as_f64()
                        .unwrap()
                })
                .sum::<f64>()
                / 32.0
        };
        let cold = sample(0.5, &mut r);
        let hot = sample(2.0, &mut r);
        assert!(hot > cold, "model energies: cold {cold}, hot {hot}");
    }

    #[test]
    fn md_cost_matches_paper_calibration() {
        // 2881 atoms, 6 ps (3000 steps), 1 core: ≈ 22 s on perf 1.0.
        let mut r = rng();
        let c = MdKernel::amber()
            .cost(&json!({}), 1, &PlatformSpec::comet(), &mut r)
            .as_secs_f64();
        assert!((15.0..30.0).contains(&c), "cost {c}");
    }

    #[test]
    fn md_cost_scales_with_cores_steps_atoms() {
        let spec = PlatformSpec::comet();
        let mut r = SimRng::seed_from_u64(0);
        let mut cost = |args: Value, cores| {
            // Average over draws to suppress jitter.
            (0..16)
                .map(|_| {
                    MdKernel::amber()
                        .cost(&args, cores, &spec, &mut r)
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 16.0
        };
        let base = cost(json!({ "steps": 3000 }), 1);
        let mpi16 = cost(json!({ "steps": 3000 }), 16);
        assert!(base / mpi16 > 8.0, "MPI speedup {}", base / mpi16);
        let short = cost(json!({ "steps": 300 }), 1);
        assert!(base / short > 5.0, "step scaling {}", base / short);
    }

    #[test]
    fn md_validation_rejects_nonsense() {
        let k = MdKernel::gromacs();
        assert!(k.validate(&json!({ "steps": 0 })).is_err());
        assert!(k.validate(&json!({ "temperature": -1.0 })).is_err());
        assert!(k.validate(&json!({})).is_ok());
    }

    #[test]
    fn start_conformation_is_applied() {
        let conf: Vec<f64> = (0..66).map(|i| (i % 7) as f64 * 0.1).collect();
        let out = MdKernel::amber()
            .execute(&json!({
                "n_atoms": 60, "steps": 1, "record_every": 1, "seed": 5,
                "start": [conf],
            }))
            .unwrap();
        assert!(out["potential"].as_f64().unwrap().is_finite());
    }

    #[test]
    fn exchange_swaps_hot_low_energy_pairs() {
        // Replica 0: cold with high energy; replica 1: hot with low energy
        // => certain swap.
        let out = ExchangeKernel
            .execute(&json!({
                "energies": [100.0, -100.0],
                "temperatures": [0.5, 2.0],
                "seed": 1,
            }))
            .unwrap();
        assert_eq!(out["attempted"], 1);
        assert_eq!(out["accepted"], 1);
        assert_eq!(out["swaps"][0][0], 0);
        assert_eq!(out["swaps"][0][1], 1);
    }

    #[test]
    fn exchange_phase_shifts_pairing() {
        let args = |phase: u64| {
            json!({
                "energies": [0.0, 0.0, 0.0, 0.0],
                "temperatures": [1.0, 1.2, 1.4, 1.6],
                "phase": phase,
            })
        };
        let even = ExchangeKernel.execute(&args(0)).unwrap();
        let odd = ExchangeKernel.execute(&args(1)).unwrap();
        assert_eq!(even["attempted"], 2);
        assert_eq!(odd["attempted"], 1);
    }

    #[test]
    fn exchange_cost_linear_in_replicas() {
        let spec = PlatformSpec::supermic();
        let mut r = SimRng::seed_from_u64(2);
        let avg_cost = |n: u64, r: &mut SimRng| {
            (0..16)
                .map(|_| {
                    ExchangeKernel
                        .cost(&json!({ "n_replicas": n }), 1, &spec, r)
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 16.0
        };
        let small = avg_cost(20, &mut r);
        let large = avg_cost(2560, &mut r);
        assert!(large > small + 10.0, "exchange cost: {small} -> {large}");
    }

    #[test]
    fn exchange_rejects_mismatched_arrays() {
        let err = ExchangeKernel
            .execute(&json!({ "energies": [1.0], "temperatures": [1.0, 2.0] }))
            .unwrap_err();
        assert!(err.0.contains("mismatch"));
    }
}
