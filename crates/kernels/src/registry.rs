//! The kernel-plugin registry: name → plugin lookup, with all built-in
//! kernels pre-registered. Applications may register custom kernels, which
//! is the paper's "define kernel plugins for the stages of the pattern"
//! step (Fig. 1, step 2).

use crate::analysis::{CocoKernel, LsdmapKernel, WhamKernel};
use crate::md::{ExchangeKernel, MdKernel};
use crate::misc::{CcountKernel, MkfileKernel, SleepKernel, StressKernel};
use crate::plugin::{KernelError, KernelPlugin};
use std::collections::HashMap;
use std::sync::Arc;

/// A shared, thread-safe kernel registry.
///
/// ```
/// use entk_kernels::KernelRegistry;
/// use serde_json::json;
///
/// let registry = KernelRegistry::with_builtins();
/// let kernel = registry.get("misc.ccount").unwrap();
/// let out = kernel
///     .execute_model(&json!({ "bytes": 42 }), &mut entk_sim::SimRng::seed_from_u64(1))
///     .unwrap();
/// assert_eq!(out["chars"], 42);
/// ```
#[derive(Clone)]
pub struct KernelRegistry {
    plugins: HashMap<String, Arc<dyn KernelPlugin>>,
}

impl KernelRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        KernelRegistry {
            plugins: HashMap::new(),
        }
    }

    /// A registry with every built-in kernel.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register(Arc::new(MkfileKernel));
        r.register(Arc::new(CcountKernel));
        r.register(Arc::new(SleepKernel));
        r.register(Arc::new(StressKernel));
        r.register(Arc::new(MdKernel::amber()));
        r.register(Arc::new(MdKernel::gromacs()));
        r.register(Arc::new(ExchangeKernel));
        r.register(Arc::new(CocoKernel));
        r.register(Arc::new(LsdmapKernel));
        r.register(Arc::new(WhamKernel));
        r
    }

    /// Registers (or replaces) a plugin under its own name.
    pub fn register(&mut self, plugin: Arc<dyn KernelPlugin>) {
        self.plugins.insert(plugin.name().to_string(), plugin);
    }

    /// Looks up a plugin.
    pub fn get(&self, name: &str) -> Result<Arc<dyn KernelPlugin>, KernelError> {
        self.plugins.get(name).cloned().ok_or_else(|| {
            KernelError::new(format!(
                "unknown kernel plugin {name:?} (registered: {})",
                self.names().join(", ")
            ))
        })
    }

    /// Registered plugin names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.plugins.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_cluster::PlatformSpec;
    use entk_sim::SimRng;
    use serde_json::json;

    #[test]
    fn builtins_are_registered() {
        let r = KernelRegistry::with_builtins();
        for name in [
            "misc.mkfile",
            "misc.ccount",
            "misc.sleep",
            "misc.stress",
            "md.amber",
            "md.gromacs",
            "md.exchange",
            "ana.coco",
            "ana.lsdmap",
            "ana.wham",
        ] {
            assert!(r.get(name).is_ok(), "{name} missing");
        }
        assert_eq!(r.names().len(), 10);
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let r = KernelRegistry::with_builtins();
        let err = r.get("md.namd").err().expect("lookup fails");
        assert!(err.0.contains("md.namd"));
    }

    #[test]
    fn custom_kernel_can_be_registered() {
        struct Custom;
        impl KernelPlugin for Custom {
            fn name(&self) -> &str {
                "custom.k"
            }
            fn cost(
                &self,
                _: &serde_json::Value,
                _: usize,
                _: &PlatformSpec,
                _: &mut SimRng,
            ) -> entk_sim::SimDuration {
                entk_sim::SimDuration::from_secs(1)
            }
            fn execute_model(
                &self,
                _: &serde_json::Value,
                _: &mut SimRng,
            ) -> Result<serde_json::Value, crate::plugin::KernelError> {
                Ok(json!({}))
            }
            fn execute(
                &self,
                _: &serde_json::Value,
            ) -> Result<serde_json::Value, crate::plugin::KernelError> {
                Ok(json!({}))
            }
        }
        let mut r = KernelRegistry::empty();
        r.register(Arc::new(Custom));
        assert!(r.get("custom.k").is_ok());
    }
}
