//! # entk-kernels — kernel plugins (paper §III-B, component 2)
//!
//! Kernel plugins abstract computational tasks — "an instantiation of a
//! specific science tool along with the required software environment" —
//! hiding tool- and resource-specific peculiarities. Each plugin provides a
//! platform-aware cost model (for simulated execution), a cheap model
//! execution (semantic outputs in virtual time), and a real execution
//! (actual computation on the local host).
//!
//! Built-ins cover every kernel in the paper's evaluation: `misc.mkfile` /
//! `misc.ccount` (Fig. 3), `md.gromacs` + `ana.lsdmap` (Fig. 4),
//! `md.amber` + `md.exchange` (Figs. 5–6), `md.amber` + `ana.coco`
//! (Figs. 7–9), plus `misc.sleep` / `misc.stress` for calibration.

#![warn(missing_docs)]

pub mod analysis;
pub mod md;
pub mod misc;
pub mod plugin;
pub mod registry;

pub use analysis::{CocoKernel, LsdmapKernel, WhamKernel};
pub use md::{ExchangeKernel, MdKernel};
pub use misc::{CcountKernel, MkfileKernel, SleepKernel, StressKernel};
pub use plugin::{argutil, KernelCall, KernelError, KernelPlugin};
pub use registry::KernelRegistry;
