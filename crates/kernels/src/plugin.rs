//! The kernel-plugin abstraction (paper §III-B, component 2).
//!
//! A kernel plugin "abstracts a computational task … an instantiation of a
//! specific science tool along with the required software environment",
//! hiding tool- and resource-specific peculiarities. Here a plugin exposes
//! three faces:
//!
//! * a **cost model** — platform-aware estimated runtime, used when units
//!   execute in virtual time;
//! * a **model execution** — a cheap surrogate producing the *semantic*
//!   outputs patterns need (energies for exchanges, new starts from
//!   analysis) during simulated runs;
//! * a **real execution** — the actual computation (file I/O, toy MD,
//!   PCA/diffusion maps) for local runs.

use entk_cluster::PlatformSpec;
use entk_sim::{SimDuration, SimRng};
use serde_json::Value;
use std::fmt;

/// Error raised by kernel validation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel error: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

impl KernelError {
    /// Convenience constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        KernelError(msg.into())
    }
}

/// A bound kernel invocation: plugin name plus instantiation arguments.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelCall {
    /// Registry key, e.g. `"md.amber"`.
    pub plugin: String,
    /// Kernel-specific arguments.
    pub args: Value,
    /// Cores the task uses.
    pub cores: usize,
    /// Whether the task is MPI (multi-core).
    pub mpi: bool,
}

impl KernelCall {
    /// Creates a single-core call.
    pub fn new(plugin: impl Into<String>, args: Value) -> Self {
        KernelCall {
            plugin: plugin.into(),
            args,
            cores: 1,
            mpi: false,
        }
    }

    /// Sets core count and MPI flag (builder style).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self.mpi = cores > 1;
        self
    }
}

/// The kernel-plugin interface.
pub trait KernelPlugin: Send + Sync {
    /// Registry name, e.g. `"md.amber"`.
    fn name(&self) -> &str;

    /// Validates instantiation arguments.
    fn validate(&self, _args: &Value) -> Result<(), KernelError> {
        Ok(())
    }

    /// Estimated wall time on `platform` using `cores` cores.
    fn cost(
        &self,
        args: &Value,
        cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration;

    /// Cheap surrogate execution for simulated runs.
    fn execute_model(&self, args: &Value, rng: &mut SimRng) -> Result<Value, KernelError>;

    /// Real execution for local runs.
    fn execute(&self, args: &Value) -> Result<Value, KernelError>;

    /// Modelled input staging volume in bytes.
    fn input_bytes(&self, _args: &Value) -> u64 {
        0
    }

    /// Modelled output staging volume in bytes.
    fn output_bytes(&self, _args: &Value) -> u64 {
        0
    }
}

/// Helpers for pulling typed fields out of kernel args.
pub mod argutil {
    use super::KernelError;
    use serde_json::Value;

    /// Required f64 field.
    pub fn f64_req(args: &Value, key: &str) -> Result<f64, KernelError> {
        args.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| KernelError::new(format!("missing/invalid f64 field {key:?}")))
    }

    /// Optional f64 field with default.
    pub fn f64_or(args: &Value, key: &str, default: f64) -> f64 {
        args.get(key).and_then(Value::as_f64).unwrap_or(default)
    }

    /// Required u64 field.
    pub fn u64_req(args: &Value, key: &str) -> Result<u64, KernelError> {
        args.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| KernelError::new(format!("missing/invalid u64 field {key:?}")))
    }

    /// Optional u64 field with default.
    pub fn u64_or(args: &Value, key: &str, default: u64) -> u64 {
        args.get(key).and_then(Value::as_u64).unwrap_or(default)
    }

    /// Required string field.
    pub fn str_req<'a>(args: &'a Value, key: &str) -> Result<&'a str, KernelError> {
        args.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| KernelError::new(format!("missing/invalid string field {key:?}")))
    }

    /// Optional nested array of f64 rows (e.g. conformations).
    pub fn rows_opt(args: &Value, key: &str) -> Option<Vec<Vec<f64>>> {
        let arr = args.get(key)?.as_array()?;
        let mut rows = Vec::with_capacity(arr.len());
        for row in arr {
            let row = row
                .as_array()?
                .iter()
                .map(|v| v.as_f64())
                .collect::<Option<Vec<f64>>>()?;
            rows.push(row);
        }
        Some(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::argutil::*;
    use super::*;
    use serde_json::json;

    #[test]
    fn kernel_call_builder() {
        let call = KernelCall::new("md.amber", json!({"steps": 100})).with_cores(16);
        assert_eq!(call.cores, 16);
        assert!(call.mpi);
        let single = KernelCall::new("misc.mkfile", json!({}));
        assert!(!single.mpi);
    }

    #[test]
    fn argutil_extracts_typed_fields() {
        let args = json!({"a": 1.5, "b": 7, "c": "hi", "rows": [[1.0, 2.0], [3.0, 4.0]]});
        assert_eq!(f64_req(&args, "a").unwrap(), 1.5);
        assert_eq!(u64_req(&args, "b").unwrap(), 7);
        assert_eq!(str_req(&args, "c").unwrap(), "hi");
        assert_eq!(f64_or(&args, "missing", 9.0), 9.0);
        assert_eq!(u64_or(&args, "missing", 3), 3);
        let rows = rows_opt(&args, "rows").unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn argutil_reports_missing_fields() {
        let args = json!({});
        assert!(f64_req(&args, "x").is_err());
        assert!(u64_req(&args, "x").is_err());
        assert!(str_req(&args, "x").is_err());
        assert!(rows_opt(&args, "x").is_none());
    }

    #[test]
    fn argutil_rejects_wrong_types() {
        let args = json!({"x": "not a number", "rows": [[1.0], ["bad"]]});
        assert!(f64_req(&args, "x").is_err());
        assert!(rows_opt(&args, "rows").is_none());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn kernel_call_serde_roundtrip() {
        let call =
            KernelCall::new("md.amber", json!({"steps": 100, "temperature": 1.5})).with_cores(8);
        let text = serde_json::to_string(&call).unwrap();
        let back: KernelCall = serde_json::from_str(&text).unwrap();
        assert_eq!(back, call);
        assert!(back.mpi);
    }
}

#[cfg(test)]
mod cost_model_props {
    use crate::registry::KernelRegistry;
    use entk_cluster::PlatformSpec;
    use entk_sim::SimRng;
    use proptest::prelude::*;
    use serde_json::json;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every built-in kernel's cost model yields a finite, bounded
        /// duration on every platform for arbitrary basic parameters.
        #[test]
        fn prop_costs_are_sane(
            steps in 1u64..10_000,
            n_atoms in 1u64..5_000,
            cores in 1usize..64,
            seed in 0u64..100,
        ) {
            let registry = KernelRegistry::with_builtins();
            let mut rng = SimRng::seed_from_u64(seed);
            let platforms = [
                PlatformSpec::comet(),
                PlatformSpec::stampede(),
                PlatformSpec::supermic(),
            ];
            let args = json!({
                "steps": steps, "n_atoms": n_atoms, "bytes": n_atoms,
                "secs": steps as f64 / 1000.0, "iters": steps,
                "n_sims": n_atoms, "n_replicas": n_atoms, "n_samples": steps,
            });
            for platform in &platforms {
                for name in registry.names() {
                    let plugin = registry.get(name).unwrap();
                    let cost = plugin.cost(&args, cores, platform, &mut rng);
                    let secs = cost.as_secs_f64();
                    prop_assert!(secs.is_finite(), "{name} cost not finite");
                    prop_assert!(secs >= 0.0, "{name} cost negative");
                    prop_assert!(secs < 1e7, "{name} cost absurd: {secs}");
                }
            }
        }

        /// MPI-capable kernels never cost more with more cores.
        #[test]
        fn prop_md_cost_monotone_in_cores(steps in 100u64..5_000, seed in 0u64..50) {
            let registry = KernelRegistry::with_builtins();
            let plugin = registry.get("md.amber").unwrap();
            let platform = PlatformSpec::stampede();
            let args = json!({ "steps": steps, "n_atoms": 2881 });
            // Average over draws to suppress jitter.
            let avg = |cores: usize, seed: u64| {
                let mut rng = SimRng::seed_from_u64(seed);
                (0..16)
                    .map(|_| plugin.cost(&args, cores, &platform, &mut rng).as_secs_f64())
                    .sum::<f64>()
                    / 16.0
            };
            let c1 = avg(1, seed);
            let c8 = avg(8, seed);
            let c64 = avg(64, seed);
            prop_assert!(c8 < c1, "8 cores faster than 1: {c8} vs {c1}");
            prop_assert!(c64 < c8, "64 cores faster than 8: {c64} vs {c8}");
        }
    }
}
