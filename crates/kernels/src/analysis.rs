//! Analysis kernels: `ana.coco` and `ana.lsdmap`.
//!
//! Both are *serial* analyses over the whole ensemble, so their cost grows
//! linearly with the number of contributing simulations — the property the
//! paper's SAL scaling figures (7 and 8) exhibit.

use crate::plugin::{argutil, KernelError, KernelPlugin};
use entk_analysis::{coco, lsdmap, CocoConfig, LsdmapConfig};
use entk_cluster::PlatformSpec;
use entk_sim::{SimDuration, SimRng};
use serde_json::{json, Value};

/// CoCo analysis kernel (`ana.coco`).
///
/// Real mode consumes `frames` (rows) and emits `n_new` suggested starting
/// conformations. Model mode consumes `n_sims` and emits placeholder
/// bookkeeping. Cost: `base_secs + per_sim_secs × n_sims` (defaults 5.0 and
/// 0.05), serial regardless of cores.
#[derive(Debug, Default)]
pub struct CocoKernel;

impl KernelPlugin for CocoKernel {
    fn name(&self) -> &str {
        "ana.coco"
    }

    fn validate(&self, args: &Value) -> Result<(), KernelError> {
        if args.get("frames").is_none() && args.get("n_sims").is_none() {
            return Err(KernelError::new("need frames (real) or n_sims (model)"));
        }
        Ok(())
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let n_sims = argutil::u64_or(args, "n_sims", 0) as f64;
        let base = argutil::f64_or(args, "base_secs", 5.0);
        let per = argutil::f64_or(args, "per_sim_secs", 0.05);
        let jitter = (1.0 + 0.02 * rng.standard_normal()).max(0.5);
        SimDuration::from_secs_f64((base / platform.perf_factor + per * n_sims) * jitter)
    }

    fn execute_model(&self, args: &Value, rng: &mut SimRng) -> Result<Value, KernelError> {
        self.validate(args)?;
        let n_new = argutil::u64_or(args, "n_new", 1);
        Ok(json!({
            "n_new": n_new,
            "occupancy": 0.1 + 0.4 * rng.uniform(),
            "modeled": true,
        }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let frames = argutil::rows_opt(args, "frames")
            .ok_or_else(|| KernelError::new("missing frames for real CoCo"))?;
        if frames.is_empty() {
            return Err(KernelError::new("CoCo needs at least one frame"));
        }
        let n_new = argutil::u64_or(args, "n_new", 1) as usize;
        let config = CocoConfig {
            n_components: argutil::u64_or(args, "n_components", 2) as usize,
            grid: argutil::u64_or(args, "grid", 10) as usize,
        };
        let result = coco(&frames, n_new, config);
        Ok(json!({
            "n_new": result.new_starts.len(),
            "new_starts": result.new_starts,
            "occupancy": result.occupancy,
            "modeled": false,
        }))
    }

    fn input_bytes(&self, args: &Value) -> u64 {
        argutil::u64_or(args, "n_sims", 1) * 16 * 1024
    }

    fn output_bytes(&self, args: &Value) -> u64 {
        argutil::u64_or(args, "n_new", 1) * 8 * 1024
    }
}

/// LSDMap analysis kernel (`ana.lsdmap`).
///
/// Real mode runs a diffusion map over `frames` and returns the leading
/// diffusion coordinates; model mode uses `n_sims`. Cost: `base_secs +
/// per_sim_secs × n_sims` (defaults 4.0 and 0.04).
#[derive(Debug, Default)]
pub struct LsdmapKernel;

impl KernelPlugin for LsdmapKernel {
    fn name(&self) -> &str {
        "ana.lsdmap"
    }

    fn validate(&self, args: &Value) -> Result<(), KernelError> {
        if args.get("frames").is_none() && args.get("n_sims").is_none() {
            return Err(KernelError::new("need frames (real) or n_sims (model)"));
        }
        Ok(())
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let n_sims = argutil::u64_or(args, "n_sims", 0) as f64;
        let base = argutil::f64_or(args, "base_secs", 4.0);
        let per = argutil::f64_or(args, "per_sim_secs", 0.04);
        let jitter = (1.0 + 0.02 * rng.standard_normal()).max(0.5);
        SimDuration::from_secs_f64((base / platform.perf_factor + per * n_sims) * jitter)
    }

    fn execute_model(&self, args: &Value, rng: &mut SimRng) -> Result<Value, KernelError> {
        self.validate(args)?;
        Ok(json!({
            "spectral_gap": 0.2 + 0.6 * rng.uniform(),
            "modeled": true,
        }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let frames = argutil::rows_opt(args, "frames")
            .ok_or_else(|| KernelError::new("missing frames for real LSDMap"))?;
        if frames.len() < 2 {
            return Err(KernelError::new("LSDMap needs at least two frames"));
        }
        let config = LsdmapConfig {
            n_coords: argutil::u64_or(args, "n_coords", 2) as usize,
            epsilon_scale: argutil::f64_or(args, "epsilon_scale", 1.0),
        };
        let result = lsdmap(&frames, config);
        let gap = if result.eigenvalues.len() > 2 {
            result.eigenvalues[1] - result.eigenvalues[2]
        } else {
            0.0
        };
        Ok(json!({
            "coords": result.coords,
            "eigenvalues": result.eigenvalues[..result.eigenvalues.len().min(8)],
            "spectral_gap": gap,
            "epsilon": result.epsilon,
            "modeled": false,
        }))
    }

    fn input_bytes(&self, args: &Value) -> u64 {
        argutil::u64_or(args, "n_sims", 1) * 16 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    fn blob_frames(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 15.0 };
                vec![c + (i % 5) as f64 * 0.1, c - (i % 3) as f64 * 0.1, c]
            })
            .collect()
    }

    #[test]
    fn coco_real_returns_new_starts() {
        let out = CocoKernel
            .execute(&json!({ "frames": blob_frames(40), "n_new": 5 }))
            .unwrap();
        assert_eq!(out["n_new"], 5);
        assert_eq!(out["new_starts"].as_array().unwrap().len(), 5);
        assert!(out["occupancy"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn coco_model_needs_n_sims() {
        assert!(CocoKernel.validate(&json!({})).is_err());
        let out = CocoKernel
            .execute_model(&json!({ "n_sims": 64, "n_new": 8 }), &mut rng())
            .unwrap();
        assert_eq!(out["n_new"], 8);
        assert_eq!(out["modeled"], true);
    }

    #[test]
    fn analysis_cost_is_serial_and_linear() {
        let spec = PlatformSpec::stampede();
        let mut r = rng();
        let avg = |n: u64, cores: usize, r: &mut SimRng| {
            (0..16)
                .map(|_| {
                    CocoKernel
                        .cost(&json!({ "n_sims": n }), cores, &spec, r)
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 16.0
        };
        // Serial: cores do not help.
        let c1 = avg(1024, 1, &mut r);
        let c64 = avg(1024, 64, &mut r);
        assert!(
            (c1 - c64).abs() / c1 < 0.1,
            "serial analysis: {c1} vs {c64}"
        );
        // Linear growth in simulations (Fig. 8's analysis curve).
        let small = avg(64, 1, &mut r);
        let large = avg(4096, 1, &mut r);
        assert!(large / small > 10.0, "growth {small} -> {large}");
    }

    #[test]
    fn lsdmap_real_separates_two_blobs() {
        let out = LsdmapKernel
            .execute(&json!({ "frames": blob_frames(30), "n_coords": 2 }))
            .unwrap();
        assert!(out["spectral_gap"].as_f64().unwrap() > 0.0);
        assert_eq!(out["coords"].as_array().unwrap().len(), 30);
    }

    #[test]
    fn lsdmap_rejects_tiny_inputs() {
        assert!(LsdmapKernel
            .execute(&json!({ "frames": [[1.0, 2.0]] }))
            .is_err());
        assert!(LsdmapKernel.execute(&json!({})).is_err());
    }

    #[test]
    fn staging_grows_with_ensemble() {
        assert!(
            CocoKernel.input_bytes(&json!({ "n_sims": 1024 }))
                > CocoKernel.input_bytes(&json!({ "n_sims": 64 }))
        );
    }
}

/// WHAM post-processing kernel (`ana.wham`): combines per-replica energy
/// histograms from a T-REMD run into density-of-states estimates and
/// thermodynamic observables at arbitrary temperatures.
///
/// Real mode: `energy_samples` (array of arrays), `temperatures` (array),
/// `target_temps` (array, default = input temperatures), `n_bins`
/// (default 60). Model mode: `n_samples` drives the cost only.
#[derive(Debug, Default)]
pub struct WhamKernel;

impl KernelPlugin for WhamKernel {
    fn name(&self) -> &str {
        "ana.wham"
    }

    fn validate(&self, args: &Value) -> Result<(), KernelError> {
        if args.get("energy_samples").is_none() && args.get("n_samples").is_none() {
            return Err(KernelError::new(
                "need energy_samples (real) or n_samples (model)",
            ));
        }
        Ok(())
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let n = argutil::u64_or(args, "n_samples", 10_000) as f64;
        let base = argutil::f64_or(args, "base_secs", 2.0);
        let per = argutil::f64_or(args, "per_sample_secs", 2e-5);
        let jitter = (1.0 + 0.02 * rng.standard_normal()).max(0.5);
        SimDuration::from_secs_f64((base / platform.perf_factor + per * n) * jitter)
    }

    fn execute_model(&self, args: &Value, rng: &mut SimRng) -> Result<Value, KernelError> {
        self.validate(args)?;
        Ok(json!({ "converged": true, "residual": 1e-9 * rng.uniform(), "modeled": true }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let samples = argutil::rows_opt(args, "energy_samples")
            .ok_or_else(|| KernelError::new("missing energy_samples"))?;
        let temps: Vec<f64> = args
            .get("temperatures")
            .and_then(Value::as_array)
            .ok_or_else(|| KernelError::new("missing temperatures"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| KernelError::new("bad temperature"))
            })
            .collect::<Result<_, _>>()?;
        if samples.len() != temps.len() {
            return Err(KernelError::new(
                "energy_samples/temperatures length mismatch",
            ));
        }
        if samples.iter().all(Vec::is_empty) {
            return Err(KernelError::new("no energy samples"));
        }
        let n_bins = argutil::u64_or(args, "n_bins", 60) as usize;
        let result = entk_analysis::wham(&samples, &temps, n_bins.max(2), 500);
        let targets: Vec<f64> = args
            .get("target_temps")
            .and_then(Value::as_array)
            .map(|a| a.iter().filter_map(Value::as_f64).collect())
            .unwrap_or_else(|| temps.clone());
        let mean_energies: Vec<f64> = targets.iter().map(|&t| result.mean_energy_at(t)).collect();
        let heat_capacities: Vec<f64> = targets
            .iter()
            .map(|&t| result.heat_capacity_at(t))
            .collect();
        Ok(json!({
            "target_temps": targets,
            "mean_energies": mean_energies,
            "heat_capacities": heat_capacities,
            "f_k": result.f_k,
            "residual": result.residual,
            "iterations": result.iterations,
            "modeled": false,
        }))
    }

    fn input_bytes(&self, args: &Value) -> u64 {
        argutil::u64_or(args, "n_samples", 10_000) * 8
    }
}

#[cfg(test)]
mod wham_kernel_tests {
    use super::*;

    #[test]
    fn wham_kernel_computes_observables() {
        // Energies scaling with temperature (like a real system).
        let samples: Vec<Vec<f64>> = [0.5, 1.0, 2.0]
            .iter()
            .map(|&t: &f64| {
                (0..2000)
                    .map(|i| t * (4.0 + ((i * 37) % 100) as f64 / 50.0))
                    .collect()
            })
            .collect();
        let out = WhamKernel
            .execute(&json!({
                "energy_samples": samples,
                "temperatures": [0.5, 1.0, 2.0],
                "target_temps": [0.75, 1.5],
            }))
            .unwrap();
        let means = out["mean_energies"].as_array().unwrap();
        assert_eq!(means.len(), 2);
        assert!(means[0].as_f64().unwrap() < means[1].as_f64().unwrap());
    }

    #[test]
    fn wham_kernel_validates_inputs() {
        assert!(WhamKernel.validate(&json!({})).is_err());
        assert!(WhamKernel
            .execute(&json!({ "energy_samples": [[1.0]], "temperatures": [1.0, 2.0] }))
            .is_err());
        assert!(WhamKernel
            .execute(&json!({ "energy_samples": [[]], "temperatures": [1.0] }))
            .is_err());
    }

    #[test]
    fn wham_cost_scales_with_samples() {
        let spec = PlatformSpec::supermic();
        let mut r = SimRng::seed_from_u64(1);
        let small = WhamKernel
            .cost(&json!({ "n_samples": 1000 }), 1, &spec, &mut r)
            .as_secs_f64();
        let large = WhamKernel
            .cost(&json!({ "n_samples": 1_000_000 }), 1, &spec, &mut r)
            .as_secs_f64();
        assert!(large > small + 10.0);
    }
}
