//! Utility kernels: `misc.mkfile`, `misc.ccount`, `misc.sleep`, `misc.stress`.
//!
//! `mkfile` and `ccount` are the two kernels of the paper's validation
//! application (Fig. 3): stage 1 creates a file per task, stage 2 counts the
//! characters in it.

use crate::plugin::{argutil, KernelError, KernelPlugin};
use entk_cluster::PlatformSpec;
use entk_sim::{SimDuration, SimRng};
use serde_json::{json, Value};
use std::io::{Read, Write};

/// Creates a file of `bytes` characters at `path` (real mode), or models a
/// constant-time file creation (simulated mode).
///
/// Args: `path` (string, real mode), `bytes` (u64, default 1024),
/// `base_secs` (f64 cost-model base, default 1.0).
#[derive(Debug, Default)]
pub struct MkfileKernel;

impl KernelPlugin for MkfileKernel {
    fn name(&self) -> &str {
        "misc.mkfile"
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let base = argutil::f64_or(args, "base_secs", 1.0);
        let bytes = argutil::u64_or(args, "bytes", 1024) as f64;
        let io = bytes / platform.fs_bandwidth;
        let jitter = 1.0 + 0.02 * rng.standard_normal();
        SimDuration::from_secs_f64((base / platform.perf_factor + io) * jitter.max(0.5))
    }

    fn execute_model(&self, args: &Value, _rng: &mut SimRng) -> Result<Value, KernelError> {
        let bytes = argutil::u64_or(args, "bytes", 1024);
        Ok(json!({ "bytes": bytes }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let path = argutil::str_req(args, "path")?;
        let bytes = argutil::u64_or(args, "bytes", 1024) as usize;
        let mut f = std::fs::File::create(path)
            .map_err(|e| KernelError::new(format!("mkfile {path:?}: {e}")))?;
        let chunk = vec![b'x'; 8192.min(bytes.max(1))];
        let mut written = 0;
        while written < bytes {
            let n = chunk.len().min(bytes - written);
            f.write_all(&chunk[..n])
                .map_err(|e| KernelError::new(format!("mkfile write: {e}")))?;
            written += n;
        }
        Ok(json!({ "bytes": written, "path": path }))
    }

    fn output_bytes(&self, args: &Value) -> u64 {
        argutil::u64_or(args, "bytes", 1024)
    }
}

/// Counts characters in a file (real mode) or reports the modelled size
/// (simulated mode).
///
/// Args: `path` (string, real mode), `bytes` (u64 model input, default 1024),
/// `base_secs` (f64, default 1.0).
#[derive(Debug, Default)]
pub struct CcountKernel;

impl KernelPlugin for CcountKernel {
    fn name(&self) -> &str {
        "misc.ccount"
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        platform: &PlatformSpec,
        rng: &mut SimRng,
    ) -> SimDuration {
        let base = argutil::f64_or(args, "base_secs", 1.0);
        let bytes = argutil::u64_or(args, "bytes", 1024) as f64;
        let io = bytes / platform.fs_bandwidth;
        let jitter = 1.0 + 0.02 * rng.standard_normal();
        SimDuration::from_secs_f64((base / platform.perf_factor + io) * jitter.max(0.5))
    }

    fn execute_model(&self, args: &Value, _rng: &mut SimRng) -> Result<Value, KernelError> {
        let bytes = argutil::u64_or(args, "bytes", 1024);
        Ok(json!({ "chars": bytes }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let path = argutil::str_req(args, "path")?;
        let mut f = std::fs::File::open(path)
            .map_err(|e| KernelError::new(format!("ccount {path:?}: {e}")))?;
        let mut buf = [0u8; 8192];
        let mut count: u64 = 0;
        loop {
            let n = f
                .read(&mut buf)
                .map_err(|e| KernelError::new(format!("ccount read: {e}")))?;
            if n == 0 {
                break;
            }
            count += n as u64;
        }
        Ok(json!({ "chars": count, "path": path }))
    }

    fn input_bytes(&self, args: &Value) -> u64 {
        argutil::u64_or(args, "bytes", 1024)
    }
}

/// Fixed-duration kernel for tests and calibration.
///
/// Args: `secs` (f64, required).
#[derive(Debug, Default)]
pub struct SleepKernel;

impl KernelPlugin for SleepKernel {
    fn name(&self) -> &str {
        "misc.sleep"
    }

    fn validate(&self, args: &Value) -> Result<(), KernelError> {
        argutil::f64_req(args, "secs").map(|_| ())
    }

    fn cost(
        &self,
        args: &Value,
        _cores: usize,
        _platform: &PlatformSpec,
        _rng: &mut SimRng,
    ) -> SimDuration {
        SimDuration::from_secs_f64(argutil::f64_or(args, "secs", 0.0))
    }

    fn execute_model(&self, args: &Value, _rng: &mut SimRng) -> Result<Value, KernelError> {
        Ok(json!({ "slept": argutil::f64_or(args, "secs", 0.0) }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let secs = argutil::f64_req(args, "secs")?;
        std::thread::sleep(std::time::Duration::from_secs_f64(secs.min(5.0)));
        Ok(json!({ "slept": secs }))
    }
}

/// CPU-burning kernel for local throughput experiments.
///
/// Args: `iters` (u64, default 1e6).
#[derive(Debug, Default)]
pub struct StressKernel;

impl KernelPlugin for StressKernel {
    fn name(&self) -> &str {
        "misc.stress"
    }

    fn cost(
        &self,
        args: &Value,
        cores: usize,
        platform: &PlatformSpec,
        _rng: &mut SimRng,
    ) -> SimDuration {
        let iters = argutil::u64_or(args, "iters", 1_000_000) as f64;
        // ~50 M simple float ops per second per modelled core.
        SimDuration::from_secs_f64(iters / (5e7 * platform.perf_factor * cores as f64))
    }

    fn execute_model(&self, args: &Value, _rng: &mut SimRng) -> Result<Value, KernelError> {
        Ok(json!({ "iters": argutil::u64_or(args, "iters", 1_000_000) }))
    }

    fn execute(&self, args: &Value) -> Result<Value, KernelError> {
        let iters = argutil::u64_or(args, "iters", 1_000_000);
        let mut acc = 0.0f64;
        for i in 0..iters {
            acc += ((i % 1000) as f64).sqrt();
        }
        Ok(json!({ "iters": iters, "acc": acc }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn mkfile_then_ccount_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("entk-kernels-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mkfile-roundtrip.txt");
        let path_s = path.to_str().unwrap();

        let out = MkfileKernel
            .execute(&json!({ "path": path_s, "bytes": 20_000 }))
            .unwrap();
        assert_eq!(out["bytes"], 20_000);

        let counted = CcountKernel.execute(&json!({ "path": path_s })).unwrap();
        assert_eq!(counted["chars"], 20_000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ccount_missing_file_fails() {
        let err = CcountKernel
            .execute(&json!({ "path": "/nonexistent/entk/file" }))
            .unwrap_err();
        assert!(err.0.contains("ccount"));
    }

    #[test]
    fn mkfile_model_matches_bytes() {
        let out = MkfileKernel
            .execute_model(&json!({ "bytes": 4096 }), &mut rng())
            .unwrap();
        assert_eq!(out["bytes"], 4096);
    }

    #[test]
    fn costs_are_near_base_and_platform_scaled() {
        let comet = PlatformSpec::comet();
        let mut r = rng();
        let c = MkfileKernel
            .cost(&json!({ "base_secs": 2.0 }), 1, &comet, &mut r)
            .as_secs_f64();
        assert!((c - 2.0).abs() < 0.3, "cost {c}");
        // Slower platform (perf_factor < 1) costs more.
        let supermic = PlatformSpec::supermic();
        let c2 = CcountKernel
            .cost(&json!({ "base_secs": 2.0 }), 1, &supermic, &mut r)
            .as_secs_f64();
        assert!(c2 > 2.0, "cost {c2}");
    }

    #[test]
    fn sleep_validates_and_models() {
        assert!(SleepKernel.validate(&json!({})).is_err());
        assert!(SleepKernel.validate(&json!({ "secs": 3.0 })).is_ok());
        let d = SleepKernel.cost(
            &json!({ "secs": 3.0 }),
            1,
            &PlatformSpec::comet(),
            &mut rng(),
        );
        assert_eq!(d, SimDuration::from_secs(3));
    }

    #[test]
    fn stress_cost_scales_inverse_with_cores() {
        let comet = PlatformSpec::comet();
        let mut r = rng();
        let args = json!({ "iters": 100_000_000u64 });
        let c1 = StressKernel.cost(&args, 1, &comet, &mut r).as_secs_f64();
        let c4 = StressKernel.cost(&args, 4, &comet, &mut r).as_secs_f64();
        assert!((c1 / c4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stress_executes_real_work() {
        let out = StressKernel
            .execute(&json!({ "iters": 10_000u64 }))
            .unwrap();
        assert!(out["acc"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn staging_sizes_follow_bytes() {
        assert_eq!(MkfileKernel.output_bytes(&json!({ "bytes": 555 })), 555);
        assert_eq!(CcountKernel.input_bytes(&json!({ "bytes": 777 })), 777);
    }
}
