//! # entk-cluster — discrete-event HPC cluster model
//!
//! Simulates the batch machines the paper ran on (XSEDE Comet and Stampede,
//! LSU SuperMIC): nodes and cores, a batch queue with FIFO or EASY-backfill
//! scheduling, modelled queue-wait / startup / per-task-launch overheads,
//! and a shared-filesystem transfer model. The pilot runtime (`entk-pilot`)
//! acquires resources here through the SAGA layer (`entk-saga`).

#![warn(missing_docs)]

pub mod allocation;
pub mod cluster;
pub mod fairshare;
pub mod fault;
pub mod job;
pub mod platform;
pub mod scheduler;

pub use allocation::{AllocationMap, NodeSlice};
pub use cluster::BackgroundLoad;
pub use cluster::{Cluster, ClusterEvent, ClusterNotification};
pub use fairshare::UsageLedger;
pub use fault::{FaultInjector, FaultProfile};
pub use job::{BatchJob, BatchJobDescription, BatchJobId, BatchJobState};
pub use platform::PlatformSpec;
pub use scheduler::{
    BatchScheduler, EasyBackfillScheduler, FairShareScheduler, FifoScheduler, PendingView,
    PriorityAgingScheduler, RoundRobinScheduler, RunningView, SchedulerFactory, SjfScheduler,
};
