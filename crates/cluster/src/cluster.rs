//! The cluster simulation entity: batch queue + allocation + lifecycle events.
//!
//! `Cluster` is a state machine advanced by [`ClusterEvent`]s delivered from
//! the discrete-event engine. It is generic over the driver's top-level
//! event type `E: From<ClusterEvent>` so higher layers (SAGA adapter, pilot
//! runtime) can embed it without coupling.

use crate::allocation::{AllocationMap, NodeSlice};
use crate::fault::{FaultInjector, FaultProfile};
use crate::job::{BatchJob, BatchJobDescription, BatchJobId, BatchJobState};
use crate::platform::PlatformSpec;
use crate::scheduler::{BatchScheduler, FifoScheduler, PendingView, RunningView};
use entk_sim::{
    Arena, Context, Dist, EventId, GenId, SharedTelemetry, SimDuration, SimRng, SimTime, Subject,
    TimeSeries,
};
use serde::{Deserialize, Serialize};

/// Events the cluster schedules for itself on the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A job's modelled queue wait elapsed; it may now be scheduled.
    JobEligible(BatchJobId),
    /// A job's startup (prologue) finished; its payload is now running.
    JobLaunched(BatchJobId),
    /// A job hit its requested wall time.
    WalltimeExpired(BatchJobId),
    /// Re-run the scheduling pass.
    Kick,
    /// A synthetic competing job arrives (background-load model).
    BackgroundArrival,
    /// Fault injection: the given node crashes (scheduled crashes).
    NodeCrash(usize),
    /// Fault injection: a crashed node comes back up.
    NodeRecover(usize),
    /// Fault injection: the Poisson crash process fires (picks a victim).
    FaultTick,
}

/// Synthetic competing workload: other users' jobs arriving on a Poisson
/// process, creating genuine queue contention for pilot jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundLoad {
    /// Mean inter-arrival time in seconds (exponential).
    pub mean_interarrival_secs: f64,
    /// Core request distribution of competing jobs.
    pub cores: Dist,
    /// Runtime distribution of competing jobs (they run to completion).
    pub runtime: Dist,
    /// Competing jobs already in the queue when the load is enabled — the
    /// machine is rarely empty when a pilot arrives.
    pub initial_jobs: usize,
}

/// State changes reported to the cluster's owner (the SAGA adapter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterNotification {
    /// Job changed state; `nodes` is populated on entering `Running`.
    JobState {
        /// The job.
        id: BatchJobId,
        /// New state.
        state: BatchJobState,
        /// When the change happened.
        time: SimTime,
        /// Assigned node slices (Running only).
        nodes: Vec<NodeSlice>,
    },
    /// A node crash took cores away from a still-running job.
    JobShrunk {
        /// The job.
        id: BatchJobId,
        /// Cores lost to the crash.
        lost_cores: usize,
        /// Cores the job still holds.
        remaining_cores: usize,
        /// When the crash happened.
        time: SimTime,
    },
}

impl ClusterNotification {
    /// The job the notification concerns.
    pub fn job_id(&self) -> BatchJobId {
        match *self {
            ClusterNotification::JobState { id, .. } => id,
            ClusterNotification::JobShrunk { id, .. } => id,
        }
    }
}

/// Per-job runtime bookkeeping, parallel to the `jobs` slab (same index).
#[derive(Debug, Clone, Copy, Default)]
struct JobRuntime {
    /// Handle to the job's node slices in `held` while it occupies cores.
    /// The arena slot is freed (generation bumped) when the job ends, so a
    /// handle that outlives the job goes stale instead of aliasing the next
    /// occupant.
    held: Option<GenId>,
    /// Cancel handle for the job's pending walltime event.
    walltime_event: Option<EventId>,
    /// Synthetic background-load job, invisible to the owner.
    background: bool,
}

/// A simulated HPC cluster.
pub struct Cluster {
    spec: PlatformSpec,
    alloc: AllocationMap,
    scheduler: Box<dyn BatchScheduler>,
    rng: SimRng,
    /// Job slab: `BatchJobId`s are dense and sequential, so index == id.
    jobs: Vec<BatchJob>,
    /// Runtime bookkeeping parallel to `jobs`.
    job_rt: Vec<JobRuntime>,
    /// Eligible jobs in arrival order (indices into `jobs`).
    pending: Vec<BatchJobId>,
    /// Node slices of starting/running jobs. Slots are genuinely recycled
    /// as jobs come and go, hence the generational arena.
    held: Arena<Vec<NodeSlice>>,
    /// Jobs currently holding an allocation, in the order they started.
    /// Replaces hash-map key iteration, whose order was nondeterministic.
    running_order: Vec<BatchJobId>,
    next_id: u64,
    utilization: TimeSeries,
    background: Option<BackgroundLoad>,
    fault: Option<FaultInjector>,
    /// A [`ClusterEvent::FaultTick`] is currently in flight. The Poisson
    /// crash process only runs while the cluster has live jobs, so the
    /// event queue drains once the workload finishes.
    fault_tick_armed: bool,
    /// Cross-layer observability sink; disabled by default.
    telemetry: SharedTelemetry,
}

impl Cluster {
    /// Creates a cluster with the default FIFO policy.
    pub fn new(spec: PlatformSpec, seed: u64) -> Self {
        Self::with_scheduler(spec, seed, Box::new(FifoScheduler))
    }

    /// Creates a cluster with an explicit scheduling policy.
    pub fn with_scheduler(
        spec: PlatformSpec,
        seed: u64,
        scheduler: Box<dyn BatchScheduler>,
    ) -> Self {
        let alloc = AllocationMap::new(spec.nodes, spec.cores_per_node);
        Cluster {
            spec,
            alloc,
            scheduler,
            rng: SimRng::seed_from_u64(seed),
            jobs: Vec::new(),
            job_rt: Vec::new(),
            pending: Vec::new(),
            held: Arena::new(),
            running_order: Vec::new(),
            next_id: 0,
            utilization: TimeSeries::new(),
            background: None,
            fault: None,
            fault_tick_armed: false,
            telemetry: SharedTelemetry::disabled(),
        }
    }

    /// Attaches a shared telemetry pipeline; the cluster then traces job
    /// and node lifecycle events on the `"cluster"` layer and samples
    /// utilization / queue-depth gauges into it.
    pub fn set_telemetry(&mut self, telemetry: SharedTelemetry) {
        self.telemetry = telemetry;
    }

    /// Enables the background-load model and schedules the first arrival.
    /// Background jobs are invisible to the owner except through the queue
    /// contention they create.
    pub fn enable_background_load<E: From<ClusterEvent>>(
        &mut self,
        load: BackgroundLoad,
        ctx: &mut Context<'_, E>,
    ) {
        self.background = Some(load);
        for _ in 0..load.initial_jobs {
            self.submit_background(ctx);
        }
        let gap = self.rng.exponential(load.mean_interarrival_secs.max(1e-6));
        ctx.schedule_in(
            SimDuration::from_secs_f64(gap),
            ClusterEvent::BackgroundArrival,
        );
    }

    fn submit_background<E: From<ClusterEvent>>(&mut self, ctx: &mut Context<'_, E>) {
        let Some(load) = self.background else { return };
        let cores =
            (load.cores.sample(&mut self.rng).round() as usize).clamp(1, self.alloc.total_cores());
        let runtime = SimDuration::from_secs_f64(load.runtime.sample(&mut self.rng).max(1.0));
        let desc = BatchJobDescription {
            name: "background".into(),
            cores,
            walltime: runtime,
            queue: "normal".into(),
            project: "other-users".into(),
        };
        // Background jobs run to their walltime and die there; the owner
        // never sees their notifications (filtered by id).
        let mut sink = Vec::new();
        if let Ok(id) = self.submit(desc, ctx, &mut sink) {
            self.job_rt[id.0 as usize].background = true;
        }
    }

    /// Stops generating new background arrivals (already-queued background
    /// jobs still run to completion).
    pub fn disable_background_load(&mut self) {
        self.background = None;
    }

    /// Enables deterministic fault injection: schedules the profile's
    /// scripted node crashes (relative to now) and, when an MTBF is set,
    /// arms the Poisson crash process. The process only ticks while the
    /// cluster has live jobs — it re-arms on submission and disarms when
    /// the workload finishes, so the event queue always drains. A profile
    /// with all rates zero and an empty schedule installs an injector that
    /// draws nothing and schedules nothing, leaving the run byte-identical
    /// to no injector at all.
    pub fn enable_fault_injector<E: From<ClusterEvent>>(
        &mut self,
        profile: FaultProfile,
        ctx: &mut Context<'_, E>,
    ) {
        for &(secs, node) in &profile.crash_schedule {
            ctx.schedule_in(
                SimDuration::from_secs_f64(secs.max(0.0)),
                ClusterEvent::NodeCrash(node),
            );
        }
        self.fault = Some(FaultInjector::new(profile));
        self.arm_fault_tick(ctx);
    }

    /// Schedules the next Poisson crash tick if one isn't in flight, the
    /// profile has an MTBF, there is a live job to disturb, and at least
    /// one node is still up. No-op (and no RNG draw) otherwise.
    fn arm_fault_tick<E: From<ClusterEvent>>(&mut self, ctx: &mut Context<'_, E>) {
        if self.fault_tick_armed || !self.has_live_jobs() || !self.any_node_up() {
            return;
        }
        if let Some(gap) = self.fault.as_mut().and_then(|f| f.next_crash_gap()) {
            ctx.schedule_in(gap, ClusterEvent::FaultTick);
            self.fault_tick_armed = true;
        }
    }

    fn has_live_jobs(&self) -> bool {
        self.jobs.iter().any(|j| !j.state.is_terminal())
    }

    fn any_node_up(&self) -> bool {
        (0..self.alloc.nodes()).any(|n| !self.alloc.is_down(n))
    }

    /// The active fault profile, if any.
    pub fn fault_profile(&self) -> Option<&FaultProfile> {
        self.fault.as_ref().map(|f| f.profile())
    }

    /// Draws whether the unit execution being started fails (consulted by
    /// the pilot runtime). `false` without a draw when no injector is
    /// active or its task-failure rate is zero.
    pub fn fault_unit_fails(&mut self) -> bool {
        self.fault.as_mut().is_some_and(|f| f.unit_fails())
    }

    /// Draws the straggler slowdown multiplier for the unit execution being
    /// started. Exactly `1.0` without a draw when no injector is active or
    /// its straggler rate is zero.
    pub fn fault_straggler_factor(&mut self) -> f64 {
        self.fault.as_mut().map_or(1.0, |f| f.straggler_factor())
    }

    /// True when `id` is a synthetic background job.
    pub fn is_background(&self, id: BatchJobId) -> bool {
        self.job_rt.get(id.0 as usize).is_some_and(|r| r.background)
    }

    /// The machine description.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Core-utilization samples collected at every allocation change.
    pub fn utilization(&self) -> &TimeSeries {
        &self.utilization
    }

    /// Read access to a job's record.
    pub fn job(&self, id: BatchJobId) -> Option<&BatchJob> {
        self.jobs.get(id.0 as usize)
    }

    /// Currently free cores.
    pub fn free_cores(&self) -> usize {
        self.alloc.free_cores()
    }

    /// Samples the time to move `bytes` over the shared filesystem.
    pub fn transfer_duration(&mut self, bytes: u64) -> SimDuration {
        let latency = self.spec.fs_latency.sample(&mut self.rng);
        let xfer = bytes as f64 / self.spec.fs_bandwidth;
        SimDuration::from_secs_f64(latency + xfer)
    }

    /// Samples the per-task launch overhead paid by an agent on this machine.
    pub fn sample_task_launch(&mut self) -> SimDuration {
        self.spec.task_launch.sample_duration(&mut self.rng)
    }

    /// Submits a batch job. Returns an error (and records a `Failed` job)
    /// when the request can never fit the machine.
    pub fn submit<E: From<ClusterEvent>>(
        &mut self,
        description: BatchJobDescription,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) -> Result<BatchJobId, String> {
        let id = BatchJobId(self.next_id);
        self.next_id += 1;
        debug_assert_eq!(id.0 as usize, self.jobs.len(), "job ids are dense");
        let mut job = BatchJob::new(id, description, ctx.now());
        if job.description.cores == 0 || job.description.cores > self.alloc.total_cores() {
            let msg = format!(
                "job {} requests {} cores; machine {} has {}",
                id,
                job.description.cores,
                self.spec.name,
                self.alloc.total_cores()
            );
            job.transition(BatchJobState::Failed, ctx.now());
            self.telemetry
                .record(ctx.now(), "cluster", "job_rejected", Subject::Job(id.0));
            out.push(ClusterNotification::JobState {
                id,
                state: BatchJobState::Failed,
                time: ctx.now(),
                nodes: Vec::new(),
            });
            self.jobs.push(job);
            self.job_rt.push(JobRuntime::default());
            return Err(msg);
        }
        let wait = self.spec.queue_wait.sample_duration(&mut self.rng)
            + entk_sim::SimDuration::from_secs_f64(
                self.spec.queue_wait_per_core * job.description.cores as f64,
            );
        ctx.schedule_in(wait, ClusterEvent::JobEligible(id));
        self.telemetry
            .record(ctx.now(), "cluster", "job_queued", Subject::Job(id.0));
        out.push(ClusterNotification::JobState {
            id,
            state: BatchJobState::Queued,
            time: ctx.now(),
            nodes: Vec::new(),
        });
        self.jobs.push(job);
        self.job_rt.push(JobRuntime::default());
        self.arm_fault_tick(ctx);
        self.strip_background(out);
        Ok(id)
    }

    /// Owner-initiated completion of a running job (the pilot finished its
    /// work and releases the allocation early).
    pub fn complete<E: From<ClusterEvent>>(
        &mut self,
        id: BatchJobId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        self.finish(id, BatchJobState::Completed, ctx, out);
        self.strip_background(out);
    }

    /// Owner-initiated cancellation from any non-terminal state.
    pub fn cancel<E: From<ClusterEvent>>(
        &mut self,
        id: BatchJobId,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        let Some(job) = self.jobs.get(id.0 as usize) else {
            return;
        };
        match job.state {
            BatchJobState::Queued => {
                self.pending.retain(|&p| p != id);
                self.telemetry
                    .gauge("cluster.queue_depth", ctx.now(), self.pending.len() as f64);
                let job = &mut self.jobs[id.0 as usize];
                job.transition(BatchJobState::Cancelled, ctx.now());
                self.telemetry
                    .record(ctx.now(), "cluster", "job_cancelled", Subject::Job(id.0));
                out.push(ClusterNotification::JobState {
                    id,
                    state: BatchJobState::Cancelled,
                    time: ctx.now(),
                    nodes: Vec::new(),
                });
            }
            BatchJobState::Starting | BatchJobState::Running => {
                self.finish(id, BatchJobState::Cancelled, ctx, out);
            }
            _ => {}
        }
        self.strip_background(out);
    }

    /// Handles one of this cluster's own events.
    pub fn handle<E: From<ClusterEvent>>(
        &mut self,
        event: ClusterEvent,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        match event {
            ClusterEvent::JobEligible(id) => {
                if self
                    .jobs
                    .get(id.0 as usize)
                    .is_some_and(|j| j.state == BatchJobState::Queued)
                {
                    let job = &mut self.jobs[id.0 as usize];
                    job.eligible_at = Some(ctx.now());
                    self.pending.push(id);
                    self.telemetry.gauge(
                        "cluster.queue_depth",
                        ctx.now(),
                        self.pending.len() as f64,
                    );
                    self.try_schedule(ctx, out);
                }
            }
            ClusterEvent::JobLaunched(id) => {
                if self
                    .jobs
                    .get(id.0 as usize)
                    .is_some_and(|j| j.state == BatchJobState::Starting)
                {
                    let job = &mut self.jobs[id.0 as usize];
                    job.transition(BatchJobState::Running, ctx.now());
                    self.telemetry
                        .record(ctx.now(), "cluster", "job_running", Subject::Job(id.0));
                    let nodes = self.job_rt[id.0 as usize]
                        .held
                        .and_then(|h| self.held.get(h))
                        .cloned()
                        .unwrap_or_default();
                    out.push(ClusterNotification::JobState {
                        id,
                        state: BatchJobState::Running,
                        time: ctx.now(),
                        nodes,
                    });
                }
            }
            ClusterEvent::WalltimeExpired(id) => {
                let live = self.jobs.get(id.0 as usize).is_some_and(|j| {
                    matches!(j.state, BatchJobState::Starting | BatchJobState::Running)
                });
                if live {
                    self.finish(id, BatchJobState::TimedOut, ctx, out);
                }
            }
            ClusterEvent::Kick => {
                self.try_schedule(ctx, out);
            }
            ClusterEvent::BackgroundArrival => {
                let Some(load) = self.background else { return };
                self.submit_background(ctx);
                let gap = self.rng.exponential(load.mean_interarrival_secs.max(1e-6));
                ctx.schedule_in(
                    SimDuration::from_secs_f64(gap),
                    ClusterEvent::BackgroundArrival,
                );
            }
            ClusterEvent::NodeCrash(node) => {
                self.crash_node(node, ctx, out);
            }
            ClusterEvent::NodeRecover(node) => {
                self.recover_node(node, ctx, out);
            }
            ClusterEvent::FaultTick => {
                self.fault_tick_armed = false;
                let nodes = self.alloc.nodes();
                let victim = self.fault.as_mut().and_then(|f| f.pick_victim(nodes));
                if let Some(node) = victim {
                    self.crash_node(node, ctx, out);
                }
                self.arm_fault_tick(ctx);
            }
        }
        self.strip_background(out);
    }

    /// Crashes a node: its cores leave the machine, every batch job holding
    /// cores there loses them — shrinking the job, or failing it outright
    /// when nothing remains — and recovery is scheduled when the fault
    /// profile's downtime distribution yields a positive sample.
    fn crash_node<E: From<ClusterEvent>>(
        &mut self,
        node: usize,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        if node >= self.alloc.nodes() || self.alloc.is_down(node) {
            return;
        }
        if let Some(f) = self.fault.as_mut() {
            f.note_down(node);
        }
        self.alloc.mark_down(node);
        self.telemetry.record(
            ctx.now(),
            "cluster",
            "node_crash",
            Subject::Node(node as u64),
        );
        self.telemetry.inc("cluster.node_crashes");
        // Strip the crashed node's slices from every job holding cores
        // there, in id order so the notification sequence is deterministic.
        let mut affected: Vec<BatchJobId> = self
            .running_order
            .iter()
            .copied()
            .filter(|&id| {
                let held = self.job_rt[id.0 as usize]
                    .held
                    .expect("running job holds an allocation");
                self.held[held].iter().any(|s| s.node == node)
            })
            .collect();
        affected.sort_unstable();
        for id in affected {
            let held = self.job_rt[id.0 as usize]
                .held
                .expect("affected job is held");
            let slices = &mut self.held[held];
            let lost: usize = slices
                .iter()
                .filter(|s| s.node == node)
                .map(|s| s.cores)
                .sum();
            slices.retain(|s| s.node != node);
            let remaining: usize = slices.iter().map(|s| s.cores).sum();
            let job = &mut self.jobs[id.0 as usize];
            job.nodes.retain(|&n| n != node);
            if remaining == 0 {
                self.finish(id, BatchJobState::Failed, ctx, out);
            } else {
                self.telemetry
                    .record(ctx.now(), "cluster", "job_shrunk", Subject::Job(id.0));
                out.push(ClusterNotification::JobShrunk {
                    id,
                    lost_cores: lost,
                    remaining_cores: remaining,
                    time: ctx.now(),
                });
            }
        }
        self.utilization
            .push(ctx.now(), self.alloc.used_cores() as f64);
        self.telemetry.gauge(
            "cluster.used_cores",
            ctx.now(),
            self.alloc.used_cores() as f64,
        );
        let downtime = self.fault.as_mut().and_then(|f| f.sample_downtime());
        if let Some(dt) = downtime {
            ctx.schedule_in(dt, ClusterEvent::NodeRecover(node));
        }
    }

    /// Brings a crashed node back: its full capacity rejoins the free pool
    /// and a scheduling pass runs for anything waiting on it.
    fn recover_node<E: From<ClusterEvent>>(
        &mut self,
        node: usize,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        if node >= self.alloc.nodes() || !self.alloc.is_down(node) {
            return;
        }
        if let Some(f) = self.fault.as_mut() {
            f.note_up(node);
        }
        self.alloc.mark_up(node);
        self.telemetry.record(
            ctx.now(),
            "cluster",
            "node_recover",
            Subject::Node(node as u64),
        );
        self.utilization
            .push(ctx.now(), self.alloc.used_cores() as f64);
        self.try_schedule(ctx, out);
        self.arm_fault_tick(ctx);
    }

    /// Removes notifications about background jobs (owner never sees them).
    fn strip_background(&self, out: &mut Vec<ClusterNotification>) {
        out.retain(|n| !self.is_background(n.job_id()));
    }

    fn finish<E: From<ClusterEvent>>(
        &mut self,
        id: BatchJobId,
        state: BatchJobState,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        let Some(job) = self.jobs.get_mut(id.0 as usize) else {
            return;
        };
        if !job.state.can_transition_to(state) {
            return;
        }
        job.transition(state, ctx.now());
        let project = job.description.project.clone();
        let cores = job.description.cores;
        let walltime = job.description.walltime;
        let started_at = job.started_at;
        let held = self.job_rt[id.0 as usize].held.take();
        if let Some(slices) = held.and_then(|h| self.held.remove(h)) {
            self.running_order.retain(|&r| r != id);
            self.alloc.release(&slices);
            self.utilization
                .push(ctx.now(), self.alloc.used_cores() as f64);
            self.telemetry.gauge(
                "cluster.used_cores",
                ctx.now(),
                self.alloc.used_cores() as f64,
            );
            // The job actually occupied cores: let stateful policies
            // reconcile their up-front charge with real consumption.
            let ran = ctx.now().saturating_since(started_at.unwrap_or(ctx.now()));
            self.scheduler
                .job_ended(&project, cores, walltime, ran, ctx.now());
        }
        if let Some(ev) = self.job_rt[id.0 as usize].walltime_event.take() {
            ctx.cancel(ev);
        }
        let event = match state {
            BatchJobState::Completed => "job_completed",
            BatchJobState::Failed => "job_failed",
            BatchJobState::TimedOut => "job_timedout",
            BatchJobState::Cancelled => "job_cancelled",
            _ => "job_finished",
        };
        self.telemetry
            .record(ctx.now(), "cluster", event, Subject::Job(id.0));
        out.push(ClusterNotification::JobState {
            id,
            state,
            time: ctx.now(),
            nodes: Vec::new(),
        });
        self.try_schedule(ctx, out);
    }

    fn try_schedule<E: From<ClusterEvent>>(
        &mut self,
        ctx: &mut Context<'_, E>,
        out: &mut Vec<ClusterNotification>,
    ) {
        if self.pending.is_empty() {
            return;
        }
        let queue: Vec<PendingView> = self
            .pending
            .iter()
            .map(|id| {
                let j = &self.jobs[id.0 as usize];
                PendingView {
                    cores: j.description.cores,
                    walltime: j.description.walltime,
                    project: j.description.project.clone(),
                    submitted: j.submitted_at,
                }
            })
            .collect();
        // Start order: deterministic, unlike the hash-map key iteration
        // this replaces.
        let running: Vec<RunningView> = self
            .running_order
            .iter()
            .map(|id| {
                let j = &self.jobs[id.0 as usize];
                RunningView {
                    cores: j.description.cores,
                    expected_end: j.started_at.unwrap_or(SimTime::ZERO) + j.description.walltime,
                }
            })
            .collect();
        let mut picked =
            self.scheduler
                .select(&queue, self.alloc.free_cores(), ctx.now(), &running);
        picked.sort_unstable();
        // Remove back-to-front so indices stay valid.
        for &qi in picked.iter().rev() {
            let id = self.pending.remove(qi);
            let job = &mut self.jobs[id.0 as usize];
            let slices = self
                .alloc
                .allocate(job.description.cores)
                .expect("scheduler selected a job that fits");
            job.nodes = slices.iter().map(|s| s.node).collect();
            job.transition(BatchJobState::Starting, ctx.now());
            self.job_rt[id.0 as usize].held = Some(self.held.insert(slices));
            self.running_order.push(id);
            self.utilization
                .push(ctx.now(), self.alloc.used_cores() as f64);
            self.telemetry
                .record(ctx.now(), "cluster", "job_started", Subject::Job(id.0));
            self.telemetry.gauge(
                "cluster.used_cores",
                ctx.now(),
                self.alloc.used_cores() as f64,
            );
            self.telemetry
                .gauge("cluster.queue_depth", ctx.now(), self.pending.len() as f64);
            let startup = self.spec.job_startup.sample_duration(&mut self.rng);
            ctx.schedule_in(startup, ClusterEvent::JobLaunched(id));
            let wt = ctx.schedule_in(
                startup + self.jobs[id.0 as usize].description.walltime,
                ClusterEvent::WalltimeExpired(id),
            );
            self.job_rt[id.0 as usize].walltime_event = Some(wt);
            out.push(ClusterNotification::JobState {
                id,
                state: BatchJobState::Starting,
                time: ctx.now(),
                nodes: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entk_sim::Engine;

    /// Drives a cluster to completion, collecting all notifications.
    fn drive(
        spec: PlatformSpec,
        jobs: Vec<BatchJobDescription>,
        complete_after: SimDuration,
    ) -> Vec<(BatchJobId, BatchJobState, SimTime)> {
        #[derive(Debug)]
        enum Ev {
            Cluster(ClusterEvent),
            CompletePilot(BatchJobId),
        }
        impl From<ClusterEvent> for Ev {
            fn from(e: ClusterEvent) -> Ev {
                Ev::Cluster(e)
            }
        }
        let mut cluster = Cluster::new(spec, 42);
        let mut engine: Engine<Ev> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        // Submit everything at t=0 via a bootstrap pass.
        let mut submitted = false;
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !submitted {
                submitted = true;
                for d in jobs.clone() {
                    cluster.submit(d, ctx, &mut out).unwrap();
                }
            }
            match ev {
                Ev::Cluster(ce) => cluster.handle(ce, ctx, &mut out),
                Ev::CompletePilot(id) => cluster.complete(id, ctx, &mut out),
            }
            for n in out {
                let ClusterNotification::JobState {
                    id, state, time, ..
                } = n
                else {
                    continue;
                };
                if state == BatchJobState::Running {
                    ctx.schedule_in(complete_after, Ev::CompletePilot(id));
                }
                log.push((id, state, time));
            }
        });
        log
    }

    fn small_spec() -> PlatformSpec {
        let mut s = PlatformSpec::local(2, 4); // 8 cores
        s.job_startup = entk_sim::Dist::Constant(1.0);
        s
    }

    #[test]
    fn single_job_full_lifecycle() {
        let log = drive(
            small_spec(),
            vec![BatchJobDescription::new(
                "p",
                4,
                SimDuration::from_secs(100),
            )],
            SimDuration::from_secs(10),
        );
        let states: Vec<_> = log.iter().map(|(_, s, _)| *s).collect();
        assert_eq!(
            states,
            vec![
                BatchJobState::Queued,
                BatchJobState::Starting,
                BatchJobState::Running,
                BatchJobState::Completed
            ]
        );
        // startup 1 s, payload 10 s.
        assert_eq!(log[3].2, SimTime::from_secs(11));
    }

    #[test]
    fn jobs_queue_when_machine_is_full() {
        // Two 8-core jobs on an 8-core machine: strictly serialized.
        let log = drive(
            small_spec(),
            vec![
                BatchJobDescription::new("a", 8, SimDuration::from_secs(100)),
                BatchJobDescription::new("b", 8, SimDuration::from_secs(100)),
            ],
            SimDuration::from_secs(10),
        );
        let completed: Vec<_> = log
            .iter()
            .filter(|(_, s, _)| *s == BatchJobState::Completed)
            .collect();
        assert_eq!(completed.len(), 2);
        assert!(completed[1].2 > completed[0].2);
        assert_eq!(completed[1].2, SimTime::from_secs(22)); // 1+10 then 1+10 again
    }

    #[test]
    fn walltime_kills_overrunning_job() {
        let log = drive(
            small_spec(),
            vec![BatchJobDescription::new("p", 4, SimDuration::from_secs(5))],
            SimDuration::from_secs(60), // completes only after walltime
        );
        assert!(log.iter().any(|(_, s, _)| *s == BatchJobState::TimedOut));
        assert!(!log.iter().any(|(_, s, _)| *s == BatchJobState::Completed));
    }

    #[test]
    fn oversized_job_fails_at_submit() {
        #[derive(Debug)]
        struct Ev(ClusterEvent);
        impl From<ClusterEvent> for Ev {
            fn from(e: ClusterEvent) -> Ev {
                Ev(e)
            }
        }
        let mut cluster = Cluster::new(small_spec(), 1);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev(ClusterEvent::Kick));
        let mut failed = false;
        engine.run(|Ev(ce), ctx| {
            let mut out = Vec::new();
            if !failed {
                failed = true;
                let res = cluster.submit(
                    BatchJobDescription::new("huge", 1000, SimDuration::from_secs(1)),
                    ctx,
                    &mut out,
                );
                assert!(res.is_err());
                assert!(matches!(
                    out[0],
                    ClusterNotification::JobState {
                        state: BatchJobState::Failed,
                        ..
                    }
                ));
            }
            cluster.handle(ce, ctx, &mut Vec::new());
        });
        assert!(failed);
    }

    #[test]
    fn cancel_queued_job_never_runs() {
        #[derive(Debug)]
        enum Ev {
            Cluster(ClusterEvent),
            CancelB,
        }
        impl From<ClusterEvent> for Ev {
            fn from(e: ClusterEvent) -> Ev {
                Ev::Cluster(e)
            }
        }
        let mut cluster = Cluster::new(small_spec(), 7);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut b_id = None;
        let mut boot = false;
        let mut log = Vec::new();
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !boot {
                boot = true;
                // a fills the machine; b waits in queue and is cancelled.
                cluster
                    .submit(
                        BatchJobDescription::new("a", 8, SimDuration::from_secs(100)),
                        ctx,
                        &mut out,
                    )
                    .unwrap();
                b_id = Some(
                    cluster
                        .submit(
                            BatchJobDescription::new("b", 8, SimDuration::from_secs(100)),
                            ctx,
                            &mut out,
                        )
                        .unwrap(),
                );
                ctx.schedule_in(SimDuration::from_secs(2), Ev::CancelB);
            }
            match ev {
                Ev::Cluster(ce) => cluster.handle(ce, ctx, &mut out),
                Ev::CancelB => cluster.cancel(b_id.unwrap(), ctx, &mut out),
            }
            log.extend(out);
        });
        let b = b_id.unwrap();
        let b_states: Vec<_> = log
            .iter()
            .filter_map(|n| match n {
                ClusterNotification::JobState { id, state, .. } => (*id == b).then_some(*state),
                _ => None,
            })
            .collect();
        assert_eq!(
            b_states,
            vec![BatchJobState::Queued, BatchJobState::Cancelled]
        );
    }

    #[test]
    fn utilization_series_tracks_allocations() {
        let mut spec = small_spec();
        spec.queue_wait = entk_sim::Dist::ZERO;
        let log = drive(
            spec,
            vec![BatchJobDescription::new(
                "p",
                8,
                SimDuration::from_secs(100),
            )],
            SimDuration::from_secs(10),
        );
        assert!(!log.is_empty());
    }
}

#[cfg(test)]
mod background_tests {
    use super::*;
    use entk_sim::{Dist, Engine};

    #[derive(Debug)]
    enum Ev {
        Cluster(ClusterEvent),
        CompletePilot(BatchJobId),
    }
    impl From<ClusterEvent> for Ev {
        fn from(e: ClusterEvent) -> Ev {
            Ev::Cluster(e)
        }
    }

    /// Submits one owner job onto a (possibly contended) cluster; returns
    /// its queue wait and all owner-visible notifications.
    fn queue_wait_with_load(load: Option<BackgroundLoad>) -> (f64, usize) {
        let mut spec = PlatformSpec::local(4, 8); // 32 cores
        spec.job_startup = entk_sim::Dist::Constant(1.0);
        let mut cluster = Cluster::new(spec, 11);
        let mut engine: Engine<Ev> = Engine::new();
        // t = 0: enable the load; t = 600: submit the owner's pilot, after
        // contention has built up.
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        engine.schedule_in(SimDuration::from_secs(600), Ev::Cluster(ClusterEvent::Kick));
        let mut booted = false;
        let mut owner_id = None;
        let mut started_at = None;
        let mut notes_seen = 0usize;
        // The background generator never drains the queue: bound the run.
        engine.run_bounded(
            200_000,
            entk_sim::SimTime::from_secs(5_000),
            &mut |ev, ctx| {
                let mut out = Vec::new();
                if !booted {
                    booted = true;
                    if let Some(l) = load {
                        cluster.enable_background_load(l, ctx);
                    }
                    return; // t = 0 bootstrap event consumed
                }
                match ev {
                    Ev::Cluster(ClusterEvent::Kick)
                        if owner_id.is_none() && ctx.now() >= entk_sim::SimTime::from_secs(600) =>
                    {
                        owner_id = Some(
                            cluster
                                .submit(
                                    BatchJobDescription::new(
                                        "pilot",
                                        24,
                                        SimDuration::from_secs(10_000),
                                    ),
                                    ctx,
                                    &mut out,
                                )
                                .unwrap(),
                        );
                        cluster.handle(ClusterEvent::Kick, ctx, &mut out);
                    }
                    Ev::Cluster(ce) => cluster.handle(ce, ctx, &mut out),
                    Ev::CompletePilot(id) => cluster.complete(id, ctx, &mut out),
                }
                notes_seen += out.len();
                for n in out {
                    let ClusterNotification::JobState {
                        id, state, time, ..
                    } = n
                    else {
                        continue;
                    };
                    assert!(
                        !cluster.is_background(id),
                        "background notification leaked to owner"
                    );
                    if Some(id) == owner_id && state == BatchJobState::Starting {
                        started_at = Some(time);
                        ctx.schedule_in(SimDuration::from_secs(30), Ev::CompletePilot(id));
                    }
                }
            },
        );
        let wait = started_at.expect("owner job started").as_secs_f64() - 600.0;
        (wait, notes_seen)
    }

    #[test]
    fn background_load_delays_owner_jobs() {
        let (clean, _) = queue_wait_with_load(None);
        // Saturating load: 24-core 60 s jobs every ~10 s on a 32-core
        // machine serialize in the queue, so the owner's 24-core pilot
        // reliably waits behind several of them.
        let (contended, _) = queue_wait_with_load(Some(BackgroundLoad {
            mean_interarrival_secs: 10.0,
            cores: Dist::Constant(24.0),
            runtime: Dist::Constant(60.0),
            initial_jobs: 0,
        }));
        assert!(
            contended > clean + 1.0,
            "contention should delay the pilot: clean {clean}, contended {contended}"
        );
    }

    #[test]
    fn background_jobs_are_invisible_to_owner() {
        // Assertion inside the driver loop: no background notification seen.
        let (_, notes) = queue_wait_with_load(Some(BackgroundLoad {
            mean_interarrival_secs: 10.0,
            cores: Dist::Constant(8.0),
            runtime: Dist::Constant(20.0),
            initial_jobs: 2,
        }));
        // Owner sees only its own job's few transitions.
        assert!(notes <= 6, "owner saw {notes} notifications");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use entk_sim::{Dist, Engine};

    #[derive(Debug)]
    enum Ev {
        Cluster(ClusterEvent),
        CompletePilot(BatchJobId),
    }
    impl From<ClusterEvent> for Ev {
        fn from(e: ClusterEvent) -> Ev {
            Ev::Cluster(e)
        }
    }

    fn spec() -> PlatformSpec {
        let mut s = PlatformSpec::local(2, 4); // 2 nodes x 4 cores
        s.queue_wait = Dist::ZERO;
        s.job_startup = Dist::Constant(1.0);
        s
    }

    /// Runs one job under a fault profile; returns all owner notifications
    /// plus the cluster's final free-core count.
    fn drive_with_faults(
        cores: usize,
        profile: FaultProfile,
        complete_after: SimDuration,
    ) -> (Vec<ClusterNotification>, usize) {
        let mut cluster = Cluster::new(spec(), 42);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut booted = false;
        let mut log = Vec::new();
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !booted {
                booted = true;
                cluster.enable_fault_injector(profile.clone(), ctx);
                cluster
                    .submit(
                        BatchJobDescription::new("pilot", cores, SimDuration::from_secs(1000)),
                        ctx,
                        &mut out,
                    )
                    .unwrap();
            }
            match ev {
                Ev::Cluster(ce) => cluster.handle(ce, ctx, &mut out),
                Ev::CompletePilot(id) => cluster.complete(id, ctx, &mut out),
            }
            for n in out {
                if let ClusterNotification::JobState {
                    id,
                    state: BatchJobState::Running,
                    ..
                } = n
                {
                    ctx.schedule_in(complete_after, Ev::CompletePilot(id));
                }
                log.push(n);
            }
        });
        (log, cluster.free_cores())
    }

    #[test]
    fn crash_shrinks_spanning_job() {
        // 8-core job spans both nodes; node 0 dies at t=5 and stays down
        // (zero downtime means permanent).
        let profile = FaultProfile::seeded(1)
            .with_crash_at(5.0, 0)
            .with_node_crashes(0.0, Dist::Constant(0.0));
        let (log, free) = drive_with_faults(8, profile, SimDuration::from_secs(30));
        let shrunk: Vec<_> = log
            .iter()
            .filter_map(|n| match *n {
                ClusterNotification::JobShrunk {
                    lost_cores,
                    remaining_cores,
                    time,
                    ..
                } => Some((lost_cores, remaining_cores, time)),
                _ => None,
            })
            .collect();
        assert_eq!(shrunk, vec![(4, 4, SimTime::from_secs(5))]);
        // The job still completes on its surviving cores.
        assert!(log.iter().any(|n| matches!(
            n,
            ClusterNotification::JobState {
                state: BatchJobState::Completed,
                ..
            }
        )));
        // Node 0 never recovered: only node 1's cores are free at the end.
        assert_eq!(free, 4);
    }

    #[test]
    fn crash_fails_job_confined_to_node() {
        // 4-core job fits on node 0 alone; the crash leaves it nothing.
        let profile = FaultProfile::seeded(1).with_crash_at(5.0, 0);
        let (log, _) = drive_with_faults(4, profile, SimDuration::from_secs(30));
        assert!(log.iter().any(|n| matches!(
            n,
            ClusterNotification::JobState {
                state: BatchJobState::Failed,
                ..
            }
        )));
        assert!(!log
            .iter()
            .any(|n| matches!(n, ClusterNotification::JobShrunk { .. })));
    }

    #[test]
    fn node_recovers_after_downtime() {
        let profile = FaultProfile::seeded(1)
            .with_crash_at(5.0, 0)
            .with_node_crashes(0.0, Dist::Constant(20.0));
        let (_, free) = drive_with_faults(8, profile, SimDuration::from_secs(60));
        // After recovery at t=25 the machine is whole again.
        assert_eq!(free, 8);
    }

    #[test]
    fn mtbf_process_crashes_nodes_deterministically() {
        let profile = FaultProfile::seeded(33).with_node_crashes(50.0, Dist::Constant(10.0));
        let run = || {
            let (log, _) = drive_with_faults(8, profile.clone(), SimDuration::from_secs(400));
            format!("{log:?}")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same fault timeline");
    }

    #[test]
    fn zero_profile_matches_no_injector() {
        let with = drive_with_faults(8, FaultProfile::seeded(5), SimDuration::from_secs(30));
        // Same run without any injector.
        let mut cluster = Cluster::new(spec(), 42);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Cluster(ClusterEvent::Kick));
        let mut booted = false;
        let mut log = Vec::new();
        engine.run(|ev, ctx| {
            let mut out = Vec::new();
            if !booted {
                booted = true;
                cluster
                    .submit(
                        BatchJobDescription::new("pilot", 8, SimDuration::from_secs(1000)),
                        ctx,
                        &mut out,
                    )
                    .unwrap();
            }
            match ev {
                Ev::Cluster(ce) => cluster.handle(ce, ctx, &mut out),
                Ev::CompletePilot(id) => cluster.complete(id, ctx, &mut out),
            }
            for n in out {
                if let ClusterNotification::JobState {
                    id,
                    state: BatchJobState::Running,
                    ..
                } = n
                {
                    ctx.schedule_in(SimDuration::from_secs(30), Ev::CompletePilot(id));
                }
                log.push(n);
            }
        });
        assert_eq!(format!("{:?}", with.0), format!("{log:?}"));
        assert_eq!(with.1, cluster.free_cores());
    }
}
