//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultInjector`] is owned by a [`Cluster`](crate::Cluster) and drives
//! three failure modes, all drawn from its own seeded [`SimRng`] stream so a
//! fault scenario replays bit-identically and enabling an all-zero profile
//! leaves every other stream untouched:
//!
//! - **node crashes**: scheduled deterministically (`crash_schedule`) or on a
//!   Poisson process (`node_mtbf_secs`), with an optional recovery after a
//!   sampled downtime. A crash kills the cores' batch-job slices: affected
//!   jobs shrink, or die when nothing remains.
//! - **per-task failures**: each unit execution fails with probability
//!   `task_failure_rate` (consulted by the pilot runtime).
//! - **stragglers**: each unit execution is slowed by a sampled multiplier
//!   with probability `straggler_rate` (paper §V motivates kill-replace of
//!   exactly these).

use entk_sim::{Dist, SimDuration, SimRng};

/// Configuration of a fault-injection scenario.
///
/// The default profile injects nothing; every rate is opt-in so that a
/// profile with all zeros behaves byte-identically to no profile at all
/// (no RNG draws, no scheduled events).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Seed of the injector's private RNG stream.
    pub seed: u64,
    /// Deterministic crash plan: `(seconds after enable, node index)`.
    pub crash_schedule: Vec<(f64, usize)>,
    /// Mean time between random node crashes in seconds; `0` disables the
    /// Poisson crash process.
    pub node_mtbf_secs: f64,
    /// Downtime before a crashed node rejoins the free pool. A sample of
    /// zero leaves the node down forever.
    pub node_downtime: Dist,
    /// Probability that any single unit execution fails.
    pub task_failure_rate: f64,
    /// Probability that a unit execution straggles.
    pub straggler_rate: f64,
    /// Execution-time multiplier applied to stragglers (clamped to >= 1).
    pub straggler_slowdown: Dist,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0xFA_17,
            crash_schedule: Vec::new(),
            node_mtbf_secs: 0.0,
            node_downtime: Dist::Constant(300.0),
            task_failure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: Dist::Constant(4.0),
        }
    }
}

impl FaultProfile {
    /// Profile seeded for a specific replayable scenario.
    pub fn seeded(seed: u64) -> Self {
        FaultProfile {
            seed,
            ..Default::default()
        }
    }

    /// Sets the per-execution task failure probability (builder style).
    pub fn with_task_failures(mut self, rate: f64) -> Self {
        self.task_failure_rate = rate;
        self
    }

    /// Adds one deterministic node crash (builder style).
    pub fn with_crash_at(mut self, secs: f64, node: usize) -> Self {
        self.crash_schedule.push((secs, node));
        self
    }

    /// Enables Poisson node crashes with the given MTBF and downtime
    /// (builder style).
    pub fn with_node_crashes(mut self, mtbf_secs: f64, downtime: Dist) -> Self {
        self.node_mtbf_secs = mtbf_secs;
        self.node_downtime = downtime;
        self
    }

    /// Enables straggler injection (builder style).
    pub fn with_stragglers(mut self, rate: f64, slowdown: Dist) -> Self {
        self.straggler_rate = rate;
        self.straggler_slowdown = slowdown;
        self
    }

    /// True when the profile can produce node crashes.
    pub fn has_node_faults(&self) -> bool {
        !self.crash_schedule.is_empty() || self.node_mtbf_secs > 0.0
    }
}

/// Runtime state of an enabled fault scenario.
///
/// Every draw is guarded by its rate, so a zero-rate mode consumes nothing
/// from the stream — the determinism guarantee the property tests enforce.
pub struct FaultInjector {
    profile: FaultProfile,
    rng: SimRng,
    down: Vec<bool>,
}

impl FaultInjector {
    /// Creates an injector with its own RNG stream.
    pub fn new(profile: FaultProfile) -> Self {
        let rng = SimRng::seed_from_u64(profile.seed);
        FaultInjector {
            profile,
            rng,
            down: Vec::new(),
        }
    }

    /// The scenario being injected.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Draws whether the current unit execution fails.
    pub fn unit_fails(&mut self) -> bool {
        self.profile.task_failure_rate > 0.0 && self.rng.chance(self.profile.task_failure_rate)
    }

    /// Draws the execution-time multiplier for the current unit: `1.0` for
    /// non-stragglers, the sampled slowdown (>= 1) otherwise.
    pub fn straggler_factor(&mut self) -> f64 {
        if self.profile.straggler_rate > 0.0 && self.rng.chance(self.profile.straggler_rate) {
            self.profile
                .straggler_slowdown
                .sample(&mut self.rng)
                .max(1.0)
        } else {
            1.0
        }
    }

    /// Samples the gap to the next random crash; `None` when the Poisson
    /// process is disabled.
    pub fn next_crash_gap(&mut self) -> Option<SimDuration> {
        if self.profile.node_mtbf_secs > 0.0 {
            let gap = self.rng.exponential(self.profile.node_mtbf_secs);
            Some(SimDuration::from_secs_f64(gap.max(1e-3)))
        } else {
            None
        }
    }

    /// Samples how long a crashed node stays down; `None` means forever.
    pub fn sample_downtime(&mut self) -> Option<SimDuration> {
        let secs = self.profile.node_downtime.sample(&mut self.rng);
        (secs > 0.0).then(|| SimDuration::from_secs_f64(secs))
    }

    /// Picks a currently-up node to crash; `None` when everything is down.
    pub fn pick_victim(&mut self, nodes: usize) -> Option<usize> {
        self.ensure_len(nodes);
        let up: Vec<usize> = (0..nodes).filter(|&n| !self.down[n]).collect();
        if up.is_empty() {
            return None;
        }
        Some(up[self.rng.index(up.len())])
    }

    /// True when the injector believes `node` is down.
    pub fn is_down(&mut self, node: usize) -> bool {
        self.ensure_len(node + 1);
        self.down[node]
    }

    /// Records a node going down.
    pub fn note_down(&mut self, node: usize) {
        self.ensure_len(node + 1);
        self.down[node] = true;
    }

    /// Records a node coming back up.
    pub fn note_up(&mut self, node: usize) {
        self.ensure_len(node + 1);
        self.down[node] = false;
    }

    fn ensure_len(&mut self, n: usize) {
        if self.down.len() < n {
            self.down.resize(n, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_profile_makes_no_draws() {
        // Two injectors from the same seed: one consulted, one not. If the
        // consulted one drew anything on zero-rate paths, their subsequent
        // streams would diverge.
        let mut a = FaultInjector::new(FaultProfile::seeded(9));
        let mut b = FaultInjector::new(FaultProfile::seeded(9));
        for _ in 0..50 {
            assert!(!a.unit_fails());
            assert_eq!(a.straggler_factor(), 1.0);
            assert_eq!(a.next_crash_gap(), None);
        }
        let xa: Vec<bool> = (0..16).map(|_| a.rng.chance(0.5)).collect();
        let xb: Vec<bool> = (0..16).map(|_| b.rng.chance(0.5)).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn same_seed_replays_identically() {
        let profile = FaultProfile::seeded(77)
            .with_task_failures(0.3)
            .with_stragglers(0.5, Dist::Uniform { lo: 2.0, hi: 8.0 })
            .with_node_crashes(100.0, Dist::Constant(60.0));
        let draw = |mut inj: FaultInjector| {
            let mut log = Vec::new();
            for _ in 0..40 {
                log.push((
                    inj.unit_fails(),
                    inj.straggler_factor().to_bits(),
                    inj.next_crash_gap(),
                ));
            }
            log
        };
        let a = draw(FaultInjector::new(profile.clone()));
        let b = draw(FaultInjector::new(profile));
        assert_eq!(a, b);
    }

    #[test]
    fn straggler_factor_is_at_least_one() {
        let mut inj =
            FaultInjector::new(FaultProfile::seeded(5).with_stragglers(1.0, Dist::Constant(0.25)));
        for _ in 0..20 {
            assert!(inj.straggler_factor() >= 1.0);
        }
    }

    #[test]
    fn victim_picks_only_up_nodes() {
        let mut inj = FaultInjector::new(
            FaultProfile::seeded(3).with_node_crashes(10.0, Dist::Constant(0.0)),
        );
        inj.note_down(0);
        inj.note_down(2);
        for _ in 0..30 {
            let v = inj.pick_victim(4).unwrap();
            assert!(v == 1 || v == 3, "picked down node {v}");
        }
        inj.note_down(1);
        inj.note_down(3);
        assert_eq!(inj.pick_victim(4), None);
        inj.note_up(2);
        assert_eq!(inj.pick_victim(4), Some(2));
    }

    #[test]
    fn zero_downtime_means_permanent() {
        let mut inj = FaultInjector::new(
            FaultProfile::seeded(1).with_node_crashes(10.0, Dist::Constant(0.0)),
        );
        assert_eq!(inj.sample_downtime(), None);
        let mut inj = FaultInjector::new(
            FaultProfile::seeded(1).with_node_crashes(10.0, Dist::Constant(120.0)),
        );
        assert_eq!(inj.sample_downtime(), Some(SimDuration::from_secs(120)));
    }

    #[test]
    fn profile_builders_compose() {
        let p = FaultProfile::seeded(42)
            .with_task_failures(0.1)
            .with_crash_at(30.0, 2)
            .with_crash_at(60.0, 3);
        assert_eq!(p.seed, 42);
        assert_eq!(p.task_failure_rate, 0.1);
        assert_eq!(p.crash_schedule, vec![(30.0, 2), (60.0, 3)]);
        assert!(p.has_node_faults());
        assert!(!FaultProfile::default().has_node_faults());
    }
}
