//! Node/core allocation bookkeeping.
//!
//! Tracks free cores per node and packs batch-job requests onto nodes.
//! The invariant — no core is ever double-booked — is what makes scaling
//! results trustworthy, and is covered by property tests.

use serde::{Deserialize, Serialize};

/// Cores assigned to one job on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSlice {
    /// Node index within the cluster.
    pub node: usize,
    /// Number of cores taken on that node.
    pub cores: usize,
}

/// Per-node free-core tracking with first-fit packing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationMap {
    cores_per_node: usize,
    free: Vec<usize>,
    total_free: usize,
}

impl AllocationMap {
    /// Creates a map for `nodes` nodes of `cores_per_node` cores, all free.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        AllocationMap {
            cores_per_node,
            free: vec![cores_per_node; nodes],
            total_free: nodes * cores_per_node,
        }
    }

    /// Total free cores across the machine.
    pub fn free_cores(&self) -> usize {
        self.total_free
    }

    /// Total cores on the machine.
    pub fn total_cores(&self) -> usize {
        self.free.len() * self.cores_per_node
    }

    /// Cores currently allocated.
    pub fn used_cores(&self) -> usize {
        self.total_cores() - self.total_free
    }

    /// Attempts to allocate `cores`, packing nodes first-fit (fullest-first
    /// packing is not modelled; batch systems vary and the paper's results
    /// are insensitive to packing order). Returns `None` if not enough
    /// cores are free anywhere.
    pub fn allocate(&mut self, cores: usize) -> Option<Vec<NodeSlice>> {
        if cores == 0 || cores > self.total_free {
            return None;
        }
        let mut remaining = cores;
        let mut slices = Vec::new();
        for (node, free) in self.free.iter_mut().enumerate() {
            if *free == 0 {
                continue;
            }
            let take = remaining.min(*free);
            *free -= take;
            slices.push(NodeSlice { node, cores: take });
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "total_free said allocation fits");
        self.total_free -= cores;
        Some(slices)
    }

    /// Returns a previous allocation's cores to the free pool.
    pub fn release(&mut self, slices: &[NodeSlice]) {
        for s in slices {
            assert!(
                self.free[s.node] + s.cores <= self.cores_per_node,
                "release would overflow node {} capacity",
                s.node
            );
            self.free[s.node] += s.cores;
            self.total_free += s.cores;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut map = AllocationMap::new(4, 8);
        let a = map.allocate(10).expect("fits");
        assert_eq!(a.iter().map(|s| s.cores).sum::<usize>(), 10);
        assert_eq!(map.free_cores(), 22);
        map.release(&a);
        assert_eq!(map.free_cores(), 32);
    }

    #[test]
    fn allocation_spans_nodes_when_needed() {
        let mut map = AllocationMap::new(3, 4);
        let a = map.allocate(9).expect("fits");
        assert!(a.len() >= 3, "9 cores need at least 3 of the 4-core nodes");
    }

    #[test]
    fn oversized_request_fails_without_side_effects() {
        let mut map = AllocationMap::new(2, 4);
        assert!(map.allocate(9).is_none());
        assert_eq!(map.free_cores(), 8);
    }

    #[test]
    fn zero_request_fails() {
        let mut map = AllocationMap::new(2, 4);
        assert!(map.allocate(0).is_none());
    }

    #[test]
    #[should_panic(expected = "release would overflow")]
    fn double_release_is_detected() {
        let mut map = AllocationMap::new(1, 4);
        let a = map.allocate(4).unwrap();
        map.release(&a);
        map.release(&a);
    }

    proptest! {
        /// Under arbitrary allocate/release interleavings: free counts stay in
        /// bounds and no node is oversubscribed.
        #[test]
        fn prop_no_oversubscription(ops in proptest::collection::vec(1usize..20, 1..60)) {
            let mut map = AllocationMap::new(8, 8);
            let mut live: Vec<Vec<NodeSlice>> = Vec::new();
            for (i, cores) in ops.into_iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let a = live.swap_remove(i % live.len());
                    map.release(&a);
                } else if let Some(a) = map.allocate(cores) {
                    prop_assert_eq!(a.iter().map(|s| s.cores).sum::<usize>(), cores);
                    live.push(a);
                }
                let used: usize = live.iter().flatten().map(|s| s.cores).sum();
                prop_assert_eq!(map.used_cores(), used);
                prop_assert!(map.free_cores() <= map.total_cores());
            }
        }
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;

    #[test]
    fn used_cores_tracks_allocations() {
        let mut map = AllocationMap::new(2, 8);
        assert_eq!(map.used_cores(), 0);
        let a = map.allocate(5).unwrap();
        assert_eq!(map.used_cores(), 5);
        let b = map.allocate(11).unwrap();
        assert_eq!(map.used_cores(), 16);
        map.release(&a);
        map.release(&b);
        assert_eq!(map.used_cores(), 0);
        assert_eq!(map.total_cores(), 16);
    }
}
