//! Node/core allocation bookkeeping.
//!
//! Tracks free cores per node and packs batch-job requests onto nodes.
//! The invariant — no core is ever double-booked — is what makes scaling
//! results trustworthy, and is covered by property tests.

use serde::{Deserialize, Serialize};

/// Cores assigned to one job on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSlice {
    /// Node index within the cluster.
    pub node: usize,
    /// Number of cores taken on that node.
    pub cores: usize,
}

/// Per-node free-core tracking with first-fit packing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationMap {
    cores_per_node: usize,
    free: Vec<usize>,
    total_free: usize,
    down: Vec<bool>,
}

impl AllocationMap {
    /// Creates a map for `nodes` nodes of `cores_per_node` cores, all free.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        AllocationMap {
            cores_per_node,
            free: vec![cores_per_node; nodes],
            total_free: nodes * cores_per_node,
            down: vec![false; nodes],
        }
    }

    /// Total free cores across the machine.
    pub fn free_cores(&self) -> usize {
        self.total_free
    }

    /// Total cores on the machine (down nodes included).
    pub fn total_cores(&self) -> usize {
        self.free.len() * self.cores_per_node
    }

    /// Number of nodes on the machine.
    pub fn nodes(&self) -> usize {
        self.free.len()
    }

    /// Cores on nodes that are currently down: neither free nor usable.
    pub fn down_cores(&self) -> usize {
        self.down.iter().filter(|&&d| d).count() * self.cores_per_node
    }

    /// Cores currently allocated to live jobs.
    pub fn used_cores(&self) -> usize {
        self.total_cores() - self.total_free - self.down_cores()
    }

    /// True when `node` is marked down.
    pub fn is_down(&self, node: usize) -> bool {
        self.down[node]
    }

    /// Marks a node as crashed: its free cores leave the pool and its held
    /// slices become unusable. Callers must strip held slices on the node
    /// themselves (the map does not know which job owns what). Idempotent.
    pub fn mark_down(&mut self, node: usize) {
        if self.down[node] {
            return;
        }
        self.down[node] = true;
        self.total_free -= self.free[node];
        self.free[node] = 0;
    }

    /// Marks a crashed node as recovered with its full capacity free.
    /// Valid because `mark_down` + slice stripping left nothing on it.
    /// Idempotent.
    pub fn mark_up(&mut self, node: usize) {
        if !self.down[node] {
            return;
        }
        debug_assert_eq!(self.free[node], 0, "down node must have no free cores");
        self.down[node] = false;
        self.free[node] = self.cores_per_node;
        self.total_free += self.cores_per_node;
    }

    /// Attempts to allocate `cores`, packing nodes first-fit (fullest-first
    /// packing is not modelled; batch systems vary and the paper's results
    /// are insensitive to packing order). Returns `None` if not enough
    /// cores are free anywhere.
    pub fn allocate(&mut self, cores: usize) -> Option<Vec<NodeSlice>> {
        if cores == 0 || cores > self.total_free {
            return None;
        }
        let mut remaining = cores;
        let mut slices = Vec::new();
        for (node, free) in self.free.iter_mut().enumerate() {
            if *free == 0 {
                continue;
            }
            let take = remaining.min(*free);
            *free -= take;
            slices.push(NodeSlice { node, cores: take });
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "total_free said allocation fits");
        self.total_free -= cores;
        Some(slices)
    }

    /// Returns a previous allocation's cores to the free pool. Slices on
    /// nodes that are currently down are skipped: their cores were removed
    /// from the machine by `mark_down` and come back via `mark_up`.
    pub fn release(&mut self, slices: &[NodeSlice]) {
        for s in slices {
            if self.down[s.node] {
                continue;
            }
            assert!(
                self.free[s.node] + s.cores <= self.cores_per_node,
                "release would overflow node {} capacity",
                s.node
            );
            self.free[s.node] += s.cores;
            self.total_free += s.cores;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut map = AllocationMap::new(4, 8);
        let a = map.allocate(10).expect("fits");
        assert_eq!(a.iter().map(|s| s.cores).sum::<usize>(), 10);
        assert_eq!(map.free_cores(), 22);
        map.release(&a);
        assert_eq!(map.free_cores(), 32);
    }

    #[test]
    fn allocation_spans_nodes_when_needed() {
        let mut map = AllocationMap::new(3, 4);
        let a = map.allocate(9).expect("fits");
        assert!(a.len() >= 3, "9 cores need at least 3 of the 4-core nodes");
    }

    #[test]
    fn oversized_request_fails_without_side_effects() {
        let mut map = AllocationMap::new(2, 4);
        assert!(map.allocate(9).is_none());
        assert_eq!(map.free_cores(), 8);
    }

    #[test]
    fn zero_request_fails() {
        let mut map = AllocationMap::new(2, 4);
        assert!(map.allocate(0).is_none());
    }

    #[test]
    #[should_panic(expected = "release would overflow")]
    fn double_release_is_detected() {
        let mut map = AllocationMap::new(1, 4);
        let a = map.allocate(4).unwrap();
        map.release(&a);
        map.release(&a);
    }

    proptest! {
        /// Under arbitrary allocate/release interleavings: free counts stay in
        /// bounds and no node is oversubscribed.
        #[test]
        fn prop_no_oversubscription(ops in proptest::collection::vec(1usize..20, 1..60)) {
            let mut map = AllocationMap::new(8, 8);
            let mut live: Vec<Vec<NodeSlice>> = Vec::new();
            for (i, cores) in ops.into_iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let a = live.swap_remove(i % live.len());
                    map.release(&a);
                } else if let Some(a) = map.allocate(cores) {
                    prop_assert_eq!(a.iter().map(|s| s.cores).sum::<usize>(), cores);
                    live.push(a);
                }
                let used: usize = live.iter().flatten().map(|s| s.cores).sum();
                prop_assert_eq!(map.used_cores(), used);
                prop_assert!(map.free_cores() <= map.total_cores());
            }
        }
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;

    #[test]
    fn used_cores_tracks_allocations() {
        let mut map = AllocationMap::new(2, 8);
        assert_eq!(map.used_cores(), 0);
        let a = map.allocate(5).unwrap();
        assert_eq!(map.used_cores(), 5);
        let b = map.allocate(11).unwrap();
        assert_eq!(map.used_cores(), 16);
        map.release(&a);
        map.release(&b);
        assert_eq!(map.used_cores(), 0);
        assert_eq!(map.total_cores(), 16);
    }

    #[test]
    fn down_node_leaves_and_rejoins_pool() {
        let mut map = AllocationMap::new(4, 8);
        map.mark_down(1);
        assert!(map.is_down(1));
        assert_eq!(map.free_cores(), 24);
        assert_eq!(map.down_cores(), 8);
        assert_eq!(map.used_cores(), 0);
        // Allocations avoid the down node entirely.
        let a = map.allocate(24).unwrap();
        assert!(a.iter().all(|s| s.node != 1));
        assert!(map.allocate(1).is_none());
        map.release(&a);
        map.mark_up(1);
        assert!(!map.is_down(1));
        assert_eq!(map.free_cores(), 32);
        assert_eq!(map.down_cores(), 0);
    }

    #[test]
    fn release_skips_slices_on_down_nodes() {
        let mut map = AllocationMap::new(2, 4);
        let a = map.allocate(8).unwrap();
        assert_eq!(map.used_cores(), 8);
        // Node 0 crashes while the job holds cores there: the holder strips
        // its on-node slices, marks the node down, and later releases only
        // what survived — but releasing the full set must also be safe.
        map.mark_down(0);
        map.release(&a);
        assert_eq!(map.free_cores(), 4);
        assert_eq!(map.used_cores(), 0);
        map.mark_up(0);
        assert_eq!(map.free_cores(), 8);
    }

    #[test]
    fn mark_down_and_up_are_idempotent() {
        let mut map = AllocationMap::new(2, 4);
        map.mark_down(0);
        map.mark_down(0);
        assert_eq!(map.free_cores(), 4);
        map.mark_up(0);
        map.mark_up(0);
        assert_eq!(map.free_cores(), 8);
    }
}
