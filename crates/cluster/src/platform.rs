//! HPC platform specifications.
//!
//! Presets mirror the machines used in the paper's evaluation (§IV):
//! XSEDE Comet (validation, Figs. 3–4), XSEDE Stampede (SAL scaling,
//! Figs. 7–9), and LSU SuperMIC (EE scaling, Figs. 5–6). Delay
//! distributions are calibrated so the simulated overhead decomposition
//! matches the paper's qualitative behaviour: constant per-resource costs,
//! per-task costs linear in the number of tasks.

use entk_sim::Dist;
use serde::{Deserialize, Serialize};

/// Static description of a simulated HPC machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Human-readable machine name, e.g. `"xsede.comet"`.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Memory per node in GB (bookkeeping only; jobs may request memory).
    pub mem_per_node_gb: u64,
    /// Relative compute speed factor; kernel cost models divide by this.
    pub perf_factor: f64,
    /// Time a submitted batch job waits before becoming eligible to run
    /// (models scheduler cycles and competing load).
    pub queue_wait: Dist,
    /// Additional queue wait per requested core, in seconds — models the
    /// fact that larger allocations wait longer in shared batch queues.
    pub queue_wait_per_core: f64,
    /// One-time cost of launching a batch job once nodes are assigned
    /// (prologue, environment setup).
    pub job_startup: Dist,
    /// Per-process launch cost inside a running job (aprun/ssh/fork cost
    /// paid per task by the pilot agent).
    pub task_launch: Dist,
    /// Network latency in seconds for control messages between the
    /// submitting host and the machine.
    pub control_latency: Dist,
    /// Shared-filesystem bandwidth in bytes/second for staging.
    pub fs_bandwidth: f64,
    /// Per-file filesystem operation latency in seconds.
    pub fs_latency: Dist,
}

impl PlatformSpec {
    /// Total core count of the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// XSEDE Comet: 1984 nodes × 24 cores, 120 GB/node (paper §IV).
    pub fn comet() -> Self {
        PlatformSpec {
            name: "xsede.comet".into(),
            nodes: 1984,
            cores_per_node: 24,
            mem_per_node_gb: 120,
            perf_factor: 1.0,
            queue_wait: Dist::Constant(0.0),
            queue_wait_per_core: 0.0,
            job_startup: Dist::Normal {
                mean: 45.0,
                sd: 5.0,
            },
            task_launch: Dist::Normal {
                mean: 0.10,
                sd: 0.01,
            },
            control_latency: Dist::Constant(0.05),
            fs_bandwidth: 2.0e9,
            fs_latency: Dist::Constant(0.002),
        }
    }

    /// XSEDE Stampede: 6400 nodes × 16 cores, 32 GB/node (paper §IV).
    pub fn stampede() -> Self {
        PlatformSpec {
            name: "xsede.stampede".into(),
            nodes: 6400,
            cores_per_node: 16,
            mem_per_node_gb: 32,
            perf_factor: 0.9,
            queue_wait: Dist::Constant(0.0),
            queue_wait_per_core: 0.0,
            job_startup: Dist::Normal {
                mean: 60.0,
                sd: 8.0,
            },
            task_launch: Dist::Normal {
                mean: 0.12,
                sd: 0.015,
            },
            control_latency: Dist::Constant(0.06),
            fs_bandwidth: 1.5e9,
            fs_latency: Dist::Constant(0.003),
        }
    }

    /// LSU SuperMIC: 360 nodes × 20 cores, 60 GB/node (paper §IV).
    pub fn supermic() -> Self {
        PlatformSpec {
            name: "lsu.supermic".into(),
            nodes: 360,
            cores_per_node: 20,
            mem_per_node_gb: 60,
            perf_factor: 0.85,
            queue_wait: Dist::Constant(0.0),
            queue_wait_per_core: 0.0,
            job_startup: Dist::Normal {
                mean: 50.0,
                sd: 6.0,
            },
            task_launch: Dist::Normal {
                mean: 0.11,
                sd: 0.012,
            },
            control_latency: Dist::Constant(0.08),
            fs_bandwidth: 1.0e9,
            fs_latency: Dist::Constant(0.004),
        }
    }

    /// A small machine for tests and examples: `nodes` × `cores_per_node`
    /// with negligible overheads.
    pub fn local(nodes: usize, cores_per_node: usize) -> Self {
        PlatformSpec {
            name: "localhost".into(),
            nodes,
            cores_per_node,
            mem_per_node_gb: 16,
            perf_factor: 1.0,
            queue_wait: Dist::ZERO,
            queue_wait_per_core: 0.0,
            job_startup: Dist::Constant(0.1),
            task_launch: Dist::Constant(0.001),
            control_latency: Dist::ZERO,
            fs_bandwidth: 5.0e9,
            fs_latency: Dist::ZERO,
        }
    }

    /// Looks up a preset by resource label (as used by the ResourceHandle),
    /// e.g. `"xsede.comet"`.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "xsede.comet" | "comet" => Some(Self::comet()),
            "xsede.stampede" | "stampede" => Some(Self::stampede()),
            "lsu.supermic" | "supermic" | "xsede.supermic" => Some(Self::supermic()),
            "localhost" | "local" => Some(Self::local(4, 8)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_specs() {
        let comet = PlatformSpec::comet();
        assert_eq!(comet.nodes, 1984);
        assert_eq!(comet.cores_per_node, 24);
        assert_eq!(comet.total_cores(), 47_616);

        let stampede = PlatformSpec::stampede();
        assert_eq!(stampede.nodes, 6400);
        assert_eq!(stampede.cores_per_node, 16);

        let supermic = PlatformSpec::supermic();
        assert_eq!(supermic.nodes, 360);
        assert_eq!(supermic.cores_per_node, 20);
        assert_eq!(supermic.total_cores(), 7200);
    }

    #[test]
    fn lookup_by_name_and_aliases() {
        assert_eq!(PlatformSpec::by_name("xsede.comet").unwrap().nodes, 1984);
        assert_eq!(
            PlatformSpec::by_name("supermic").unwrap().cores_per_node,
            20
        );
        assert!(PlatformSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn supermic_fits_fig5_workload() {
        // Fig. 5 uses up to 2560 cores on SuperMIC; the machine must hold them.
        assert!(PlatformSpec::supermic().total_cores() >= 2560);
    }

    #[test]
    fn stampede_fits_fig8_workload() {
        // Fig. 8 scales to 4096 cores on Stampede.
        assert!(PlatformSpec::stampede().total_cores() >= 4096);
    }
}
