//! Batch-queue scheduling policies: FIFO and EASY backfill.
//!
//! The policy decides which queued (eligible) jobs start when cores free up.
//! EnTK's pilot jobs are large container allocations, so head-of-line
//! behaviour matters for time-to-completion when multiple pilots compete.

use entk_sim::{SimDuration, SimTime};

/// Scheduler-facing view of one queued job.
#[derive(Debug, Clone)]
pub struct PendingView {
    /// Cores requested.
    pub cores: usize,
    /// Requested wall time (used as the runtime estimate for backfill).
    pub walltime: SimDuration,
    /// Project / allocation charged (used by fair-share policies).
    pub project: String,
}

/// Scheduler-facing view of one running job.
#[derive(Debug, Clone, Copy)]
pub struct RunningView {
    /// Cores held.
    pub cores: usize,
    /// Latest possible end (start + walltime).
    pub expected_end: SimTime,
}

/// A batch scheduling policy. Returns the indices (into `queue`) of jobs to
/// start now; indices must be unique and the selected jobs' total core
/// request must fit in `free_cores`.
pub trait BatchScheduler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Selects jobs to start now. Stateful policies (fair share) may
    /// update internal accounting for the jobs they start.
    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        running: &[RunningView],
    ) -> Vec<usize>;

    /// Notifies the policy that a previously started job released its cores,
    /// whatever the reason (completion, walltime, cancellation, or a node
    /// crash that killed it). `ran` is how long the job actually held cores.
    /// Stateful policies reconcile up-front charges with actual consumption
    /// here; the default is a no-op.
    fn job_ended(
        &mut self,
        _project: &str,
        _cores: usize,
        _walltime: SimDuration,
        _ran: SimDuration,
        _now: SimTime,
    ) {
    }
}

/// Strict first-in-first-out: jobs start in arrival order and the queue head
/// blocks everything behind it.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl BatchScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        _now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        let mut picked = Vec::new();
        let mut free = free_cores;
        for (i, job) in queue.iter().enumerate() {
            if job.cores <= free {
                free -= job.cores;
                picked.push(i);
            } else {
                break; // head-of-line blocking
            }
        }
        picked
    }
}

/// EASY backfill: like FIFO, but once the head job blocks, later jobs may
/// start immediately if doing so cannot delay the head job's earliest
/// possible start (the "shadow time").
#[derive(Debug, Default, Clone, Copy)]
pub struct EasyBackfillScheduler;

impl EasyBackfillScheduler {
    /// Earliest time at which `needed` cores will be free, given currently
    /// running jobs end at their walltime limits, and the spare cores left
    /// at that moment ("extra" cores a backfilled job may hold past the
    /// shadow time).
    fn shadow(
        free_now: usize,
        needed: usize,
        now: SimTime,
        running: &[RunningView],
    ) -> (SimTime, usize) {
        let mut ends: Vec<_> = running.iter().map(|r| (r.expected_end, r.cores)).collect();
        ends.sort_by_key(|&(t, _)| t);
        let mut free = free_now;
        for (t, cores) in ends {
            if free >= needed {
                break;
            }
            free += cores;
            if free >= needed {
                return (t, free - needed);
            }
        }
        if free >= needed {
            (now, free - needed)
        } else {
            // Head job can never run (request exceeds machine); treat the
            // shadow as infinitely far so everything may backfill.
            (SimTime::MAX, free_now)
        }
    }
}

impl BatchScheduler for EasyBackfillScheduler {
    fn name(&self) -> &'static str {
        "easy-backfill"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        running: &[RunningView],
    ) -> Vec<usize> {
        let mut picked = Vec::new();
        let mut free = free_cores;
        let mut i = 0;
        // Phase 1: FIFO prefix.
        while i < queue.len() && queue[i].cores <= free {
            free -= queue[i].cores;
            picked.push(i);
            i += 1;
        }
        if i >= queue.len() {
            return picked;
        }
        // Phase 2: backfill behind the blocked head `queue[i]`.
        let (shadow_time, extra) = Self::shadow(free, queue[i].cores, now, running);
        let mut extra = extra;
        for (j, job) in queue.iter().enumerate().skip(i + 1) {
            if job.cores > free {
                continue;
            }
            let fits_past_shadow = job.cores <= extra;
            let ends_before_shadow = now + job.walltime <= shadow_time;
            if fits_past_shadow || ends_before_shadow {
                free -= job.cores;
                if fits_past_shadow {
                    extra -= job.cores;
                }
                picked.push(j);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait SelectHelper: BatchScheduler + Sized {
        fn select_helper(
            mut self,
            queue: &[PendingView],
            free: usize,
            now: SimTime,
            running: &[RunningView],
        ) -> Vec<usize> {
            self.select(queue, free, now, running)
        }
    }
    impl<T: BatchScheduler + Sized> SelectHelper for T {}

    fn pv(cores: usize, wall_secs: u64) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall_secs),
            project: "default".into(),
        }
    }

    #[test]
    fn fifo_starts_prefix_that_fits() {
        let queue = [pv(4, 100), pv(4, 100), pv(4, 100)];
        let picked = FifoScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn fifo_blocks_behind_large_head() {
        let queue = [pv(16, 100), pv(1, 100)];
        let picked = FifoScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        assert!(
            picked.is_empty(),
            "small job must not jump the head in FIFO"
        );
    }

    #[test]
    fn backfill_lets_short_jobs_jump() {
        // Head needs 16 cores; 8 free now; a running 8-core job ends at t=100.
        // A 4-core 50 s job finishes before the shadow (t=100) and may start.
        let queue = [pv(16, 1000), pv(4, 50)];
        let running = [RunningView {
            cores: 8,
            expected_end: SimTime::from_secs(100),
        }];
        let picked = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &running);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn backfill_does_not_delay_head() {
        // Same setup but the candidate runs 200 s > shadow at t=100 and would
        // use cores the head needs -> must not start.
        let queue = [pv(16, 1000), pv(4, 200)];
        let running = [RunningView {
            cores: 8,
            expected_end: SimTime::from_secs(100),
        }];
        let picked = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &running);
        assert!(picked.is_empty());
    }

    #[test]
    fn backfill_allows_long_jobs_on_extra_cores() {
        // Head needs 10: 8 free + first completion (4 cores at t=100) gives 12,
        // so 2 cores are "extra" and a long 2-core job may hold them.
        let queue = [pv(10, 1000), pv(2, 10_000)];
        let running = [
            RunningView {
                cores: 4,
                expected_end: SimTime::from_secs(100),
            },
            RunningView {
                cores: 4,
                expected_end: SimTime::from_secs(500),
            },
        ];
        let picked = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &running);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn backfill_equals_fifo_when_everything_fits() {
        let queue = [pv(2, 10), pv(2, 10), pv(2, 10)];
        let fifo = FifoScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        let easy = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        assert_eq!(fifo, easy);
    }

    #[test]
    fn selected_jobs_always_fit() {
        // Sanity across both policies with a crowded queue.
        let queue: Vec<_> = (1..10).map(|i| pv(i, 100 * i as u64)).collect();
        let mut fifo = FifoScheduler;
        let mut easy = EasyBackfillScheduler;
        let scheds: [&mut dyn BatchScheduler; 2] = [&mut fifo, &mut easy];
        for sched in scheds {
            let picked = sched.select(&queue, 12, SimTime::ZERO, &[]);
            let total: usize = picked.iter().map(|&i| queue[i].cores).sum();
            assert!(total <= 12, "{} oversubscribed", sched.name());
            let mut sorted = picked.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), picked.len(), "duplicate selection");
        }
    }
}

/// Fair-share scheduling: jobs are prioritized by their project's
/// accumulated (exponentially decayed) core-seconds charge — light users
/// jump ahead of heavy ones. Within the reordered queue, first-fit applies
/// without head-of-line blocking.
///
/// The accounting itself lives in [`crate::fairshare::UsageLedger`]
/// (shared with the workload layer's session-granularity fair-share
/// admission); this type adds the queue-ordering and first-fit selection
/// on top.
#[derive(Debug, Default)]
pub struct FairShareScheduler {
    /// Decayed core-second usage per project.
    ledger: crate::fairshare::UsageLedger<String>,
}

impl FairShareScheduler {
    /// Creates a fair-share policy with the given usage half-life.
    pub fn new(half_life_secs: f64) -> Self {
        FairShareScheduler {
            ledger: crate::fairshare::UsageLedger::new(half_life_secs),
        }
    }

    /// Current decayed usage charged to a project.
    pub fn usage_of(&self, project: &str) -> f64 {
        self.ledger.usage_of(project)
    }
}

impl BatchScheduler for FairShareScheduler {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        self.ledger.decay_to(now);
        // Order queue indices by project usage (ties: arrival order).
        let mut order: Vec<usize> = (0..queue.len()).collect();
        order.sort_by(|&a, &b| {
            let ua = self.usage_of(&queue[a].project);
            let ub = self.usage_of(&queue[b].project);
            ua.partial_cmp(&ub).expect("finite usage").then(a.cmp(&b))
        });
        let mut free = free_cores;
        let mut picked = Vec::new();
        for i in order {
            let job = &queue[i];
            if job.cores <= free {
                free -= job.cores;
                picked.push(i);
                // Charge the request up front (cores × requested walltime);
                // `job_ended` refunds the unused remainder, so a job killed
                // early — and its resubmission — is never double-charged.
                self.ledger.charge(
                    job.project.clone(),
                    job.cores as f64 * job.walltime.as_secs_f64(),
                );
            }
        }
        picked
    }

    fn job_ended(
        &mut self,
        project: &str,
        cores: usize,
        walltime: SimDuration,
        ran: SimDuration,
        now: SimTime,
    ) {
        self.ledger.decay_to(now);
        // The up-front charge was cores × walltime at start time; by now it
        // has decayed by 0.5^(ran / half-life). Refund the unused tail at
        // the same decayed weight, leaving only the consumed core-seconds.
        let unused = walltime.saturating_sub(ran).as_secs_f64() * cores as f64;
        self.ledger.refund(project, unused, ran);
    }
}

#[cfg(test)]
mod fairshare_tests {
    use super::*;

    fn pv(cores: usize, wall: u64, project: &str) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall),
            project: project.into(),
        }
    }

    #[test]
    fn light_users_jump_heavy_users() {
        let mut fs = FairShareScheduler::new(0.0);
        // Project A starts a big job: charged heavily.
        let first = fs.select(&[pv(8, 1000, "A")], 8, SimTime::ZERO, &[]);
        assert_eq!(first, vec![0]);
        // Later: A's next job queued before B's, but only 8 cores free —
        // B goes first because A's usage is high.
        let picked = fs.select(
            &[pv(8, 1000, "A"), pv(8, 10, "B")],
            8,
            SimTime::from_secs(10),
            &[],
        );
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn no_head_of_line_blocking() {
        let mut fs = FairShareScheduler::new(0.0);
        // Head needs 16 of 8 free; the next fits and starts.
        let picked = fs.select(&[pv(16, 10, "A"), pv(4, 10, "B")], 8, SimTime::ZERO, &[]);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn usage_decays_over_time() {
        let mut fs = FairShareScheduler::new(100.0);
        fs.select(&[pv(10, 100, "A")], 10, SimTime::ZERO, &[]);
        let early = fs.usage_of("A");
        fs.select(&[], 10, SimTime::from_secs(200), &[]);
        let late = fs.usage_of("A");
        assert!(
            (late - early / 4.0).abs() < 1e-9,
            "two half-lives: {early} -> {late}"
        );
    }

    #[test]
    fn respects_capacity() {
        let mut fs = FairShareScheduler::new(0.0);
        let queue = [pv(4, 10, "A"), pv(4, 10, "B"), pv(4, 10, "C")];
        let picked = fs.select(&queue, 8, SimTime::ZERO, &[]);
        let total: usize = picked.iter().map(|&i| queue[i].cores).sum();
        assert!(total <= 8);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn crash_killed_resubmission_is_not_double_charged() {
        // A 8-core 1000 s job starts, is killed by a crash after 50 s, and
        // is resubmitted. Without the end-of-job refund the project carried
        // two full up-front charges (16 000 core-seconds); with it, only the
        // consumed 400 plus the live resubmission's charge remain.
        let mut fs = FairShareScheduler::new(0.0);
        fs.select(&[pv(8, 1000, "A")], 8, SimTime::ZERO, &[]);
        assert_eq!(fs.usage_of("A"), 8_000.0);
        // Crash kills the job at t = 50: refund the unused 950 s.
        fs.job_ended(
            "A",
            8,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(50),
            SimTime::from_secs(50),
        );
        assert_eq!(fs.usage_of("A"), 400.0, "only consumed core-seconds remain");
        // Resubmission charges once more — never stacked on the dead charge.
        fs.select(&[pv(8, 1000, "A")], 8, SimTime::from_secs(50), &[]);
        assert_eq!(fs.usage_of("A"), 8_400.0);
        // The resubmission then runs to completion: no refund is due.
        fs.job_ended(
            "A",
            8,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(1000),
            SimTime::from_secs(1050),
        );
        assert_eq!(fs.usage_of("A"), 8_400.0);
    }

    #[test]
    fn refund_respects_decay() {
        // Half-life 100 s: a charge made at t=0 has halved by t=100, so the
        // refund of the unused tail must be halved too, never pushing usage
        // negative or over-refunding.
        let mut fs = FairShareScheduler::new(100.0);
        fs.select(&[pv(4, 1000, "A")], 4, SimTime::ZERO, &[]);
        let charged = fs.usage_of("A"); // 4000
        fs.job_ended(
            "A",
            4,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(100),
            SimTime::from_secs(100),
        );
        // Decayed charge: 4000/2 = 2000; decayed refund: 4×900/2 = 1800.
        let left = fs.usage_of("A");
        assert!(
            (left - (charged / 2.0 - 1800.0)).abs() < 1e-9,
            "left {left}"
        );
        assert!(left >= 0.0);
    }

    #[test]
    fn overrun_job_gets_no_refund() {
        let mut fs = FairShareScheduler::new(0.0);
        fs.select(&[pv(2, 100, "A")], 2, SimTime::ZERO, &[]);
        // Startup padding can make `ran` exceed the requested walltime.
        fs.job_ended(
            "A",
            2,
            SimDuration::from_secs(100),
            SimDuration::from_secs(103),
            SimTime::from_secs(103),
        );
        assert_eq!(fs.usage_of("A"), 200.0);
    }
}

#[cfg(test)]
mod backfill_property_tests {
    use super::*;
    use proptest::prelude::*;

    /// Forward-simulates a queue under `sched` until the head job starts,
    /// assuming every job runs exactly its requested walltime (the estimate
    /// EASY reasons with). Returns the head's start time.
    fn head_start_time(
        sched: &mut dyn BatchScheduler,
        mut queue: Vec<PendingView>,
        mut free: usize,
        mut running: Vec<(SimTime, usize)>,
    ) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            let views: Vec<RunningView> = running
                .iter()
                .map(|&(end, cores)| RunningView {
                    cores,
                    expected_end: end,
                })
                .collect();
            let mut picked = sched.select(&queue, free, now, &views);
            picked.sort_unstable();
            for &qi in picked.iter().rev() {
                if qi == 0 {
                    return now;
                }
                let job = queue.remove(qi);
                free -= job.cores;
                running.push((now + job.walltime, job.cores));
            }
            let Some(next) = running.iter().map(|&(end, _)| end).min() else {
                // Nothing running and the head did not start: it can never
                // fit (excluded by construction below).
                return SimTime::MAX;
            };
            now = next;
            running.retain(|&(end, cores)| {
                if end <= now {
                    free += cores;
                    false
                } else {
                    true
                }
            });
        }
        SimTime::MAX
    }

    fn pv(cores: usize, wall: u64) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall),
            project: "default".into(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// EASY's guarantee: with exact runtime estimates, backfilled jobs
        /// never delay the blocked head job relative to plain FIFO.
        #[test]
        fn prop_backfill_never_delays_head(
            running_jobs in proptest::collection::vec((1usize..9, 1u64..501), 1..4),
            spare in 0usize..8,
            head_wall in 1u64..1001,
            tail in proptest::collection::vec((1usize..17, 1u64..801), 0..6),
        ) {
            let used: usize = running_jobs.iter().map(|&(c, _)| c).sum();
            let total = used + spare;
            // Head blocks now (needs more than the spare cores) but fits
            // the machine once running jobs drain.
            let head_cores = (spare + 1).min(total);
            let running: Vec<(SimTime, usize)> = running_jobs
                .iter()
                .map(|&(c, w)| (SimTime::from_secs(w), c))
                .collect();
            let mut queue = vec![pv(head_cores, head_wall)];
            queue.extend(tail.iter().map(|&(c, w)| pv(c.min(total), w)));

            let mut fifo = FifoScheduler;
            let t_fifo = head_start_time(&mut fifo, queue.clone(), spare, running.clone());
            let mut easy = EasyBackfillScheduler;
            let t_easy = head_start_time(&mut easy, queue, spare, running);
            prop_assert!(
                t_easy <= t_fifo,
                "backfill delayed the head: easy {t_easy:?} > fifo {t_fifo:?}"
            );
        }
    }
}
