//! Batch-queue scheduling policies: FIFO and EASY backfill.
//!
//! The policy decides which queued (eligible) jobs start when cores free up.
//! EnTK's pilot jobs are large container allocations, so head-of-line
//! behaviour matters for time-to-completion when multiple pilots compete.

use entk_sim::{SimDuration, SimTime};

/// Scheduler-facing view of one queued job.
#[derive(Debug, Clone)]
pub struct PendingView {
    /// Cores requested.
    pub cores: usize,
    /// Requested wall time (used as the runtime estimate for backfill).
    pub walltime: SimDuration,
    /// Project / allocation charged (used by fair-share policies).
    pub project: String,
    /// Submission instant (used by aging policies; the queue itself is
    /// already in arrival order).
    pub submitted: SimTime,
}

/// Scheduler-facing view of one running job.
#[derive(Debug, Clone, Copy)]
pub struct RunningView {
    /// Cores held.
    pub cores: usize,
    /// Latest possible end (start + walltime).
    pub expected_end: SimTime,
}

/// A batch scheduling policy. Returns the indices (into `queue`) of jobs to
/// start now; indices must be unique and the selected jobs' total core
/// request must fit in `free_cores`.
pub trait BatchScheduler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Selects jobs to start now. Stateful policies (fair share) may
    /// update internal accounting for the jobs they start.
    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        running: &[RunningView],
    ) -> Vec<usize>;

    /// Notifies the policy that a previously started job released its cores,
    /// whatever the reason (completion, walltime, cancellation, or a node
    /// crash that killed it). `ran` is how long the job actually held cores.
    /// Stateful policies reconcile up-front charges with actual consumption
    /// here; the default is a no-op.
    fn job_ended(
        &mut self,
        _project: &str,
        _cores: usize,
        _walltime: SimDuration,
        _ran: SimDuration,
        _now: SimTime,
    ) {
    }
}

/// Strict first-in-first-out: jobs start in arrival order and the queue head
/// blocks everything behind it.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl BatchScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        _now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        let mut picked = Vec::new();
        let mut free = free_cores;
        for (i, job) in queue.iter().enumerate() {
            if job.cores <= free {
                free -= job.cores;
                picked.push(i);
            } else {
                break; // head-of-line blocking
            }
        }
        picked
    }
}

/// EASY backfill: like FIFO, but once the head job blocks, later jobs may
/// start immediately if doing so cannot delay the head job's earliest
/// possible start (the "shadow time").
#[derive(Debug, Default, Clone, Copy)]
pub struct EasyBackfillScheduler;

impl EasyBackfillScheduler {
    /// Earliest time at which `needed` cores will be free, given currently
    /// running jobs end at their walltime limits, and the spare cores left
    /// at that moment ("extra" cores a backfilled job may hold past the
    /// shadow time).
    fn shadow(
        free_now: usize,
        needed: usize,
        now: SimTime,
        running: &[RunningView],
    ) -> (SimTime, usize) {
        let mut ends: Vec<_> = running.iter().map(|r| (r.expected_end, r.cores)).collect();
        ends.sort_by_key(|&(t, _)| t);
        let mut free = free_now;
        for (t, cores) in ends {
            if free >= needed {
                break;
            }
            free += cores;
            if free >= needed {
                return (t, free - needed);
            }
        }
        if free >= needed {
            (now, free - needed)
        } else {
            // Head job can never run (request exceeds machine); treat the
            // shadow as infinitely far so everything may backfill.
            (SimTime::MAX, free_now)
        }
    }
}

impl BatchScheduler for EasyBackfillScheduler {
    fn name(&self) -> &'static str {
        "easy-backfill"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        running: &[RunningView],
    ) -> Vec<usize> {
        let mut picked = Vec::new();
        let mut free = free_cores;
        let mut i = 0;
        // Phase 1: FIFO prefix.
        while i < queue.len() && queue[i].cores <= free {
            free -= queue[i].cores;
            picked.push(i);
            i += 1;
        }
        if i >= queue.len() {
            return picked;
        }
        // Phase 2: backfill behind the blocked head `queue[i]`.
        let (shadow_time, extra) = Self::shadow(free, queue[i].cores, now, running);
        let mut extra = extra;
        for (j, job) in queue.iter().enumerate().skip(i + 1) {
            if job.cores > free {
                continue;
            }
            let fits_past_shadow = job.cores <= extra;
            let ends_before_shadow = now + job.walltime <= shadow_time;
            if fits_past_shadow || ends_before_shadow {
                free -= job.cores;
                if fits_past_shadow {
                    extra -= job.cores;
                }
                picked.push(j);
            }
        }
        picked
    }
}

/// A cloneable, named constructor of fresh [`BatchScheduler`] instances.
///
/// Registries hand these out instead of boxed schedulers because stateful
/// policies (fair share's usage ledger, round-robin's rotation cursor)
/// must not be shared between independent clusters: a federated session
/// builds one scheduler *per member* from the same factory.
#[derive(Clone)]
pub struct SchedulerFactory {
    label: String,
    make: std::sync::Arc<dyn Fn() -> Box<dyn BatchScheduler> + Send + Sync>,
}

impl SchedulerFactory {
    /// Wraps a constructor closure under a display label.
    pub fn new<F>(label: impl Into<String>, make: F) -> Self
    where
        F: Fn() -> Box<dyn BatchScheduler> + Send + Sync + 'static,
    {
        SchedulerFactory {
            label: label.into(),
            make: std::sync::Arc::new(make),
        }
    }

    /// Builds a fresh scheduler instance.
    pub fn build(&self) -> Box<dyn BatchScheduler> {
        (self.make)()
    }

    /// The factory's display label (usually the registered name).
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for SchedulerFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerFactory")
            .field("label", &self.label)
            .finish()
    }
}

/// Priority aging: jobs are ranked by `wait × aging_rate − cores ×
/// core_penalty`, so small jobs start first but every waiting job's
/// priority grows without bound. Selection walks the ranked queue with
/// head-of-line reservation (stop at the first job that does not fit),
/// which is what bounds any job's wait: once a job ages to the top of the
/// ranking, nothing behind it may start until it fits.
#[derive(Debug, Clone)]
pub struct PriorityAgingScheduler {
    aging_rate: f64,
    core_penalty: f64,
}

impl PriorityAgingScheduler {
    /// `aging_rate`: priority gained per waiting second (clamped to a
    /// positive minimum — a zero rate would reintroduce starvation).
    /// `core_penalty`: priority subtracted per requested core.
    pub fn new(aging_rate: f64, core_penalty: f64) -> Self {
        PriorityAgingScheduler {
            aging_rate: aging_rate.max(1e-9),
            core_penalty: core_penalty.max(0.0),
        }
    }

    fn priority(&self, job: &PendingView, now: SimTime) -> f64 {
        let wait = now.saturating_since(job.submitted).as_secs_f64();
        wait * self.aging_rate - job.cores as f64 * self.core_penalty
    }
}

impl Default for PriorityAgingScheduler {
    fn default() -> Self {
        PriorityAgingScheduler::new(1.0, 4.0)
    }
}

impl BatchScheduler for PriorityAgingScheduler {
    fn name(&self) -> &'static str {
        "priority-aging"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        let mut order: Vec<usize> = (0..queue.len()).collect();
        // Highest priority first; ties break by arrival order (the queue
        // is arrival-ordered, so the index is the tie-break).
        order.sort_by(|&a, &b| {
            self.priority(&queue[b], now)
                .partial_cmp(&self.priority(&queue[a], now))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut picked = Vec::new();
        let mut free = free_cores;
        for i in order {
            if queue[i].cores <= free {
                free -= queue[i].cores;
                picked.push(i);
            } else {
                break; // reservation: the aged head blocks everything behind it
            }
        }
        picked
    }
}

/// Shortest-job-first: jobs are ranked by requested walltime (ties break
/// by arrival order) and started greedily — a short job that fits never
/// waits behind a long one. Long jobs can starve under sustained short
/// traffic; that is the policy's documented trade-off (use
/// `priority-aging` for a bounded-wait guarantee).
#[derive(Debug, Default, Clone, Copy)]
pub struct SjfScheduler;

impl BatchScheduler for SjfScheduler {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        _now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        let mut order: Vec<usize> = (0..queue.len()).collect();
        // Walltime ascending; equal estimates keep arrival order.
        order.sort_by_key(|&i| (queue[i].walltime, i));
        let mut picked = Vec::new();
        let mut free = free_cores;
        for i in order {
            if queue[i].cores <= free {
                free -= queue[i].cores;
                picked.push(i);
            }
        }
        picked
    }
}

/// Round-robin across projects: each selection round offers one start to
/// every project with pending work, in a rotation that persists across
/// calls, so no single project can monopolize a drained machine. Within a
/// project, jobs keep arrival order.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinScheduler {
    /// Persistent rotation cursor (index into the per-call project ring).
    cursor: usize,
}

impl BatchScheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        _now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        // Project ring in order of each project's oldest pending job.
        let mut ring: Vec<&str> = Vec::new();
        for job in queue {
            if !ring.contains(&job.project.as_str()) {
                ring.push(&job.project);
            }
        }
        if ring.is_empty() {
            return Vec::new();
        }
        let start = self.cursor % ring.len();
        let mut taken = vec![false; queue.len()];
        let mut picked = Vec::new();
        let mut free = free_cores;
        // Rounds: one start per project per round, until a full round
        // places nothing.
        loop {
            let mut placed = false;
            for r in 0..ring.len() {
                let project = ring[(start + r) % ring.len()];
                let next = queue
                    .iter()
                    .enumerate()
                    .position(|(i, j)| !taken[i] && j.project == project && j.cores <= free);
                if let Some(i) = next {
                    taken[i] = true;
                    free -= queue[i].cores;
                    picked.push(i);
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }
        if !picked.is_empty() {
            // Next call starts the rotation one project later, so drained
            // queues hand the first offer around fairly.
            self.cursor = (start + 1) % ring.len();
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait SelectHelper: BatchScheduler + Sized {
        fn select_helper(
            mut self,
            queue: &[PendingView],
            free: usize,
            now: SimTime,
            running: &[RunningView],
        ) -> Vec<usize> {
            self.select(queue, free, now, running)
        }
    }
    impl<T: BatchScheduler + Sized> SelectHelper for T {}

    fn pv(cores: usize, wall_secs: u64) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall_secs),
            project: "default".into(),
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_starts_prefix_that_fits() {
        let queue = [pv(4, 100), pv(4, 100), pv(4, 100)];
        let picked = FifoScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn fifo_blocks_behind_large_head() {
        let queue = [pv(16, 100), pv(1, 100)];
        let picked = FifoScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        assert!(
            picked.is_empty(),
            "small job must not jump the head in FIFO"
        );
    }

    #[test]
    fn backfill_lets_short_jobs_jump() {
        // Head needs 16 cores; 8 free now; a running 8-core job ends at t=100.
        // A 4-core 50 s job finishes before the shadow (t=100) and may start.
        let queue = [pv(16, 1000), pv(4, 50)];
        let running = [RunningView {
            cores: 8,
            expected_end: SimTime::from_secs(100),
        }];
        let picked = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &running);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn backfill_does_not_delay_head() {
        // Same setup but the candidate runs 200 s > shadow at t=100 and would
        // use cores the head needs -> must not start.
        let queue = [pv(16, 1000), pv(4, 200)];
        let running = [RunningView {
            cores: 8,
            expected_end: SimTime::from_secs(100),
        }];
        let picked = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &running);
        assert!(picked.is_empty());
    }

    #[test]
    fn backfill_allows_long_jobs_on_extra_cores() {
        // Head needs 10: 8 free + first completion (4 cores at t=100) gives 12,
        // so 2 cores are "extra" and a long 2-core job may hold them.
        let queue = [pv(10, 1000), pv(2, 10_000)];
        let running = [
            RunningView {
                cores: 4,
                expected_end: SimTime::from_secs(100),
            },
            RunningView {
                cores: 4,
                expected_end: SimTime::from_secs(500),
            },
        ];
        let picked = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &running);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn backfill_equals_fifo_when_everything_fits() {
        let queue = [pv(2, 10), pv(2, 10), pv(2, 10)];
        let fifo = FifoScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        let easy = EasyBackfillScheduler.select_helper(&queue, 8, SimTime::ZERO, &[]);
        assert_eq!(fifo, easy);
    }

    #[test]
    fn selected_jobs_always_fit() {
        // Sanity across both policies with a crowded queue.
        let queue: Vec<_> = (1..10).map(|i| pv(i, 100 * i as u64)).collect();
        let mut fifo = FifoScheduler;
        let mut easy = EasyBackfillScheduler;
        let scheds: [&mut dyn BatchScheduler; 2] = [&mut fifo, &mut easy];
        for sched in scheds {
            let picked = sched.select(&queue, 12, SimTime::ZERO, &[]);
            let total: usize = picked.iter().map(|&i| queue[i].cores).sum();
            assert!(total <= 12, "{} oversubscribed", sched.name());
            let mut sorted = picked.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), picked.len(), "duplicate selection");
        }
    }
}

/// Fair-share scheduling: jobs are prioritized by their project's
/// accumulated (exponentially decayed) core-seconds charge — light users
/// jump ahead of heavy ones. Within the reordered queue, first-fit applies
/// without head-of-line blocking.
///
/// The accounting itself lives in [`crate::fairshare::UsageLedger`]
/// (shared with the workload layer's session-granularity fair-share
/// admission); this type adds the queue-ordering and first-fit selection
/// on top.
#[derive(Debug, Default)]
pub struct FairShareScheduler {
    /// Decayed core-second usage per project.
    ledger: crate::fairshare::UsageLedger<String>,
}

impl FairShareScheduler {
    /// Creates a fair-share policy with the given usage half-life.
    pub fn new(half_life_secs: f64) -> Self {
        FairShareScheduler {
            ledger: crate::fairshare::UsageLedger::new(half_life_secs),
        }
    }

    /// Current decayed usage charged to a project.
    pub fn usage_of(&self, project: &str) -> f64 {
        self.ledger.usage_of(project)
    }
}

impl BatchScheduler for FairShareScheduler {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn select(
        &mut self,
        queue: &[PendingView],
        free_cores: usize,
        now: SimTime,
        _running: &[RunningView],
    ) -> Vec<usize> {
        self.ledger.decay_to(now);
        // Order queue indices by project usage (ties: arrival order).
        let mut order: Vec<usize> = (0..queue.len()).collect();
        order.sort_by(|&a, &b| {
            let ua = self.usage_of(&queue[a].project);
            let ub = self.usage_of(&queue[b].project);
            ua.partial_cmp(&ub).expect("finite usage").then(a.cmp(&b))
        });
        let mut free = free_cores;
        let mut picked = Vec::new();
        for i in order {
            let job = &queue[i];
            if job.cores <= free {
                free -= job.cores;
                picked.push(i);
                // Charge the request up front (cores × requested walltime);
                // `job_ended` refunds the unused remainder, so a job killed
                // early — and its resubmission — is never double-charged.
                self.ledger.charge(
                    job.project.clone(),
                    job.cores as f64 * job.walltime.as_secs_f64(),
                );
            }
        }
        picked
    }

    fn job_ended(
        &mut self,
        project: &str,
        cores: usize,
        walltime: SimDuration,
        ran: SimDuration,
        now: SimTime,
    ) {
        self.ledger.decay_to(now);
        // The up-front charge was cores × walltime at start time; by now it
        // has decayed by 0.5^(ran / half-life). Refund the unused tail at
        // the same decayed weight, leaving only the consumed core-seconds.
        let unused = walltime.saturating_sub(ran).as_secs_f64() * cores as f64;
        self.ledger.refund(project, unused, ran);
    }
}

#[cfg(test)]
mod fairshare_tests {
    use super::*;

    fn pv(cores: usize, wall: u64, project: &str) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall),
            project: project.into(),
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn light_users_jump_heavy_users() {
        let mut fs = FairShareScheduler::new(0.0);
        // Project A starts a big job: charged heavily.
        let first = fs.select(&[pv(8, 1000, "A")], 8, SimTime::ZERO, &[]);
        assert_eq!(first, vec![0]);
        // Later: A's next job queued before B's, but only 8 cores free —
        // B goes first because A's usage is high.
        let picked = fs.select(
            &[pv(8, 1000, "A"), pv(8, 10, "B")],
            8,
            SimTime::from_secs(10),
            &[],
        );
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn no_head_of_line_blocking() {
        let mut fs = FairShareScheduler::new(0.0);
        // Head needs 16 of 8 free; the next fits and starts.
        let picked = fs.select(&[pv(16, 10, "A"), pv(4, 10, "B")], 8, SimTime::ZERO, &[]);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn usage_decays_over_time() {
        let mut fs = FairShareScheduler::new(100.0);
        fs.select(&[pv(10, 100, "A")], 10, SimTime::ZERO, &[]);
        let early = fs.usage_of("A");
        fs.select(&[], 10, SimTime::from_secs(200), &[]);
        let late = fs.usage_of("A");
        assert!(
            (late - early / 4.0).abs() < 1e-9,
            "two half-lives: {early} -> {late}"
        );
    }

    #[test]
    fn respects_capacity() {
        let mut fs = FairShareScheduler::new(0.0);
        let queue = [pv(4, 10, "A"), pv(4, 10, "B"), pv(4, 10, "C")];
        let picked = fs.select(&queue, 8, SimTime::ZERO, &[]);
        let total: usize = picked.iter().map(|&i| queue[i].cores).sum();
        assert!(total <= 8);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn crash_killed_resubmission_is_not_double_charged() {
        // A 8-core 1000 s job starts, is killed by a crash after 50 s, and
        // is resubmitted. Without the end-of-job refund the project carried
        // two full up-front charges (16 000 core-seconds); with it, only the
        // consumed 400 plus the live resubmission's charge remain.
        let mut fs = FairShareScheduler::new(0.0);
        fs.select(&[pv(8, 1000, "A")], 8, SimTime::ZERO, &[]);
        assert_eq!(fs.usage_of("A"), 8_000.0);
        // Crash kills the job at t = 50: refund the unused 950 s.
        fs.job_ended(
            "A",
            8,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(50),
            SimTime::from_secs(50),
        );
        assert_eq!(fs.usage_of("A"), 400.0, "only consumed core-seconds remain");
        // Resubmission charges once more — never stacked on the dead charge.
        fs.select(&[pv(8, 1000, "A")], 8, SimTime::from_secs(50), &[]);
        assert_eq!(fs.usage_of("A"), 8_400.0);
        // The resubmission then runs to completion: no refund is due.
        fs.job_ended(
            "A",
            8,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(1000),
            SimTime::from_secs(1050),
        );
        assert_eq!(fs.usage_of("A"), 8_400.0);
    }

    #[test]
    fn refund_respects_decay() {
        // Half-life 100 s: a charge made at t=0 has halved by t=100, so the
        // refund of the unused tail must be halved too, never pushing usage
        // negative or over-refunding.
        let mut fs = FairShareScheduler::new(100.0);
        fs.select(&[pv(4, 1000, "A")], 4, SimTime::ZERO, &[]);
        let charged = fs.usage_of("A"); // 4000
        fs.job_ended(
            "A",
            4,
            SimDuration::from_secs(1000),
            SimDuration::from_secs(100),
            SimTime::from_secs(100),
        );
        // Decayed charge: 4000/2 = 2000; decayed refund: 4×900/2 = 1800.
        let left = fs.usage_of("A");
        assert!(
            (left - (charged / 2.0 - 1800.0)).abs() < 1e-9,
            "left {left}"
        );
        assert!(left >= 0.0);
    }

    #[test]
    fn overrun_job_gets_no_refund() {
        let mut fs = FairShareScheduler::new(0.0);
        fs.select(&[pv(2, 100, "A")], 2, SimTime::ZERO, &[]);
        // Startup padding can make `ran` exceed the requested walltime.
        fs.job_ended(
            "A",
            2,
            SimDuration::from_secs(100),
            SimDuration::from_secs(103),
            SimTime::from_secs(103),
        );
        assert_eq!(fs.usage_of("A"), 200.0);
    }
}

#[cfg(test)]
mod backfill_property_tests {
    use super::*;
    use proptest::prelude::*;

    /// Forward-simulates a queue under `sched` until the head job starts,
    /// assuming every job runs exactly its requested walltime (the estimate
    /// EASY reasons with). Returns the head's start time.
    fn head_start_time(
        sched: &mut dyn BatchScheduler,
        mut queue: Vec<PendingView>,
        mut free: usize,
        mut running: Vec<(SimTime, usize)>,
    ) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            let views: Vec<RunningView> = running
                .iter()
                .map(|&(end, cores)| RunningView {
                    cores,
                    expected_end: end,
                })
                .collect();
            let mut picked = sched.select(&queue, free, now, &views);
            picked.sort_unstable();
            for &qi in picked.iter().rev() {
                if qi == 0 {
                    return now;
                }
                let job = queue.remove(qi);
                free -= job.cores;
                running.push((now + job.walltime, job.cores));
            }
            let Some(next) = running.iter().map(|&(end, _)| end).min() else {
                // Nothing running and the head did not start: it can never
                // fit (excluded by construction below).
                return SimTime::MAX;
            };
            now = next;
            running.retain(|&(end, cores)| {
                if end <= now {
                    free += cores;
                    false
                } else {
                    true
                }
            });
        }
        SimTime::MAX
    }

    fn pv(cores: usize, wall: u64) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall),
            project: "default".into(),
            submitted: SimTime::ZERO,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// EASY's guarantee: with exact runtime estimates, backfilled jobs
        /// never delay the blocked head job relative to plain FIFO.
        #[test]
        fn prop_backfill_never_delays_head(
            running_jobs in proptest::collection::vec((1usize..9, 1u64..501), 1..4),
            spare in 0usize..8,
            head_wall in 1u64..1001,
            tail in proptest::collection::vec((1usize..17, 1u64..801), 0..6),
        ) {
            let used: usize = running_jobs.iter().map(|&(c, _)| c).sum();
            let total = used + spare;
            // Head blocks now (needs more than the spare cores) but fits
            // the machine once running jobs drain.
            let head_cores = (spare + 1).min(total);
            let running: Vec<(SimTime, usize)> = running_jobs
                .iter()
                .map(|&(c, w)| (SimTime::from_secs(w), c))
                .collect();
            let mut queue = vec![pv(head_cores, head_wall)];
            queue.extend(tail.iter().map(|&(c, w)| pv(c.min(total), w)));

            let mut fifo = FifoScheduler;
            let t_fifo = head_start_time(&mut fifo, queue.clone(), spare, running.clone());
            let mut easy = EasyBackfillScheduler;
            let t_easy = head_start_time(&mut easy, queue, spare, running);
            prop_assert!(
                t_easy <= t_fifo,
                "backfill delayed the head: easy {t_easy:?} > fifo {t_fifo:?}"
            );
        }
    }
}

#[cfg(test)]
mod plugin_scheduler_tests {
    use super::*;
    use proptest::prelude::*;

    fn pv_at(cores: usize, wall: u64, submitted: u64) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(wall),
            project: "default".into(),
            submitted: SimTime::from_secs(submitted),
        }
    }

    fn pvp(cores: usize, project: &str) -> PendingView {
        PendingView {
            cores,
            walltime: SimDuration::from_secs(100),
            project: project.into(),
            submitted: SimTime::ZERO,
        }
    }

    /// Forward-simulates until every queued job has *started* (jobs run
    /// exactly their requested walltime). Returns the instant the last job
    /// started, or `None` if the queue never drains.
    fn drain_start_all(
        sched: &mut dyn BatchScheduler,
        mut queue: Vec<PendingView>,
        total_cores: usize,
    ) -> Option<SimTime> {
        let mut free = total_cores;
        let mut running: Vec<(SimTime, usize)> = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            if queue.is_empty() {
                return Some(now);
            }
            let views: Vec<RunningView> = running
                .iter()
                .map(|&(end, cores)| RunningView {
                    cores,
                    expected_end: end,
                })
                .collect();
            let mut picked = sched.select(&queue, free, now, &views);
            picked.sort_unstable();
            for &qi in picked.iter().rev() {
                let job = queue.remove(qi);
                free -= job.cores;
                running.push((now + job.walltime, job.cores));
            }
            if queue.is_empty() {
                return Some(now);
            }
            let next = running.iter().map(|&(end, _)| end).min()?;
            now = next;
            running.retain(|&(end, cores)| {
                if end <= now {
                    free += cores;
                    false
                } else {
                    true
                }
            });
        }
        None
    }

    #[test]
    fn aging_reserves_cores_for_the_starved_head() {
        // A big job that has waited 10 000 s outranks a fresh small one;
        // the reservation holds every free core for it.
        let queue = [pv_at(16, 100, 0), pv_at(1, 100, 10_000)];
        let now = SimTime::from_secs(10_000);
        let mut aging = PriorityAgingScheduler::default();
        assert!(
            aging.select(&queue, 8, now, &[]).is_empty(),
            "aged head must block fresh jobs until it fits"
        );
        // SJF has no such guarantee: it happily starts the small job.
        let mut sjf = SjfScheduler;
        assert_eq!(sjf.select(&queue, 8, now, &[]), vec![1]);
    }

    #[test]
    fn aging_prefers_small_jobs_when_fresh() {
        // Equal wait: the core penalty ranks the 1-core job first.
        let queue = [pv_at(8, 100, 0), pv_at(1, 100, 0)];
        let mut aging = PriorityAgingScheduler::default();
        assert_eq!(aging.select(&queue, 9, SimTime::ZERO, &[]), vec![1, 0]);
    }

    #[test]
    fn sjf_starts_short_jobs_first() {
        let queue = [pv_at(4, 1000, 0), pv_at(4, 10, 0), pv_at(4, 100, 0)];
        let mut sjf = SjfScheduler;
        assert_eq!(sjf.select(&queue, 12, SimTime::ZERO, &[]), vec![1, 2, 0]);
    }

    #[test]
    fn round_robin_interleaves_projects_and_rotates() {
        let mut rr = RoundRobinScheduler::default();
        let queue = [pvp(1, "A"), pvp(1, "A"), pvp(1, "B"), pvp(1, "C")];
        // One start per project per round: A, B, C before A's second job.
        assert_eq!(rr.select(&queue, 3, SimTime::ZERO, &[]), vec![0, 2, 3]);
        // The cursor advanced, so the next drained-queue offer goes to the
        // second project in the ring.
        let queue2 = [pvp(1, "A"), pvp(1, "B")];
        assert_eq!(rr.select(&queue2, 1, SimTime::ZERO, &[]), vec![1]);
    }

    #[test]
    fn factory_builds_fresh_stateful_instances() {
        let factory =
            SchedulerFactory::new("fair_share", || Box::new(FairShareScheduler::new(0.0)));
        assert_eq!(factory.label(), "fair_share");
        let mut charged = factory.build();
        assert_eq!(charged.name(), "fair-share");
        // Charge project A heavily on the first instance.
        charged.select(&[pvp(8, "A")], 8, SimTime::ZERO, &[]);
        let contended = [pvp(8, "A"), pvp(8, "B")];
        // The charged instance lets B jump; a freshly built one must not
        // have inherited that ledger and keeps arrival order.
        assert_eq!(charged.select(&contended, 8, SimTime::ZERO, &[]), vec![1]);
        let mut fresh = factory.build();
        assert_eq!(fresh.select(&contended, 8, SimTime::ZERO, &[]), vec![0]);
    }

    #[test]
    fn new_schedulers_respect_capacity_and_uniqueness() {
        let queue: Vec<_> = (1..10).map(|i| pv_at(i, 100 * i as u64, 0)).collect();
        let mut aging = PriorityAgingScheduler::default();
        let mut sjf = SjfScheduler;
        let mut rr = RoundRobinScheduler::default();
        let scheds: [&mut dyn BatchScheduler; 3] = [&mut aging, &mut sjf, &mut rr];
        for sched in scheds {
            let picked = sched.select(&queue, 12, SimTime::ZERO, &[]);
            let total: usize = picked.iter().map(|&i| queue[i].cores).sum();
            assert!(total <= 12, "{} oversubscribed", sched.name());
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), picked.len(), "{} duplicated", sched.name());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Bounded wait: under priority aging every job starts no later
        /// than the serial-execution bound (sum of all walltimes). The
        /// reservation guarantees progress — once a job ages to the top,
        /// nothing may leapfrog it.
        #[test]
        fn prop_priority_aging_never_starves(
            jobs in proptest::collection::vec((1usize..17, 1u64..501), 1..12),
            aging_rate in 0.01f64..10.0,
            core_penalty in 0.0f64..100.0,
        ) {
            let total_cores = 16usize;
            let serial: u64 = jobs.iter().map(|&(_, w)| w).sum();
            let queue: Vec<PendingView> =
                jobs.iter().map(|&(c, w)| pv_at(c, w, 0)).collect();
            let mut sched = PriorityAgingScheduler::new(aging_rate, core_penalty);
            let drained = drain_start_all(&mut sched, queue, total_cores);
            prop_assert!(drained.is_some(), "queue never drained: starvation");
            let last_start = drained.unwrap();
            prop_assert!(
                last_start <= SimTime::from_secs(serial),
                "last start {last_start:?} exceeds serial bound {serial} s"
            );
        }

        /// SJF determinism: equal walltime estimates keep arrival order —
        /// the selection equals a stable sort of the queue by walltime.
        #[test]
        fn prop_sjf_ties_break_by_arrival_order(
            walls in proptest::collection::vec(1u64..6, 1..16),
        ) {
            let queue: Vec<PendingView> =
                walls.iter().map(|&w| pv_at(1, w, 0)).collect();
            let mut sched = SjfScheduler;
            // Every 1-core job fits: selection order IS the ranking.
            let picked = sched.select(&queue, queue.len(), SimTime::ZERO, &[]);
            let mut expect: Vec<usize> = (0..queue.len()).collect();
            expect.sort_by_key(|&i| (walls[i], i));
            prop_assert_eq!(picked, expect);
        }
    }
}
