//! The fair-share usage ledger: per-principal accumulated (exponentially
//! decayed) core-second charges with an up-front-charge / refund-on-end
//! discipline.
//!
//! This is the accounting core of [`crate::FairShareScheduler`], extracted
//! so other layers can reuse the identical policy at their own granularity
//! — the batch scheduler keys it by project name at *job* granularity; the
//! workload service keys it by tenant id at *session* granularity. The
//! ledger itself is policy-free: it only answers "how much has this
//! principal consumed, decayed to now?"; callers order their queues by
//! that number.
//!
//! ## Accounting discipline
//!
//! * [`UsageLedger::charge`] books a principal's expected consumption the
//!   moment work is admitted (e.g. cores × requested walltime). Charging
//!   up front means a principal cannot evade accounting by keeping many
//!   admissions in flight.
//! * [`UsageLedger::refund`] returns the *unused* remainder when the work
//!   ends early, weighted by the decay the original charge has already
//!   undergone — so a job killed after `ran` seconds (and its
//!   resubmission) is never double-charged.
//! * [`UsageLedger::decay_to`] applies the exponential half-life to every
//!   balance. A zero half-life disables decay (pure accumulation).
//!
//! Balances live in a `BTreeMap`, so iteration (and therefore checkpoint
//! serialization) is deterministic.

use entk_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Decayed per-principal usage accounting shared by the cluster's
/// fair-share batch scheduler and the workload service's fair-share
/// admission policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageLedger<K: Ord + Clone> {
    usage: BTreeMap<K, f64>,
    /// Decay half-life in virtual seconds (0 = no decay).
    pub half_life_secs: f64,
    last_decay: Option<SimTime>,
}

impl<K: Ord + Clone> UsageLedger<K> {
    /// Creates an empty ledger with the given usage half-life.
    pub fn new(half_life_secs: f64) -> Self {
        UsageLedger {
            usage: BTreeMap::new(),
            half_life_secs,
            last_decay: None,
        }
    }

    /// Current decayed balance charged to a principal (0 if never seen).
    pub fn usage_of<Q>(&self, key: &Q) -> f64
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.usage.get(key).copied().unwrap_or(0.0)
    }

    /// Decays every balance from the last decay instant to `now`. Callers
    /// decay before comparing balances or booking charges so that all
    /// balances share the same reference instant.
    pub fn decay_to(&mut self, now: SimTime) {
        if self.half_life_secs <= 0.0 {
            self.last_decay = Some(now);
            return;
        }
        if let Some(last) = self.last_decay {
            let dt = now.saturating_since(last).as_secs_f64();
            if dt > 0.0 {
                let factor = 0.5f64.powf(dt / self.half_life_secs);
                for v in self.usage.values_mut() {
                    *v *= factor;
                }
            }
        }
        self.last_decay = Some(now);
    }

    /// Books `amount` (typically cores × expected walltime seconds)
    /// against a principal at the current decay instant.
    pub fn charge(&mut self, key: K, amount: f64) {
        *self.usage.entry(key).or_insert(0.0) += amount;
    }

    /// Refunds the unused remainder of an up-front charge booked `elapsed`
    /// virtual seconds ago: the original charge has since decayed by
    /// `0.5^(elapsed / half-life)`, so the refund is weighted by the same
    /// factor, leaving exactly the consumed share on the balance. Balances
    /// never go negative.
    pub fn refund<Q>(&mut self, key: &Q, amount: f64, elapsed: SimDuration)
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let factor = if self.half_life_secs > 0.0 {
            0.5f64.powf(elapsed.as_secs_f64() / self.half_life_secs)
        } else {
            1.0
        };
        if let Some(v) = self.usage.get_mut(key) {
            *v = (*v - amount * factor).max(0.0);
        }
    }

    /// Deterministic (key-ordered) view of every non-zero balance, for
    /// checkpoint serialization.
    pub fn balances(&self) -> impl Iterator<Item = (&K, f64)> + '_ {
        self.usage.iter().map(|(k, &v)| (k, v))
    }

    /// The instant balances were last decayed to, in microseconds — the
    /// piece of state (besides the balances) a checkpoint must carry.
    pub fn last_decay_micros(&self) -> Option<u64> {
        self.last_decay.map(SimTime::as_micros)
    }

    /// Rebuilds a ledger from checkpointed balances and decay instant.
    pub fn restore(
        half_life_secs: f64,
        balances: impl IntoIterator<Item = (K, f64)>,
        last_decay_micros: Option<u64>,
    ) -> Self {
        UsageLedger {
            usage: balances.into_iter().collect(),
            half_life_secs,
            last_decay: last_decay_micros.map(SimTime::from_micros),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_refunds_never_go_negative() {
        let mut ledger: UsageLedger<u64> = UsageLedger::new(0.0);
        ledger.decay_to(SimTime::ZERO);
        ledger.charge(7, 100.0);
        ledger.charge(7, 50.0);
        assert_eq!(ledger.usage_of(&7), 150.0);
        ledger.refund(&7, 200.0, SimDuration::from_secs(10));
        assert_eq!(ledger.usage_of(&7), 0.0);
        assert_eq!(ledger.usage_of(&99), 0.0);
    }

    #[test]
    fn decay_halves_balances_per_half_life() {
        let mut ledger: UsageLedger<String> = UsageLedger::new(100.0);
        ledger.decay_to(SimTime::ZERO);
        ledger.charge("alice".to_string(), 80.0);
        ledger.decay_to(SimTime::from_secs(100));
        assert!((ledger.usage_of(&"alice".to_string()) - 40.0).abs() < 1e-9);
        ledger.decay_to(SimTime::from_secs(300));
        assert!((ledger.usage_of(&"alice".to_string()) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn refund_matches_decayed_weight_of_the_original_charge() {
        // Charge 10 cores x 100 s at t=0; the job ends at t=50 having used
        // half. The refund of the unused 500 core-seconds is weighted by
        // the decay the charge underwent, so the remaining balance equals
        // exactly the decayed consumed share.
        let half_life = 50.0;
        let mut ledger: UsageLedger<u64> = UsageLedger::new(half_life);
        ledger.decay_to(SimTime::ZERO);
        ledger.charge(1, 1000.0);
        ledger.decay_to(SimTime::from_secs(50));
        ledger.refund(&1, 500.0, SimDuration::from_secs(50));
        // Balance: 1000 * 0.5 - 500 * 0.5 = 250.
        assert!((ledger.usage_of(&1) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn restore_round_trips_balances_and_decay_state() {
        let mut ledger: UsageLedger<u64> = UsageLedger::new(60.0);
        ledger.decay_to(SimTime::from_secs(5));
        ledger.charge(1, 10.0);
        ledger.charge(2, 20.0);
        let restored = UsageLedger::restore(
            ledger.half_life_secs,
            ledger.balances().map(|(k, v)| (*k, v)).collect::<Vec<_>>(),
            ledger.last_decay_micros(),
        );
        assert_eq!(restored, ledger);
    }
}
