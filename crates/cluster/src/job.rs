//! Batch jobs: the unit of resource acquisition on a simulated cluster.
//!
//! A batch job is a container allocation (in our stack: a pilot). Its
//! lifecycle follows the classic batch-system state machine with validated
//! transitions.

use entk_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a batch job within one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchJobId(pub u64);

impl fmt::Display for BatchJobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job.{:06}", self.0)
    }
}

/// Request for a batch allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchJobDescription {
    /// Job name (bookkeeping).
    pub name: String,
    /// Cores requested. The cluster rounds allocation up to whole nodes only
    /// for exclusive-node policies; by default cores are packed.
    pub cores: usize,
    /// Maximum wall time; the job is killed when it expires.
    pub walltime: SimDuration,
    /// Queue name (bookkeeping; one queue is modelled).
    pub queue: String,
    /// Allocation/project charged (bookkeeping).
    pub project: String,
}

impl BatchJobDescription {
    /// Convenience constructor with defaults for queue/project.
    pub fn new(name: impl Into<String>, cores: usize, walltime: SimDuration) -> Self {
        BatchJobDescription {
            name: name.into(),
            cores,
            walltime,
            queue: "normal".into(),
            project: "TG-MCB090174".into(),
        }
    }
}

/// Batch-job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchJobState {
    /// Accepted by the batch system, waiting in the queue.
    Queued,
    /// Nodes assigned, prologue running.
    Starting,
    /// Payload executing on assigned cores.
    Running,
    /// Finished normally (owner completed it).
    Completed,
    /// Killed because it exceeded its wall time.
    TimedOut,
    /// Cancelled by the owner while queued or running.
    Cancelled,
    /// Rejected or failed (e.g. request exceeds machine size).
    Failed,
}

impl BatchJobState {
    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            BatchJobState::Completed
                | BatchJobState::TimedOut
                | BatchJobState::Cancelled
                | BatchJobState::Failed
        )
    }

    /// Whether `self -> next` is a legal lifecycle transition.
    pub fn can_transition_to(self, next: BatchJobState) -> bool {
        use BatchJobState::*;
        matches!(
            (self, next),
            (Queued, Starting)
                | (Queued, Cancelled)
                | (Queued, Failed)
                | (Starting, Running)
                | (Starting, Cancelled)
                | (Starting, Failed)
                | (Running, Completed)
                | (Running, TimedOut)
                | (Running, Cancelled)
                | (Running, Failed)
        )
    }
}

/// A batch job tracked by the cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchJob {
    /// Job id.
    pub id: BatchJobId,
    /// The original request.
    pub description: BatchJobDescription,
    /// Current state.
    pub state: BatchJobState,
    /// Submission time.
    pub submitted_at: SimTime,
    /// When the job became eligible for scheduling (after modelled queue wait).
    pub eligible_at: Option<SimTime>,
    /// When nodes were assigned.
    pub started_at: Option<SimTime>,
    /// When the payload began running (after startup).
    pub running_at: Option<SimTime>,
    /// When the job reached a terminal state.
    pub finished_at: Option<SimTime>,
    /// Node indices assigned while running.
    pub nodes: Vec<usize>,
}

impl BatchJob {
    /// Creates a freshly queued job.
    pub fn new(id: BatchJobId, description: BatchJobDescription, now: SimTime) -> Self {
        BatchJob {
            id,
            description,
            state: BatchJobState::Queued,
            submitted_at: now,
            eligible_at: None,
            started_at: None,
            running_at: None,
            finished_at: None,
            nodes: Vec::new(),
        }
    }

    /// Applies a state transition, panicking on illegal ones (these indicate
    /// simulator bugs, not user errors).
    pub fn transition(&mut self, next: BatchJobState, now: SimTime) {
        assert!(
            self.state.can_transition_to(next),
            "illegal batch job transition {:?} -> {:?} for {}",
            self.state,
            next,
            self.id
        );
        self.state = next;
        match next {
            BatchJobState::Starting => self.started_at = Some(now),
            BatchJobState::Running => self.running_at = Some(now),
            s if s.is_terminal() => self.finished_at = Some(now),
            _ => {}
        }
    }

    /// Queue wait actually experienced (submission to node assignment).
    pub fn queue_wait(&self) -> Option<SimDuration> {
        self.started_at
            .map(|s| s.saturating_since(self.submitted_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn desc() -> BatchJobDescription {
        BatchJobDescription::new("test", 8, SimDuration::from_secs(3600))
    }

    #[test]
    fn happy_path_transitions() {
        let mut job = BatchJob::new(BatchJobId(1), desc(), SimTime::ZERO);
        job.transition(BatchJobState::Starting, SimTime::from_secs(10));
        job.transition(BatchJobState::Running, SimTime::from_secs(12));
        job.transition(BatchJobState::Completed, SimTime::from_secs(100));
        assert_eq!(job.queue_wait(), Some(SimDuration::from_secs(10)));
        assert_eq!(job.finished_at, Some(SimTime::from_secs(100)));
        assert!(job.state.is_terminal());
    }

    #[test]
    #[should_panic(expected = "illegal batch job transition")]
    fn cannot_run_without_starting() {
        let mut job = BatchJob::new(BatchJobId(1), desc(), SimTime::ZERO);
        job.transition(BatchJobState::Running, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "illegal batch job transition")]
    fn terminal_states_are_sticky() {
        let mut job = BatchJob::new(BatchJobId(1), desc(), SimTime::ZERO);
        job.transition(BatchJobState::Cancelled, SimTime::ZERO);
        job.transition(BatchJobState::Starting, SimTime::ZERO);
    }

    #[test]
    fn cancel_allowed_from_queue_and_run() {
        for path in [
            vec![BatchJobState::Cancelled],
            vec![BatchJobState::Starting, BatchJobState::Cancelled],
            vec![
                BatchJobState::Starting,
                BatchJobState::Running,
                BatchJobState::Cancelled,
            ],
        ] {
            let mut job = BatchJob::new(BatchJobId(1), desc(), SimTime::ZERO);
            for s in path {
                job.transition(s, SimTime::ZERO);
            }
            assert_eq!(job.state, BatchJobState::Cancelled);
        }
    }

    proptest! {
        /// No sequence of legal transitions escapes a terminal state.
        #[test]
        fn prop_terminal_states_absorb(steps in proptest::collection::vec(0usize..7, 1..20)) {
            use BatchJobState::*;
            let all = [Queued, Starting, Running, Completed, TimedOut, Cancelled, Failed];
            let mut state = Queued;
            for s in steps {
                let next = all[s];
                if state.can_transition_to(next) {
                    prop_assert!(!state.is_terminal());
                    state = next;
                }
            }
        }
    }
}
