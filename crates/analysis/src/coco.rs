//! CoCo ("Complementary Coordinates") stand-in.
//!
//! The paper's SAL workloads (Figs. 7–9) run Amber simulations followed by a
//! *serial* CoCo analysis over all trajectories (Laughton et al. 2009): PCA
//! of the sampled conformations, then generation of new starting structures
//! in poorly-sampled regions of the projected space. This module implements
//! that algorithm: occupancy grid over the leading PCs, frontier-bin
//! selection, inverse projection back to conformation space.
//!
//! Cost is linear in the total number of frames — exactly the property the
//! paper's analysis-time curves exhibit.

use crate::pca::Pca;
use serde::{Deserialize, Serialize};

/// CoCo configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CocoConfig {
    /// Number of principal components spanning the projection space (1–3).
    pub n_components: usize,
    /// Grid resolution per dimension.
    pub grid: usize,
}

impl Default for CocoConfig {
    fn default() -> Self {
        CocoConfig {
            n_components: 2,
            grid: 10,
        }
    }
}

/// Result of one CoCo pass.
#[derive(Debug, Clone)]
pub struct CocoResult {
    /// New starting conformations, one per requested output.
    pub new_starts: Vec<Vec<f64>>,
    /// Fraction of grid bins visited by the input ensemble.
    pub occupancy: f64,
    /// The PCA model fitted to the ensemble.
    pub pca: Pca,
}

/// Runs CoCo over an ensemble of conformations (rows), returning `n_new`
/// suggested starting structures in unexplored regions.
pub fn coco(frames: &[Vec<f64>], n_new: usize, config: CocoConfig) -> CocoResult {
    assert!(!frames.is_empty(), "CoCo needs at least one frame");
    let d = config.n_components.clamp(1, 3);
    let pca = Pca::fit(frames, d);
    let projected: Vec<Vec<f64>> = frames.iter().map(|f| pca.project(f)).collect();

    // Bounding box of the projected cloud, padded 10% so frontier bins
    // extend slightly beyond sampled space.
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in &projected {
        for a in 0..d {
            lo[a] = lo[a].min(p[a]);
            hi[a] = hi[a].max(p[a]);
        }
    }
    for a in 0..d {
        let span = (hi[a] - lo[a]).max(1e-9);
        lo[a] -= 0.1 * span;
        hi[a] += 0.1 * span;
    }

    let g = config.grid.max(2);
    let n_bins = g.pow(d as u32);
    let mut counts = vec![0u32; n_bins];
    let bin_of = |p: &[f64]| -> usize {
        let mut idx = 0;
        for a in 0..d {
            let f = ((p[a] - lo[a]) / (hi[a] - lo[a])).clamp(0.0, 0.999_999);
            idx = idx * g + (f * g as f64) as usize;
        }
        idx
    };
    for p in &projected {
        counts[bin_of(p)] += 1;
    }
    let visited = counts.iter().filter(|&&c| c > 0).count();
    let occupancy = visited as f64 / n_bins as f64;

    // Rank empty bins by distance from the sampled centroid-of-mass of
    // visited bins — farthest empty bins are the exploration frontier.
    let centre_of = |idx: usize| -> Vec<f64> {
        let mut c = vec![0.0; d];
        let mut rest = idx;
        for a in (0..d).rev() {
            let k = rest % g;
            rest /= g;
            c[a] = lo[a] + (k as f64 + 0.5) * (hi[a] - lo[a]) / g as f64;
        }
        c
    };
    let mut sampled_centroid = vec![0.0; d];
    for p in &projected {
        for a in 0..d {
            sampled_centroid[a] += p[a] / projected.len() as f64;
        }
    }
    let mut empty: Vec<(f64, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == 0)
        .map(|(i, _)| {
            let c = centre_of(i);
            let dist2: f64 = c
                .iter()
                .zip(&sampled_centroid)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (dist2, i)
        })
        .collect();
    empty.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));

    // Inverse-project frontier bin centres; if all bins are occupied, fall
    // back to the least-sampled bins.
    let mut new_starts = Vec::with_capacity(n_new);
    for &(_, idx) in empty.iter().take(n_new) {
        new_starts.push(pca.inverse(&centre_of(idx)));
    }
    if new_starts.len() < n_new {
        let mut by_count: Vec<(u32, usize)> =
            counts.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        by_count.sort_unstable();
        for &(_, idx) in by_count.iter() {
            if new_starts.len() >= n_new {
                break;
            }
            new_starts.push(pca.inverse(&centre_of(idx)));
        }
    }
    CocoResult {
        new_starts,
        occupancy,
        pca,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A tight cluster in 6-D conformation space.
    fn cluster(n: usize, centre: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..6)
                    .map(|k| centre + (k as f64) * 0.3 + (rng.random::<f64>() - 0.5) * 0.4)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn returns_requested_number_of_starts() {
        let frames = cluster(80, 0.0, 1);
        let result = coco(&frames, 8, CocoConfig::default());
        assert_eq!(result.new_starts.len(), 8);
        assert!(result.new_starts.iter().all(|s| s.len() == 6));
    }

    #[test]
    fn occupancy_is_low_for_tight_cluster() {
        let frames = cluster(100, 0.0, 2);
        let result = coco(&frames, 4, CocoConfig::default());
        assert!(result.occupancy < 0.5, "occupancy {}", result.occupancy);
    }

    #[test]
    fn new_starts_are_outside_sampled_region() {
        let frames = cluster(200, 0.0, 3);
        let result = coco(&frames, 4, CocoConfig::default());
        // Project the new starts: they should be farther from the projected
        // centroid than the typical sampled point.
        let sampled: Vec<Vec<f64>> = frames.iter().map(|f| result.pca.project(f)).collect();
        let mean_r: f64 = sampled
            .iter()
            .map(|p| p.iter().map(|x| x * x).sum::<f64>().sqrt())
            .sum::<f64>()
            / sampled.len() as f64;
        for s in &result.new_starts {
            let p = result.pca.project(s);
            let r = p.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                r > mean_r,
                "frontier point not beyond mean radius: {r} vs {mean_r}"
            );
        }
    }

    #[test]
    fn iterating_coco_grows_occupancy() {
        // The adaptive-sampling premise: add CoCo's suggestions to the
        // ensemble and coverage of projected space increases.
        let mut frames = cluster(60, 0.0, 4);
        let cfg = CocoConfig::default();
        let occ0 = coco(&frames, 6, cfg).occupancy;
        for _ in 0..3 {
            let result = coco(&frames, 6, cfg);
            frames.extend(result.new_starts);
        }
        let occ1 = coco(&frames, 6, cfg).occupancy;
        assert!(occ1 > occ0, "occupancy {occ0} -> {occ1}");
    }

    #[test]
    fn handles_degenerate_single_frame() {
        let frames = vec![vec![1.0; 6]];
        let result = coco(&frames, 3, CocoConfig::default());
        assert_eq!(result.new_starts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_input_rejected() {
        coco(&[], 1, CocoConfig::default());
    }
}
