//! Principal component analysis on conformation ensembles.

use crate::linalg::{jacobi_eigen, Matrix};
use serde::{Deserialize, Serialize};

/// A fitted PCA model.
///
/// ```
/// use entk_analysis::Pca;
///
/// // Points on a line through the origin: one component explains them.
/// let data: Vec<Vec<f64>> = (0..50).map(|i| {
///     let t = i as f64 / 10.0;
///     vec![t, 2.0 * t]
/// }).collect();
/// let pca = Pca::fit(&data, 1);
/// assert!(pca.explained_fraction() > 0.999);
/// let p = pca.project(&data[10]);
/// let back = pca.inverse(&p);
/// assert!((back[0] - data[10][0]).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Feature-wise mean of the training data.
    pub mean: Vec<f64>,
    /// Principal components as rows, ordered by decreasing variance.
    pub components: Vec<Vec<f64>>,
    /// Variance captured by each component.
    pub variances: Vec<f64>,
    /// Total variance of the training data (trace of the covariance).
    pub total_variance: f64,
}

impl Pca {
    /// Fits a PCA with `n_components` on `data` (rows are samples).
    ///
    /// Panics if `data` is empty or rows are ragged; `n_components` is
    /// clamped to the feature dimensionality.
    pub fn fit(data: &[Vec<f64>], n_components: usize) -> Pca {
        assert!(!data.is_empty(), "PCA needs at least one sample");
        let dims = data[0].len();
        let n = data.len();
        let n_components = n_components.min(dims).max(1);

        let mut mean = vec![0.0; dims];
        for row in data {
            assert_eq!(row.len(), dims, "ragged samples");
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x / n as f64;
            }
        }
        // Covariance matrix (biased, /n — the convention does not matter
        // for component directions).
        let mut cov = Matrix::zeros(dims, dims);
        for row in data {
            for i in 0..dims {
                let di = row[i] - mean[i];
                for j in i..dims {
                    let dj = row[j] - mean[j];
                    let v = cov.get(i, j) + di * dj / n as f64;
                    cov.set(i, j, v);
                    cov.set(j, i, v);
                }
            }
        }
        let total_variance = (0..dims).map(|i| cov.get(i, i)).sum();
        let eig = jacobi_eigen(&cov);
        let components = (0..n_components).map(|k| eig.vectors.col(k)).collect();
        let variances = eig.values[..n_components].to_vec();
        Pca {
            mean,
            components,
            variances,
            total_variance,
        }
    }

    /// Dimensionality of the input space.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Projects one sample onto the components.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dims(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(w, (xi, mi))| w * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Reconstructs a full-dimensional point from component scores.
    pub fn inverse(&self, scores: &[f64]) -> Vec<f64> {
        assert_eq!(scores.len(), self.components.len(), "score length mismatch");
        let mut x = self.mean.clone();
        for (s, c) in scores.iter().zip(&self.components) {
            for (xi, w) in x.iter_mut().zip(c) {
                *xi += s * w;
            }
        }
        x
    }

    /// Fraction of total variance captured by the kept components.
    pub fn explained_fraction(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 0.0;
        }
        (self.variances.iter().sum::<f64>() / self.total_variance).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Samples stretched along a known direction.
    fn anisotropic_cloud(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = {
            let raw: [f64; 3] = [1.0, 2.0, -1.0];
            let norm = (raw.iter().map(|x| x * x).sum::<f64>()).sqrt();
            [raw[0] / norm, raw[1] / norm, raw[2] / norm]
        };
        (0..n)
            .map(|_| {
                let major = (rng.random::<f64>() - 0.5) * 10.0;
                let minor = |r: &mut StdRng| (r.random::<f64>() - 0.5) * 0.5;
                let (m1, m2) = (minor(&mut rng), minor(&mut rng));
                vec![
                    5.0 + major * dir[0] + m1,
                    -2.0 + major * dir[1] + m2,
                    1.0 + major * dir[2],
                ]
            })
            .collect()
    }

    #[test]
    fn recovers_dominant_direction() {
        let data = anisotropic_cloud(500, 7);
        let pca = Pca::fit(&data, 1);
        let c = &pca.components[0];
        let norm = (1.0f64 + 4.0 + 1.0).sqrt();
        let expected = [1.0 / norm, 2.0 / norm, -1.0 / norm];
        let dot: f64 = c.iter().zip(&expected).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.99, "component {c:?}, |dot| {}", dot.abs());
    }

    #[test]
    fn first_variance_dominates() {
        let data = anisotropic_cloud(500, 8);
        let pca = Pca::fit(&data, 3);
        assert!(pca.variances[0] > 10.0 * pca.variances[1]);
        assert!(pca.variances[1] >= pca.variances[2]);
    }

    #[test]
    fn project_then_inverse_approximates_input() {
        let data = anisotropic_cloud(300, 9);
        let pca = Pca::fit(&data, 1);
        // A point on the major axis reconstructs well from one component.
        let x = &data[0];
        let back = pca.inverse(&pca.project(x));
        let err: f64 = x
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1.0, "reconstruction error {err}");
    }

    #[test]
    fn mean_projects_to_origin() {
        let data = anisotropic_cloud(100, 10);
        let pca = Pca::fit(&data, 2);
        let p = pca.project(&pca.mean.clone());
        assert!(p.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn explained_fraction_near_one_for_line() {
        let data = anisotropic_cloud(400, 11);
        let pca = Pca::fit(&data, 1);
        assert!(
            pca.explained_fraction() > 0.95,
            "{}",
            pca.explained_fraction()
        );
    }

    #[test]
    fn component_count_clamped_to_dims() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let pca = Pca::fit(&data, 10);
        assert_eq!(pca.components.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_data_rejected() {
        Pca::fit(&[], 1);
    }
}
