//! Minimal dense linear algebra: row-major matrices and a cyclic Jacobi
//! eigensolver for symmetric matrices. Written from scratch — the analysis
//! substrates (PCA for CoCo, diffusion maps for LSDMap) need nothing more.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from rows; all rows must be the same length.
    pub fn from_rows(rows_data: &[Vec<f64>]) -> Self {
        let rows = rows_data.len();
        let cols = rows_data.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows * cols);
        for r in rows_data {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// A row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A column as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Matrix–matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * out.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Maximum absolute off-diagonal element (square matrices).
    fn max_offdiag(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self.get(i, j).abs());
                }
            }
        }
        m
    }
}

/// Eigendecomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, same order as `values`.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigensolver for a symmetric matrix. Panics on non-square
/// input; symmetry is assumed (the strictly lower triangle is ignored in
/// the sense that rotations keep the matrix symmetric).
pub fn jacobi_eigen(a: &Matrix) -> Eigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition needs a square matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    let tol = 1e-12 * (0..n).map(|i| m.get(i, i).abs()).fold(1.0f64, f64::max);

    for _ in 0..max_sweeps {
        if m.max_offdiag() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                // Stable computation of tan(phi).
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation G(p,q) on both sides: m = Gᵀ m G.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors: v = v G.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors.set(i, new_j, v.get(i, old_j));
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matvec_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let b = a.matmul(&Matrix::identity(2));
        assert_eq!(b, a);
        let at = a.transpose();
        assert_eq!(at.get(0, 1), 3.0);
    }

    #[test]
    fn jacobi_diagonal_matrix_is_trivial() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = jacobi_eigen(&a);
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn jacobi_satisfies_eigen_equation() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.2],
            vec![0.5, -0.2, 1.0],
        ]);
        let e = jacobi_eigen(&a);
        for j in 0..3 {
            let v = e.vectors.col(j);
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!(
                    (av[i] - e.values[j] * v[i]).abs() < 1e-9,
                    "A·v ≠ λ·v at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = jacobi_eigen(&a);
        let vt_v = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vt_v.get(i, j) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn jacobi_rejects_rectangular() {
        jacobi_eigen(&Matrix::zeros(2, 3));
    }

    proptest! {
        /// Trace and eigenvalue sum agree for random symmetric matrices.
        #[test]
        fn prop_trace_equals_eigenvalue_sum(vals in proptest::collection::vec(-5.0f64..5.0, 10)) {
            // Build a 4x4 symmetric matrix from 10 free parameters.
            let mut a = Matrix::zeros(4, 4);
            let mut it = vals.into_iter();
            for i in 0..4 {
                for j in i..4 {
                    let v = it.next().unwrap();
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let trace: f64 = (0..4).map(|i| a.get(i, i)).sum();
            let e = jacobi_eigen(&a);
            let sum: f64 = e.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-8, "trace {trace} vs sum {sum}");
        }
    }
}
