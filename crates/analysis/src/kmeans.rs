//! k-means clustering, used to pick representative conformations when
//! seeding new simulation generations (adaptive-sampling extension).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Assignment of each sample to a centroid index.
    pub assignment: Vec<usize>,
    /// Total within-cluster squared distance.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's algorithm with k-means++-style seeding. `k` is clamped to the
/// sample count; at most `max_iter` refinement passes run.
pub fn kmeans(data: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KMeansResult {
    assert!(!data.is_empty(), "k-means needs data");
    let k = k.clamp(1, data.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding: first centroid uniform, then proportional to D².
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.random_range(0..data.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|x| {
                centroids
                    .iter()
                    .map(|c| dist2(x, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids.
            centroids.push(data[rng.random_range(0..data.len())].clone());
            continue;
        }
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = data.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        centroids.push(data[chosen].clone());
    }

    let dims = data[0].len();
    let mut assignment = vec![0usize; data.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, x) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(x, &centroids[a])
                        .partial_cmp(&dist2(x, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (x, &a) in data.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(x) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed && it > 0 {
            break;
        }
    }
    let inertia = data
        .iter()
        .zip(&assignment)
        .map(|(x, &a)| dist2(x, &centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for b in 0..3 {
            let c = b as f64 * 10.0;
            for i in 0..20 {
                data.push(vec![c + (i % 5) as f64 * 0.1, c - (i % 3) as f64 * 0.1]);
            }
        }
        data
    }

    #[test]
    fn finds_three_obvious_clusters() {
        let data = blobs();
        let result = kmeans(&data, 3, 100, 1);
        // Each blob maps to exactly one cluster.
        for b in 0..3 {
            let slice = &result.assignment[b * 20..(b + 1) * 20];
            assert!(slice.iter().all(|&a| a == slice[0]), "blob {b} split");
        }
        assert!(result.inertia < 10.0, "inertia {}", result.inertia);
    }

    #[test]
    fn k_clamped_to_sample_count() {
        let data = vec![vec![0.0], vec![1.0]];
        let result = kmeans(&data, 10, 50, 2);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let result = kmeans(&data, 1, 50, 3);
        assert_eq!(result.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = vec![vec![5.0, 5.0]; 10];
        let result = kmeans(&data, 3, 50, 4);
        assert_eq!(result.assignment.len(), 10);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = kmeans(&data, 3, 100, 7);
        let b = kmeans(&data, 3, 100, 7);
        assert_eq!(a.assignment, b.assignment);
    }
}
