//! # entk-analysis — analysis substrates (CoCo and LSDMap stand-ins)
//!
//! The paper's SAL workloads analyse MD ensembles with CoCo (PCA-based
//! generation of new starting structures) and LSDMap (diffusion maps).
//! Both are implemented from scratch on a small dense linear-algebra core
//! with a cyclic Jacobi eigensolver, plus k-means for representative-
//! structure selection in adaptive workflows.

#![warn(missing_docs)]

pub mod coco;
pub mod kmeans;
pub mod linalg;
pub mod lsdmap;
pub mod pca;
pub mod wham;

pub use coco::{coco, CocoConfig, CocoResult};
pub use kmeans::{kmeans, KMeansResult};
pub use linalg::{jacobi_eigen, Eigen, Matrix};
pub use lsdmap::{lsdmap, LsdmapConfig, LsdmapResult};
pub use pca::Pca;
pub use wham::{pmf, wham, Pmf, WhamResult};
