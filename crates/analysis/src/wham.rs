//! WHAM: the weighted-histogram analysis method for replica-exchange data.
//!
//! T-REMD (the paper's EE workload) produces potential-energy samples at a
//! ladder of temperatures. WHAM combines their histograms into one estimate
//! of the density of states Ω(E), from which observables at *any*
//! temperature follow — the standard post-processing step downstream of an
//! ensemble-exchange run (kB = 1 throughout).

use serde::{Deserialize, Serialize};

/// Result of a WHAM iteration over energy histograms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhamResult {
    /// Energy-bin centres.
    pub energy_bins: Vec<f64>,
    /// ln Ω(E) per bin (up to an additive constant).
    pub log_dos: Vec<f64>,
    /// Dimensionless free energies f_k of each input temperature.
    pub f_k: Vec<f64>,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
    /// Max |Δf_k| of the final iteration.
    pub residual: f64,
}

impl WhamResult {
    /// ln Z(β) via log-sum-exp over bins.
    fn log_z(&self, beta: f64) -> f64 {
        log_sum_exp(
            self.energy_bins
                .iter()
                .zip(&self.log_dos)
                .filter(|(_, &ld)| ld.is_finite())
                .map(|(&e, &ld)| ld - beta * e),
        )
    }

    /// Mean potential energy at temperature `t`, by reweighting the DOS.
    pub fn mean_energy_at(&self, t: f64) -> f64 {
        assert!(t > 0.0, "temperature must be positive");
        let beta = 1.0 / t;
        let log_z = self.log_z(beta);
        self.energy_bins
            .iter()
            .zip(&self.log_dos)
            .filter(|(_, &ld)| ld.is_finite())
            .map(|(&e, &ld)| e * (ld - beta * e - log_z).exp())
            .sum()
    }

    /// Heat capacity at temperature `t`: C = (⟨E²⟩ − ⟨E⟩²) / T².
    pub fn heat_capacity_at(&self, t: f64) -> f64 {
        let beta = 1.0 / t;
        let log_z = self.log_z(beta);
        let (mut e1, mut e2) = (0.0, 0.0);
        for (&e, &ld) in self.energy_bins.iter().zip(&self.log_dos) {
            if !ld.is_finite() {
                continue;
            }
            let p = (ld - beta * e - log_z).exp();
            e1 += e * p;
            e2 += e * e * p;
        }
        (e2 - e1 * e1) / (t * t)
    }
}

fn log_sum_exp(values: impl Iterator<Item = f64>) -> f64 {
    let vals: Vec<f64> = values.collect();
    let m = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return f64::NEG_INFINITY;
    }
    m + vals.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

/// Runs WHAM over per-replica energy samples.
///
/// `energy_samples[k]` are samples collected at `temps[k]`. Energies are
/// binned into `n_bins` equal bins spanning the observed range; the f_k and
/// DOS are iterated to self-consistency (at most `max_iters` rounds,
/// stopping when max |Δf_k| < 1e-8).
pub fn wham(
    energy_samples: &[Vec<f64>],
    temps: &[f64],
    n_bins: usize,
    max_iters: usize,
) -> WhamResult {
    assert_eq!(
        energy_samples.len(),
        temps.len(),
        "one sample set per temperature"
    );
    assert!(!temps.is_empty(), "WHAM needs at least one temperature");
    assert!(
        temps.iter().all(|&t| t > 0.0),
        "temperatures must be positive"
    );
    assert!(n_bins >= 2, "need at least two energy bins");
    let total: usize = energy_samples.iter().map(Vec::len).sum();
    assert!(total > 0, "WHAM needs samples");

    let lo = energy_samples
        .iter()
        .flatten()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = energy_samples
        .iter()
        .flatten()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let width = span / n_bins as f64;
    let bin_of = |e: f64| (((e - lo) / width) as usize).min(n_bins - 1);

    // Joint histogram over all replicas.
    let mut hist = vec![0.0f64; n_bins];
    for samples in energy_samples {
        for &e in samples {
            hist[bin_of(e)] += 1.0;
        }
    }
    let n_k: Vec<f64> = energy_samples.iter().map(|s| s.len() as f64).collect();
    let betas: Vec<f64> = temps.iter().map(|&t| 1.0 / t).collect();
    let bins: Vec<f64> = (0..n_bins).map(|i| lo + (i as f64 + 0.5) * width).collect();

    let mut f_k = vec![0.0f64; temps.len()];
    let mut log_dos = vec![f64::NEG_INFINITY; n_bins];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    for it in 0..max_iters {
        iterations = it + 1;
        // Ω(E) = H(E) / Σ_k n_k exp(f_k − β_k E)
        for (i, &e) in bins.iter().enumerate() {
            if hist[i] == 0.0 {
                log_dos[i] = f64::NEG_INFINITY;
                continue;
            }
            let log_denominator = log_sum_exp(
                betas
                    .iter()
                    .zip(&f_k)
                    .zip(&n_k)
                    .map(|((&b, &f), &n)| n.ln() + f - b * e),
            );
            log_dos[i] = hist[i].ln() - log_denominator;
        }
        // exp(−f_k) = Σ_E Ω(E) exp(−β_k E)
        let mut new_f = Vec::with_capacity(f_k.len());
        for &b in &betas {
            let log_z = log_sum_exp(
                bins.iter()
                    .zip(&log_dos)
                    .filter(|(_, &ld)| ld.is_finite())
                    .map(|(&e, &ld)| ld - b * e),
            );
            new_f.push(-log_z);
        }
        // Fix the gauge: f_0 = 0.
        let shift = new_f[0];
        for f in &mut new_f {
            *f -= shift;
        }
        residual = f_k
            .iter()
            .zip(&new_f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        f_k = new_f;
        if residual < 1e-8 {
            break;
        }
    }
    WhamResult {
        energy_bins: bins,
        log_dos,
        f_k,
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Samples E from a d-DOF harmonic system at temperature t:
    /// E = Σ_d (t/2)·z² with z ~ N(0,1), i.e. Gamma(d/2, t).
    fn harmonic_energies(d: usize, t: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        let u1: f64 = 1.0 - rng.random::<f64>();
                        let u2: f64 = rng.random::<f64>();
                        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                        0.5 * t * z * z
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn recovers_mean_energy_at_intermediate_temperature() {
        // 10-DOF harmonic system: ⟨E⟩(T) = 5 T exactly.
        let d = 10;
        let temps = [0.8, 1.0, 1.25, 1.5625];
        let samples: Vec<Vec<f64>> = temps
            .iter()
            .enumerate()
            .map(|(k, &t)| harmonic_energies(d, t, 20_000, k as u64 + 1))
            .collect();
        let result = wham(&samples, &temps, 80, 500);
        assert!(result.residual < 1e-6, "converged: {}", result.residual);
        for &t in &[0.9, 1.1, 1.4] {
            let mean = result.mean_energy_at(t);
            let exact = 5.0 * t;
            assert!(
                (mean - exact).abs() / exact < 0.05,
                "⟨E⟩({t}) = {mean}, exact {exact}"
            );
        }
    }

    #[test]
    fn heat_capacity_of_harmonic_system_is_constant() {
        // C(T) = d/2 for a d-DOF harmonic system, independent of T.
        let d = 10;
        let temps = [0.8, 1.0, 1.25];
        let samples: Vec<Vec<f64>> = temps
            .iter()
            .enumerate()
            .map(|(k, &t)| harmonic_energies(d, t, 20_000, k as u64 + 10))
            .collect();
        let result = wham(&samples, &temps, 80, 500);
        let c = result.heat_capacity_at(1.0);
        assert!((c - 5.0).abs() < 0.6, "C = {c}, expected ≈ 5");
    }

    #[test]
    fn f_k_increase_with_beta_for_positive_energies() {
        // With E ≥ 0, Z(β) decreases in β, so f = −ln Z increases
        // relative to the hottest replica (f is gauged to f_0 = 0 at the
        // first temperature).
        let temps = [2.0, 1.0, 0.5]; // decreasing T = increasing beta
        let samples: Vec<Vec<f64>> = temps
            .iter()
            .enumerate()
            .map(|(k, &t)| harmonic_energies(6, t, 5_000, k as u64 + 20))
            .collect();
        let result = wham(&samples, &temps, 60, 500);
        assert!(result.f_k[1] > result.f_k[0]);
        assert!(result.f_k[2] > result.f_k[1]);
    }

    #[test]
    fn single_temperature_degenerates_to_histogram() {
        let samples = vec![harmonic_energies(4, 1.0, 10_000, 30)];
        let result = wham(&samples, &[1.0], 40, 200);
        let mean = result.mean_energy_at(1.0);
        assert!((mean - 2.0).abs() < 0.1, "⟨E⟩ = {mean}, expected 2");
    }

    #[test]
    #[should_panic(expected = "one sample set per temperature")]
    fn mismatched_inputs_rejected() {
        wham(&[vec![1.0]], &[1.0, 2.0], 10, 10);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_samples_rejected() {
        wham(&[vec![]], &[1.0], 10, 10);
    }
}

/// A potential of mean force F(x) over a collective variable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pmf {
    /// CV-bin centres.
    pub x: Vec<f64>,
    /// Free energy per bin at the target temperature, shifted so the
    /// minimum is zero; unvisited bins are `f64::INFINITY`.
    pub f: Vec<f64>,
}

/// Computes a 1-D potential of mean force at temperature `target_t` by
/// reweighting samples from all replicas with WHAM's `f_k`.
///
/// `samples` are `(cv_value, potential_energy, replica_index)` triples;
/// `wham_result` must come from [`wham`] over the same replica
/// temperatures `temps`.
pub fn pmf(
    samples: &[(f64, f64, usize)],
    temps: &[f64],
    wham_result: &WhamResult,
    target_t: f64,
    n_bins: usize,
) -> Pmf {
    assert!(target_t > 0.0, "temperature must be positive");
    assert!(n_bins >= 2, "need at least two CV bins");
    assert!(!samples.is_empty(), "PMF needs samples");
    assert_eq!(
        temps.len(),
        wham_result.f_k.len(),
        "temps must match WHAM input"
    );
    let beta = 1.0 / target_t;

    let lo = samples.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
    let hi = samples
        .iter()
        .map(|s| s.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let width = span / n_bins as f64;
    let bin_of = |x: f64| (((x - lo) / width) as usize).min(n_bins - 1);

    // Log-weights per bin, accumulated with log-sum-exp for stability.
    let mut log_w: Vec<Vec<f64>> = vec![Vec::new(); n_bins];
    for &(x, e, k) in samples {
        assert!(k < temps.len(), "replica index out of range");
        let beta_k = 1.0 / temps[k];
        // w ∝ exp(f_k − (β − β_k) E)
        log_w[bin_of(x)].push(wham_result.f_k[k] - (beta - beta_k) * e);
    }
    let mut f: Vec<f64> = log_w
        .into_iter()
        .map(|ws| {
            if ws.is_empty() {
                f64::INFINITY
            } else {
                -target_t * log_sum_exp(ws.into_iter())
            }
        })
        .collect();
    let fmin = f.iter().cloned().fold(f64::INFINITY, f64::min);
    if fmin.is_finite() {
        for v in &mut f {
            if v.is_finite() {
                *v -= fmin;
            }
        }
    }
    let x = (0..n_bins).map(|i| lo + (i as f64 + 0.5) * width).collect();
    Pmf { x, f }
}

#[cfg(test)]
mod pmf_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 1-D harmonic oscillator samples at temperature t: x ~ N(0, t/k),
    /// E = k x²/2.
    fn harmonic_cv(k_spring: f64, t: f64, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = z * (t / k_spring).sqrt();
                (x, 0.5 * k_spring * x * x)
            })
            .collect()
    }

    #[test]
    fn pmf_recovers_harmonic_well() {
        let k_spring = 4.0;
        let temps = [0.8, 1.0, 1.3];
        let mut samples = Vec::new();
        let mut per_replica_energies = Vec::new();
        for (k, &t) in temps.iter().enumerate() {
            let s = harmonic_cv(k_spring, t, 15_000, k as u64 + 1);
            per_replica_energies.push(s.iter().map(|&(_, e)| e).collect::<Vec<_>>());
            samples.extend(s.into_iter().map(|(x, e)| (x, e, k)));
        }
        let w = wham(&per_replica_energies, &temps, 60, 500);
        let profile = pmf(&samples, &temps, &w, 1.0, 40);
        // Compare against k x²/2 where sampling is dense (|x| < 1).
        for (&x, &f) in profile.x.iter().zip(&profile.f) {
            if x.abs() < 1.0 && f.is_finite() {
                let exact = 0.5 * k_spring * x * x;
                assert!(
                    (f - exact).abs() < 0.25,
                    "F({x:.2}) = {f:.3}, exact {exact:.3}"
                );
            }
        }
    }

    #[test]
    fn pmf_minimum_is_zero() {
        let temps = [1.0];
        let s = harmonic_cv(2.0, 1.0, 5000, 9);
        let energies = vec![s.iter().map(|&(_, e)| e).collect::<Vec<_>>()];
        let w = wham(&energies, &temps, 40, 200);
        let samples: Vec<(f64, f64, usize)> = s.into_iter().map(|(x, e)| (x, e, 0)).collect();
        let profile = pmf(&samples, &temps, &w, 1.0, 20);
        let fmin = profile.f.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(fmin.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "PMF needs samples")]
    fn empty_samples_rejected() {
        let w = WhamResult {
            energy_bins: vec![0.0, 1.0],
            log_dos: vec![0.0, 0.0],
            f_k: vec![0.0],
            iterations: 1,
            residual: 0.0,
        };
        pmf(&[], &[1.0], &w, 1.0, 10);
    }
}
