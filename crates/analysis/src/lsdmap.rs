//! LSDMap stand-in: locally-scaled diffusion maps.
//!
//! The paper's Gromacs–LSDMap workload (Fig. 4) analyses MD ensembles with
//! diffusion maps (Preto & Clementi 2014): a Gaussian kernel over pairwise
//! conformational distances, Markov normalization, and an eigendecomposition
//! whose leading non-trivial eigenvectors are slow collective coordinates.

use crate::linalg::{jacobi_eigen, Matrix};
use serde::{Deserialize, Serialize};

/// Diffusion-map configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LsdmapConfig {
    /// Number of diffusion coordinates to return (excluding the trivial one).
    pub n_coords: usize,
    /// Kernel bandwidth as a multiple of the median pairwise distance
    /// (local scaling uses the same global epsilon here).
    pub epsilon_scale: f64,
}

impl Default for LsdmapConfig {
    fn default() -> Self {
        LsdmapConfig {
            n_coords: 2,
            epsilon_scale: 1.0,
        }
    }
}

/// Result of a diffusion-map analysis.
#[derive(Debug, Clone)]
pub struct LsdmapResult {
    /// Diffusion coordinates: `coords[i]` are sample `i`'s values on the
    /// leading non-trivial eigenvectors.
    pub coords: Vec<Vec<f64>>,
    /// Eigenvalues of the Markov matrix, descending, including the trivial
    /// λ₀ = 1.
    pub eigenvalues: Vec<f64>,
    /// The kernel bandwidth actually used.
    pub epsilon: f64,
}

/// Euclidean distance between two conformations.
fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Runs a diffusion-map analysis over conformations (rows).
pub fn lsdmap(frames: &[Vec<f64>], config: LsdmapConfig) -> LsdmapResult {
    let n = frames.len();
    assert!(n >= 2, "LSDMap needs at least two frames");

    // Pairwise distances; bandwidth from the *local* scale (median
    // nearest-neighbour distance, × 3 to connect beyond immediate
    // neighbours) — the "locally scaled" part of LSDMap.
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(&frames[i], &frames[j]);
            d.set(i, j, v);
            d.set(j, i, v);
        }
    }
    let mut nn: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| d.get(i, j))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    nn.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let local_scale = nn[nn.len() / 2].max(1e-12);
    let epsilon = (config.epsilon_scale * 3.0 * local_scale).max(1e-12);

    // Gaussian kernel, then symmetric normalization:
    // M_s = D^{-1/2} K D^{-1/2}, which shares eigenvalues with the Markov
    // matrix D^{-1} K and keeps the problem symmetric for Jacobi.
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let w = (-(d.get(i, j) / epsilon).powi(2)).exp();
            k.set(i, j, w);
        }
    }
    let deg: Vec<f64> = (0..n).map(|i| k.row(i).iter().sum::<f64>()).collect();
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m.set(i, j, k.get(i, j) / (deg[i] * deg[j]).sqrt());
        }
    }
    let eig = jacobi_eigen(&m);

    // Markov eigenvectors: phi = D^{-1/2} v. Skip the trivial first one.
    let n_coords = config.n_coords.min(n - 1);
    let mut coords = vec![Vec::with_capacity(n_coords); n];
    for c in 1..=n_coords {
        let v = eig.vectors.col(c);
        for i in 0..n {
            coords[i].push(v[i] / deg[i].sqrt());
        }
    }
    LsdmapResult {
        coords,
        eigenvalues: eig.values,
        epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two well-separated blobs in 4-D.
    fn two_blobs(per: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut frames = Vec::new();
        for b in 0..2 {
            let centre = b as f64 * 20.0;
            for _ in 0..per {
                frames.push(
                    (0..4)
                        .map(|_| centre + (rng.random::<f64>() - 0.5))
                        .collect(),
                );
            }
        }
        frames
    }

    #[test]
    fn trivial_eigenvalue_is_one() {
        let frames = two_blobs(8, 1);
        let result = lsdmap(&frames, LsdmapConfig::default());
        assert!((result.eigenvalues[0] - 1.0).abs() < 1e-8);
        // All eigenvalues of a Markov kernel lie in [-1, 1].
        for &l in &result.eigenvalues {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&l));
        }
    }

    #[test]
    fn first_coordinate_separates_clusters() {
        let per = 10;
        let frames = two_blobs(per, 2);
        let result = lsdmap(&frames, LsdmapConfig::default());
        let first: Vec<f64> = result.coords.iter().map(|c| c[0]).collect();
        // With two near-disconnected components the top eigenvectors span
        // the indicator subspace: the coordinate must be nearly constant
        // within each blob and well separated between blobs.
        let stats = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let sd = (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt();
            (m, sd)
        };
        let (ma, sa) = stats(&first[..per]);
        let (mb, sb) = stats(&first[per..]);
        assert!(
            (ma - mb).abs() > 3.0 * (sa + sb) + 1e-9,
            "blobs not separated: means {ma}/{mb}, sds {sa}/{sb}"
        );
    }

    #[test]
    fn spectral_gap_reflects_two_clusters() {
        let frames = two_blobs(10, 3);
        let result = lsdmap(&frames, LsdmapConfig::default());
        // λ1 close to 1 (two components), λ2 markedly smaller.
        assert!(
            result.eigenvalues[1] > 0.9,
            "λ1 = {}",
            result.eigenvalues[1]
        );
        assert!(
            result.eigenvalues[1] - result.eigenvalues[2] > 0.2,
            "gap too small: {:?}",
            &result.eigenvalues[..3]
        );
    }

    #[test]
    fn coords_have_requested_dimensionality() {
        let frames = two_blobs(6, 4);
        let result = lsdmap(
            &frames,
            LsdmapConfig {
                n_coords: 3,
                epsilon_scale: 1.0,
            },
        );
        assert!(result.coords.iter().all(|c| c.len() == 3));
        assert_eq!(result.coords.len(), 12);
    }

    #[test]
    fn n_coords_clamped_for_tiny_ensembles() {
        let frames = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let result = lsdmap(
            &frames,
            LsdmapConfig {
                n_coords: 5,
                epsilon_scale: 1.0,
            },
        );
        assert_eq!(result.coords[0].len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two frames")]
    fn single_frame_rejected() {
        lsdmap(&[vec![1.0]], LsdmapConfig::default());
    }
}
