//! The discrete-event engine: a virtual clock driving an event queue.
//!
//! The engine is generic over the event type `E`. Layered simulations (the
//! cluster, pilot-runtime, and toolkit stack) define one top-level event enum
//! with `From` conversions from each layer's private event type; handlers
//! receive a [`Context`] through which they schedule follow-up events.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Handler-side view of the engine: current time plus scheduling operations.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Context<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: impl Into<E>) -> EventId {
        self.queue.push(self.now + delay, event.into())
    }

    /// Schedules `event` at absolute `time`. Times in the past are clamped
    /// to *now* so causality is never violated.
    pub fn schedule_at(&mut self, time: SimTime, event: impl Into<E>) -> EventId {
        self.queue.push(time.max(self.now), event.into())
    }

    /// Cancels a scheduled event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The step limit was reached with events still pending.
    StepLimit,
    /// The time horizon was reached with events still pending.
    Horizon,
}

/// A deterministic discrete-event engine.
///
/// ```
/// use entk_sim::{Engine, SimDuration};
///
/// let mut engine: Engine<u32> = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(3), 7u32);
/// let mut seen = Vec::new();
/// engine.run(|event, ctx| {
///     seen.push((event, ctx.now()));
/// });
/// assert_eq!(seen.len(), 1);
/// assert_eq!(engine.now(), entk_sim::SimTime::from_secs(3));
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    steps: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at t = 0 with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            steps: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an initial event before the run starts (or between runs).
    pub fn schedule_in(&mut self, delay: SimDuration, event: impl Into<E>) -> EventId {
        self.queue.push(self.now + delay, event.into())
    }

    /// Schedules an event at an absolute time (clamped to now).
    pub fn schedule_at(&mut self, time: SimTime, event: impl Into<E>) -> EventId {
        self.queue.push(time.max(self.now), event.into())
    }

    /// Cancels a pre-run scheduled event (test helper).
    #[cfg(test)]
    pub(crate) fn queue_cancel_for_test(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Advances the clock to `time` without processing events (no-op when
    /// `time` is in the past). Federated drivers use this to bring a
    /// lagging cluster's clock up to the global virtual time before
    /// injecting work into it; the caller must guarantee no pending event
    /// is earlier than `time`, or the next pop trips the monotonicity
    /// debug assertion.
    pub fn advance_to(&mut self, time: SimTime) {
        self.now = self.now.max(time);
    }

    /// Timestamp of the next live event, without popping it. `None` when
    /// the queue is (effectively) empty. Federated drivers use this to pick
    /// the globally earliest event across several engines.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// A scheduling [`Context`] at the engine's current time, for callers
    /// that need to drive layer code (which takes `&mut Context`) from
    /// outside a `run`/`run_bounded` handler — e.g. cancelling a unit in
    /// one engine while stepping another.
    pub fn context(&mut self) -> Context<'_, E> {
        Context {
            now: self.now,
            queue: &mut self.queue,
        }
    }

    /// Runs until the queue drains. `handler` is called for every event and
    /// may schedule more through the [`Context`].
    pub fn run(&mut self, mut handler: impl FnMut(E, &mut Context<'_, E>)) -> RunOutcome {
        self.run_bounded(u64::MAX, SimTime::MAX, &mut handler)
    }

    /// Runs until the queue drains, `max_steps` events have been handled, or
    /// virtual time would reach `horizon`: only events **strictly before**
    /// the horizon are processed. This is the conservative-lookahead drive
    /// mode of parallel federated simulation — each member advances up to
    /// (but never onto) the merge horizon, so an event landing exactly on
    /// the boundary stays pending for the next window. The clock is left at
    /// the last processed event, not pulled forward to the horizon.
    pub fn advance_until(
        &mut self,
        max_steps: u64,
        horizon: SimTime,
        handler: &mut impl FnMut(E, &mut Context<'_, E>),
    ) -> RunOutcome {
        if horizon == SimTime::ZERO {
            return if self.queue.is_empty() {
                RunOutcome::Drained
            } else {
                RunOutcome::Horizon
            };
        }
        // The clock has microsecond resolution, so "strictly before H" is
        // exactly "at or before H − 1µs".
        let bound = SimTime::from_micros(horizon.as_micros() - 1);
        self.run_bounded(max_steps, bound, handler)
    }

    /// Runs until the queue drains, `max_steps` events have been handled, or
    /// virtual time would exceed `horizon`.
    pub fn run_bounded(
        &mut self,
        max_steps: u64,
        horizon: SimTime,
        handler: &mut impl FnMut(E, &mut Context<'_, E>),
    ) -> RunOutcome {
        let mut budget = max_steps;
        loop {
            if budget == 0 {
                return RunOutcome::StepLimit;
            }
            // Single heap traversal: pop the next live event only if it is
            // within the horizon (replaces a peek-then-pop double descent).
            let Some((time, _, event)) = self.queue.pop_at_or_before(horizon) else {
                return if self.queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::Horizon
                };
            };
            debug_assert!(time >= self.now, "event queue went back in time");
            self.now = time;
            self.steps += 1;
            budget -= 1;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
            };
            handler(event, &mut ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(2), Ev::Ping(0));
        engine.schedule_in(SimDuration::from_secs(1), Ev::Ping(1));
        let mut observed = Vec::new();
        engine.run(|ev, ctx| {
            observed.push((ctx.now(), format!("{ev:?}")));
        });
        assert_eq!(observed.len(), 2);
        assert!(observed[0].0 < observed[1].0);
        assert_eq!(engine.now(), SimTime::from_secs(2));
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, Ev::Ping(3));
        let mut count = 0;
        engine.run(|ev, ctx| {
            if let Ev::Ping(n) = ev {
                count += 1;
                if n > 0 {
                    ctx.schedule_in(SimDuration::from_secs(1), Ev::Ping(n - 1));
                } else {
                    ctx.schedule_in(SimDuration::ZERO, Ev::Stop);
                }
            }
        });
        assert_eq!(count, 4);
        assert_eq!(engine.now(), SimTime::from_secs(3));
        assert_eq!(engine.steps(), 5);
    }

    #[test]
    fn step_limit_stops_runaway_simulation() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, 0u32);
        let outcome = engine.run_bounded(100, SimTime::MAX, &mut |n, ctx| {
            ctx.schedule_in(SimDuration::from_micros(1), n + 1);
        });
        assert_eq!(outcome, RunOutcome::StepLimit);
        assert_eq!(engine.steps(), 100);
    }

    #[test]
    fn horizon_stops_before_processing_late_events() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(1), 1u32);
        engine.schedule_in(SimDuration::from_secs(10), 2u32);
        let mut seen = Vec::new();
        let outcome = engine.run_bounded(u64::MAX, SimTime::from_secs(5), &mut |n, _| {
            seen.push(n);
        });
        assert_eq!(outcome, RunOutcome::Horizon);
        assert_eq!(seen, vec![1]);
        // The late event is still pending and runs if the horizon extends.
        let outcome = engine.run_bounded(u64::MAX, SimTime::MAX, &mut |n, _| seen.push(n));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn advance_until_excludes_the_horizon_itself() {
        // Regression guard for the conservative-lookahead merge: an event
        // sitting exactly on the lookahead boundary must NOT be consumed by
        // the window ending there — it belongs to the next window.
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(1), 1u32);
        engine.schedule_in(SimDuration::from_secs(5), 2u32); // exactly at horizon
        let mut seen = Vec::new();
        let outcome = engine.advance_until(u64::MAX, SimTime::from_secs(5), &mut |n, _| {
            seen.push(n);
        });
        assert_eq!(outcome, RunOutcome::Horizon);
        assert_eq!(seen, vec![1]);
        // The clock stays at the last processed event, not the horizon.
        assert_eq!(engine.now(), SimTime::from_secs(1));
        assert_eq!(engine.pending(), 1);
        // The boundary event runs in the next window.
        engine.advance_until(u64::MAX, SimTime::from_secs(6), &mut |n, _| seen.push(n));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn advance_until_zero_horizon_processes_nothing() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(SimDuration::ZERO, 1u32);
        let outcome = engine.advance_until(u64::MAX, SimTime::ZERO, &mut |_, _| {
            panic!("no event may run before a zero horizon")
        });
        assert_eq!(outcome, RunOutcome::Horizon);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn schedule_at_clamps_past_times() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(5), 1u32);
        let mut fired_at = Vec::new();
        engine.run(|n, ctx| {
            fired_at.push((n, ctx.now()));
            if n == 1 {
                // attempt to schedule in the past
                ctx.schedule_at(SimTime::from_secs(1), 2u32);
            }
        });
        assert_eq!(fired_at[1], (2, SimTime::from_secs(5)));
    }

    #[test]
    fn identical_runs_are_deterministic() {
        fn run_once() -> Vec<(u64, u32)> {
            let mut engine: Engine<u32> = Engine::new();
            for i in 0..10 {
                engine.schedule_in(SimDuration::from_micros(i % 3), i as u32);
            }
            let mut log = Vec::new();
            engine.run(|n, ctx| log.push((ctx.now().as_micros(), n)));
            log
        }
        assert_eq!(run_once(), run_once());
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;

    #[test]
    fn engine_resumes_after_drain() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(1), 1u32);
        let mut seen = Vec::new();
        assert_eq!(engine.run(|n, _| seen.push(n)), RunOutcome::Drained);
        // New events after a drain keep the monotonic clock.
        engine.schedule_in(SimDuration::from_secs(1), 2u32);
        engine.run(|n, _| seen.push(n));
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(engine.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancelled_initial_event_never_fires() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule_in(SimDuration::from_secs(1), 1u32);
        engine.schedule_in(SimDuration::from_secs(2), 2u32);
        assert!(engine.queue_cancel_for_test(id));
        let mut seen = Vec::new();
        engine.run(|n, _| seen.push(n));
        assert_eq!(seen, vec![2]);
    }
}
