//! Dense entity stores for the simulation hot path.
//!
//! The runtime layers identify every entity — units, pilots, batch jobs,
//! engine tasks — by a dense monotonic counter, yet historically kept the
//! records in hash maps, paying a hash and a probe on every lookup of an
//! integer that is already a perfect index. This module provides the two
//! replacements:
//!
//! * [`DenseStore`] — a slab `Vec<Option<V>>` keyed directly by the dense
//!   id. Lookup is a bounds check and a pointer add. Ids are never reused
//!   (the counters only grow), so the slab only grows; removal leaves a
//!   `None` hole. Iteration is in id order, which keeps every consumer
//!   deterministic by construction — unlike the hash maps it replaces.
//! * [`Arena`] — a generational arena for records whose slots *are*
//!   recycled (e.g. per-job node allocations that come and go). A
//!   [`GenId`] carries the slot index plus a generation stamp; accessing a
//!   slot through a stale id after the slot was freed and reused returns
//!   `None` (or panics deterministically through the indexing operators)
//!   instead of silently aliasing the new occupant.

/// A slab keyed by an already-dense `u64` id.
///
/// `insert` grows the slab to cover the id; `remove` leaves a hole. All
/// operations on existing ids are O(1) with no hashing.
#[derive(Debug, Clone)]
pub struct DenseStore<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for DenseStore<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> DenseStore<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        DenseStore {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty store with room for `capacity` ids.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseStore {
            slots: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Inserts `value` at `id`, returning the previous occupant if any.
    pub fn insert(&mut self, id: u64, value: V) -> Option<V> {
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Value at `id`.
    pub fn get(&self, id: u64) -> Option<&V> {
        self.slots.get(id as usize).and_then(Option::as_ref)
    }

    /// Mutable value at `id`.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        self.slots.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Removes and returns the value at `id`.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let removed = self.slots.get_mut(id as usize).and_then(Option::take);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Whether `id` is occupied.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied `(id, &value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i as u64, v)))
    }

    /// Occupied `(id, &mut value)` pairs in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| v.as_mut().map(|v| (i as u64, v)))
    }

    /// Occupied values in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Occupied values, mutably, in id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Occupied ids in order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| i as u64))
    }
}

impl<V> std::ops::Index<u64> for DenseStore<V> {
    type Output = V;
    fn index(&self, id: u64) -> &V {
        self.get(id)
            .unwrap_or_else(|| panic!("DenseStore: no entry for id {id}"))
    }
}

impl<V> std::ops::IndexMut<u64> for DenseStore<V> {
    fn index_mut(&mut self, id: u64) -> &mut V {
        self.get_mut(id)
            .unwrap_or_else(|| panic!("DenseStore: no entry for id {id}"))
    }
}

/// Handle into an [`Arena`]: slot index plus generation stamp.
///
/// The generation is bumped every time the slot is vacated, so a handle
/// taken before a free/reuse cycle no longer resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenId {
    index: u32,
    generation: u32,
}

impl GenId {
    /// Slot index within the arena.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Generation stamp of the slot at handle-creation time.
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Packed `generation << 32 | index` form, for logs and diagnostics.
    pub fn raw(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }
}

#[derive(Debug, Clone)]
enum Slot<T> {
    Vacant { generation: u32 },
    Occupied { generation: u32, value: T },
}

/// A generational arena: O(1) insert/remove with slot reuse, where stale
/// handles are detected by a generation mismatch instead of silently
/// reading the slot's new occupant.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts `value`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> GenId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            let generation = match *slot {
                Slot::Vacant { generation } => generation,
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            *slot = Slot::Occupied { generation, value };
            GenId { index, generation }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena outgrew u32 indices");
            self.slots.push(Slot::Occupied {
                generation: 0,
                value,
            });
            GenId {
                index,
                generation: 0,
            }
        }
    }

    /// Value behind `id`; `None` if the slot was freed (and possibly
    /// reused) since the handle was created.
    pub fn get(&self, id: GenId) -> Option<&T> {
        match self.slots.get(id.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable value behind `id`, with the same staleness rule as [`get`](Self::get).
    pub fn get_mut(&mut self, id: GenId) -> Option<&mut T> {
        match self.slots.get_mut(id.index()) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Removes and returns the value behind `id`, bumping the slot's
    /// generation so every outstanding handle to it goes stale. Removing
    /// through a stale handle returns `None` and changes nothing.
    pub fn remove(&mut self, id: GenId) -> Option<T> {
        match self.slots.get_mut(id.index()) {
            Some(slot @ Slot::Occupied { .. }) => {
                let Slot::Occupied { generation, .. } = *slot else {
                    unreachable!()
                };
                if generation != id.generation {
                    return None;
                }
                let Slot::Occupied { value, .. } = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        generation: generation.wrapping_add(1),
                    },
                ) else {
                    unreachable!()
                };
                self.free.push(id.index);
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    /// Whether `id` still resolves.
    pub fn contains(&self, id: GenId) -> bool {
        self.get(id).is_some()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied `(handle, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (GenId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { generation, value } => Some((
                GenId {
                    index: i as u32,
                    generation: *generation,
                },
                value,
            )),
            Slot::Vacant { .. } => None,
        })
    }
}

impl<T> std::ops::Index<GenId> for Arena<T> {
    type Output = T;
    fn index(&self, id: GenId) -> &T {
        self.get(id).unwrap_or_else(|| {
            panic!(
                "Arena: stale or vacant handle (index {}, generation {})",
                id.index(),
                id.generation()
            )
        })
    }
}

impl<T> std::ops::IndexMut<GenId> for Arena<T> {
    fn index_mut(&mut self, id: GenId) -> &mut T {
        self.get_mut(id).unwrap_or_else(|| {
            panic!(
                "Arena: stale or vacant handle (index {}, generation {})",
                id.index(),
                id.generation()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_store_insert_get_remove() {
        let mut s: DenseStore<&str> = DenseStore::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(3, "three"), None);
        assert_eq!(s.insert(0, "zero"), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(3), Some(&"three"));
        assert_eq!(s.get(1), None, "hole inside the slab");
        assert_eq!(s.get(99), None, "past the end");
        assert_eq!(s.insert(3, "replaced"), Some("three"));
        assert_eq!(s.len(), 2, "replacement does not grow the store");
        assert_eq!(s.remove(3), Some("replaced"));
        assert_eq!(s.remove(3), None, "double remove");
        assert_eq!(s.len(), 1);
        assert!(s.contains(0));
        assert!(!s.contains(3));
    }

    #[test]
    fn dense_store_iterates_in_id_order() {
        let mut s = DenseStore::new();
        for id in [5u64, 1, 9, 3] {
            s.insert(id, id * 10);
        }
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(
            pairs,
            vec![(1u64, &10u64), (3, &30), (5, &50), (9, &90)],
            "iteration must be deterministic id order, not insertion order"
        );
        assert_eq!(s.keys().collect::<Vec<_>>(), vec![1, 3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "no entry for id 7")]
    fn dense_store_index_panics_on_hole() {
        let mut s = DenseStore::new();
        s.insert(1, ());
        let _ = &s[7];
    }

    #[test]
    fn arena_insert_get_remove() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x), Some(&"x"));
        assert_eq!(a[y], "y");
        assert_eq!(a.remove(x), Some("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(x), None, "remove through a stale handle");
    }

    /// The satellite requirement: a generation-mismatched access returns
    /// `None` (never the slot's new occupant), deterministically.
    #[test]
    fn arena_stale_handle_returns_none_after_reuse() {
        let mut a = Arena::new();
        let old = a.insert("old");
        assert_eq!(a.remove(old), Some("old"));
        let new = a.insert("new");
        assert_eq!(new.index(), old.index(), "slot must be recycled");
        assert_ne!(new.generation(), old.generation());
        assert_eq!(a.get(old), None, "stale read");
        assert_eq!(a.get_mut(old), None, "stale write");
        assert!(!a.contains(old));
        assert_eq!(a.remove(old), None, "stale remove leaves the slot alone");
        assert_eq!(a.get(new), Some(&"new"));
    }

    #[test]
    #[should_panic(expected = "stale or vacant handle (index 0, generation 0)")]
    fn arena_index_panics_deterministically_on_stale_handle() {
        let mut a = Arena::new();
        let old = a.insert(1u32);
        a.remove(old);
        a.insert(2u32);
        let _ = a[old];
    }

    #[test]
    fn arena_generations_survive_many_reuse_cycles() {
        let mut a = Arena::new();
        let mut stale = Vec::new();
        for round in 0..100u32 {
            let id = a.insert(round);
            assert_eq!(id.index(), 0, "single slot recycled every round");
            assert_eq!(id.generation(), round);
            assert_eq!(a.remove(id), Some(round));
            stale.push(id);
        }
        let live = a.insert(u32::MAX);
        for old in stale {
            assert_eq!(a.get(old), None);
        }
        assert_eq!(a.get(live), Some(&u32::MAX));
    }

    #[test]
    fn arena_iter_skips_vacant_slots() {
        let mut a = Arena::new();
        let _x = a.insert(1);
        let y = a.insert(2);
        let _z = a.insert(3);
        a.remove(y);
        let values: Vec<_> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1, 3]);
    }
}
