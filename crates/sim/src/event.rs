//! Priority event queue with deterministic FIFO tie-breaking and cancellation.
//!
//! Two implementations share one contract:
//!
//! * [`EventQueue`] — a Brown-style **calendar queue**: a ring of time
//!   buckets of width `W`, where pop scans only the bucket covering the
//!   current "year". For the tightly clustered event populations a
//!   discrete-event simulation produces, push and pop are O(1) amortized
//!   instead of the binary heap's O(log n), and the hot path touches a
//!   couple of small contiguous `Vec`s instead of a pointer-chasing
//!   sift-down. This is the queue the [`crate::Engine`] runs on.
//! * [`ReferenceEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   executable specification. The differential property test at the bottom
//!   of this module drives random push/cancel/pop/pop_at_or_before
//!   sequences through both and asserts identical `(time, id, payload)`
//!   streams, FIFO tie-breaks included.
//!
//! Both queues schedule events for the same instant to pop in insertion
//! order (ids are dense sequence numbers), which makes simulation runs
//! bit-for-bit reproducible, and both cancel lazily: a cancelled entry
//! stays where it is and is dropped when a scan next touches it. Liveness
//! is a bitset indexed by the dense id, so the hot paths never hash.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event; used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number, unique per queue.
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

// BinaryHeap is a max-heap: invert ordering so the earliest time pops first,
// breaking ties by insertion order (lower id first) for determinism.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}

/// Dense-id liveness bitset shared by both queue implementations: bit `i`
/// is set while event `i` is scheduled and neither popped nor cancelled.
#[derive(Default)]
struct PendingBits(Vec<u64>);

impl PendingBits {
    fn set(&mut self, id: EventId) {
        let word = id.0 as usize / 64;
        if word >= self.0.len() {
            self.0.resize(word + 1, 0);
        }
        self.0[word] |= 1 << (id.0 % 64);
    }

    fn is_set(&self, id: EventId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        self.0.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Clears the bit; returns whether it was set.
    fn clear(&mut self, id: EventId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        match self.0.get_mut(word) {
            Some(w) if *w & (1 << bit) != 0 => {
                *w &= !(1 << bit);
                true
            }
            _ => false,
        }
    }
}

// ------------------------------------------------------------------ calendar

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 16;
/// Smallest bucket count the queue shrinks back to.
const MIN_BUCKETS: usize = 16;
/// Initial bucket width in microseconds, before any sampled estimate.
const INITIAL_WIDTH: u64 = 1_000;
/// Upper clamp on the sampled bucket width (µs); keeps year arithmetic
/// far from overflow even for far-future sentinel events.
const MAX_WIDTH: u64 = 1 << 50;
/// How many entry timestamps the resize pass samples to estimate typical
/// event spacing.
const WIDTH_SAMPLES: usize = 64;

/// A time-ordered queue of events, implemented as a calendar queue.
///
/// Events scheduled for the same instant pop in insertion order (same-time
/// events always land in the same bucket, so the in-bucket minimum scan
/// resolves ties by id). Cancellation is lazy: cancelled entries stay in
/// their bucket and are dropped when a scan next touches them.
///
/// The bucket ring covers one "year" of `nbuckets × width` microseconds;
/// an event maps to bucket `(t / width) mod nbuckets`. Pop scans the
/// current bucket for the earliest entry belonging to the current year
/// (`t` inside the bucket's current window) and advances bucket by bucket
/// otherwise; after a fruitless full-year sweep it falls back to a direct
/// global-minimum search and jumps the clock there. The ring doubles when
/// the live population outgrows it and halves when it empties out, and
/// each resize re-estimates the width from the median gap of a sample of
/// entry timestamps, so bucket occupancy stays O(1) on average.
pub struct EventQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Power-of-two bucket count; the ring index mask is `nbuckets - 1`.
    nbuckets: usize,
    /// Bucket width in microseconds (≥ 1).
    width: u64,
    /// Ring index of the bucket the clock currently points at.
    cur: usize,
    /// Exclusive upper bound (µs) of `cur`'s current-year window. `u128`
    /// so `(t / width + 1) × width` can never overflow.
    bucket_top: u128,
    pending: PendingBits,
    /// Number of live (scheduled, unpopped, uncancelled) events.
    live: usize,
    /// Cancelled entries still sitting in buckets awaiting lazy removal.
    lazy_cancelled: usize,
    next_id: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            nbuckets: INITIAL_BUCKETS,
            width: INITIAL_WIDTH,
            cur: 0,
            bucket_top: INITIAL_WIDTH as u128,
            pending: PendingBits::default(),
            live: 0,
            lazy_cancelled: 0,
            next_id: 0,
        }
    }

    fn bucket_of(&self, micros: u64) -> usize {
        ((micros / self.width) as usize) & (self.nbuckets - 1)
    }

    /// Points the clock at the year window containing `micros`.
    fn seek_to(&mut self, micros: u64) {
        let base = micros / self.width;
        self.cur = (base as usize) & (self.nbuckets - 1);
        self.bucket_top = (base as u128 + 1) * self.width as u128;
    }

    /// Schedules `payload` at absolute time `time`, returning a cancellable id.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.pending.set(id);
        self.live += 1;
        let micros = time.as_micros();
        // The clock floor is the start of the current bucket window; an
        // earlier push must rewind the clock or pop would skip past it.
        if (micros as u128) < self.bucket_top.saturating_sub(self.width as u128) {
            self.seek_to(micros);
        }
        let b = self.bucket_of(micros);
        self.buckets[b].push(Entry { time, id, payload });
        if self.live > self.nbuckets * 2 {
            self.resize(self.nbuckets * 2);
        }
        id
    }

    /// Cancels a previously scheduled event. Cancelling an already-popped,
    /// already-cancelled, or unknown id is a no-op. Returns whether the id
    /// was newly cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        if self.pending.clear(id) {
            self.live -= 1;
            self.lazy_cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Locates the earliest live entry, pruning cancelled entries on the
    /// way, and leaves the clock pointing at its year window. Returns the
    /// `(bucket, slot)` position without removing the entry.
    fn find_min(&mut self) -> Option<(usize, usize)> {
        if self.live == 0 {
            return None;
        }
        let mut scanned = 0;
        loop {
            // Scan the current bucket for the earliest (time, id) entry
            // that belongs to the current year window.
            let bucket_top = self.bucket_top;
            let mut best: Option<(u64, u64, usize)> = None;
            let mut slot = 0;
            // Split borrows: prune via the bucket while probing `pending`.
            let cur = self.cur;
            while slot < self.buckets[cur].len() {
                let (time, id) = {
                    let e = &self.buckets[cur][slot];
                    (e.time.as_micros(), e.id)
                };
                if !self.pending.is_set(id) {
                    self.buckets[cur].swap_remove(slot);
                    self.lazy_cancelled -= 1;
                    continue;
                }
                if (time as u128) < bucket_top
                    && best.is_none_or(|(bt, bid, _)| (time, id.0) < (bt, bid))
                {
                    best = Some((time, id.0, slot));
                }
                slot += 1;
            }
            if let Some((_, _, slot)) = best {
                return Some((cur, slot));
            }
            self.cur = (self.cur + 1) & (self.nbuckets - 1);
            self.bucket_top += self.width as u128;
            scanned += 1;
            if scanned >= self.nbuckets {
                return self.direct_min();
            }
        }
    }

    /// Fallback after a fruitless full-year sweep: scan every bucket for
    /// the global minimum and jump the clock to it. O(entries + buckets),
    /// amortized away by the year jump it buys.
    fn direct_min(&mut self) -> Option<(usize, usize)> {
        let mut best: Option<(u64, u64, usize, usize)> = None;
        for b in 0..self.nbuckets {
            let mut slot = 0;
            while slot < self.buckets[b].len() {
                let (time, id) = {
                    let e = &self.buckets[b][slot];
                    (e.time.as_micros(), e.id)
                };
                if !self.pending.is_set(id) {
                    self.buckets[b].swap_remove(slot);
                    self.lazy_cancelled -= 1;
                    continue;
                }
                if best.is_none_or(|(bt, bid, _, _)| (time, id.0) < (bt, bid)) {
                    best = Some((time, id.0, b, slot));
                }
                slot += 1;
            }
        }
        best.map(|(time, _, b, slot)| {
            self.seek_to(time);
            (b, slot)
        })
    }

    fn remove_at(&mut self, bucket: usize, slot: usize) -> (SimTime, EventId, E) {
        let entry = self.buckets[bucket].swap_remove(slot);
        self.pending.clear(entry.id);
        self.live -= 1;
        if self.nbuckets > MIN_BUCKETS && self.live < self.nbuckets / 2 {
            self.resize(self.nbuckets / 2);
        }
        (entry.time, entry.id, entry.payload)
    }

    /// Pops the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let (b, s) = self.find_min()?;
        Some(self.remove_at(b, s))
    }

    /// Time of the earliest pending (non-cancelled) event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let (b, s) = self.find_min()?;
        Some(self.buckets[b][s].time)
    }

    /// Pops the earliest non-cancelled event only if it is scheduled at or
    /// before `horizon`.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventId, E)> {
        let (b, s) = self.find_min()?;
        if self.buckets[b][s].time > horizon {
            return None;
        }
        Some(self.remove_at(b, s))
    }

    /// Number of live (scheduled, unpopped, uncancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Rebuilds the ring with `new_nb` buckets, dropping cancelled entries
    /// and re-estimating the bucket width from the surviving population.
    fn resize(&mut self, new_nb: usize) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.live);
        for bucket in &mut self.buckets {
            for e in bucket.drain(..) {
                if self.pending.is_set(e.id) {
                    entries.push(e);
                } else {
                    self.lazy_cancelled -= 1;
                }
            }
        }
        self.width = estimate_width(&entries).unwrap_or(self.width);
        self.nbuckets = new_nb;
        self.buckets.resize_with(new_nb, Vec::new);
        // Rewind the clock to the earliest survivor (no event precedes it).
        let min_t = entries
            .iter()
            .map(|e| e.time.as_micros())
            .min()
            .unwrap_or(0);
        self.seek_to(min_t);
        for e in entries {
            let b = self.bucket_of(e.time.as_micros());
            self.buckets[b].push(e);
        }
    }
}

/// Estimates a bucket width from the median adjacent gap of a strided
/// sample of entry timestamps. The median is robust to the far-future
/// outliers (wall-time sentinels) a simulation keeps parked in the queue.
/// Returns `None` when the population is too small or fully coincident.
fn estimate_width<E>(entries: &[Entry<E>]) -> Option<u64> {
    if entries.len() < 4 {
        return None;
    }
    let stride = entries.len().div_ceil(WIDTH_SAMPLES);
    let mut sample: Vec<u64> = entries
        .iter()
        .step_by(stride)
        .map(|e| e.time.as_micros())
        .collect();
    sample.sort_unstable();
    let mut gaps: Vec<u64> = sample.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    if median == 0 {
        return None;
    }
    // A few median gaps per bucket keeps occupancy low without spreading
    // the year so wide the current bucket goes stale.
    Some((median.saturating_mul(4)).clamp(1, MAX_WIDTH))
}

// ----------------------------------------------------------------- reference

/// The original `BinaryHeap`-backed queue, kept as the executable
/// specification for [`EventQueue`]. Not used by the engine; exists so the
/// differential tests (and any future queue experiment) have a trusted
/// oracle with identical semantics.
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    pending: PendingBits,
    live: usize,
    lazy_cancelled: usize,
    next_id: u64,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            pending: PendingBits::default(),
            live: 0,
            lazy_cancelled: 0,
            next_id: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`, returning a cancellable id.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.pending.set(id);
        self.live += 1;
        self.heap.push(Entry { time, id, payload });
        id
    }

    /// Cancels a previously scheduled event; see [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        if self.pending.clear(id) {
            self.live -= 1;
            self.lazy_cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Pops the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.lazy_cancelled > 0 && !self.pending.is_set(entry.id) {
                self.lazy_cancelled -= 1;
                continue;
            }
            self.pending.clear(entry.id);
            self.live -= 1;
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.lazy_cancelled > 0 && !self.pending.is_set(entry.id) {
                self.heap.pop().expect("peeked entry exists");
                self.lazy_cancelled -= 1;
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Pops the earliest non-cancelled event only if it is scheduled at or
    /// before `horizon`.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.peek() {
            if self.lazy_cancelled > 0 && !self.pending.is_set(entry.id) {
                self.heap.pop().expect("peeked entry exists");
                self.lazy_cancelled -= 1;
                continue;
            }
            if entry.time > horizon {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.pending.clear(entry.id);
            self.live -= 1;
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Number of live (scheduled, unpopped, uncancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for name in ["first", "second", "third"] {
            q.push(t(7), name);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5).map(|i| q.push(t(i), i)).collect();
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
    }

    /// Regression: cancelling an id that was already popped used to record
    /// a phantom cancellation, making `len()` underflow (debug panic) and
    /// report wrong counts in release builds.
    #[test]
    fn cancel_after_pop_keeps_len_consistent() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let _b = q.push(t(2), "b");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("a"));
        assert!(!q.cancel(a), "cancelling a popped id is a no-op");
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
        assert!(q.is_empty());
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.push(t(3), "c");
        q.cancel(a);
        assert!(q.pop_at_or_before(SimTime::ZERO).is_none());
        assert_eq!(q.pop_at_or_before(t(3)).map(|(_, _, p)| p), Some("c"));
        assert!(q.pop_at_or_before(t(4)).is_none(), "b is past the horizon");
        assert_eq!(q.pop_at_or_before(t(5)).map(|(_, _, p)| p), Some("b"));
        assert!(q.is_empty());
    }

    /// A push earlier than everything already popped past must still
    /// surface (the calendar clock rewinds).
    #[test]
    fn push_behind_the_clock_rewinds() {
        let mut q = EventQueue::new();
        q.push(t(100), "late");
        assert_eq!(q.peek_time(), Some(t(100)));
        q.push(t(1), "early");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("early"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("late"));
    }

    /// Growing past the resize threshold and draining back down keeps the
    /// pop order intact (exercises resize + width re-estimation).
    #[test]
    fn resize_preserves_order() {
        let mut q = EventQueue::new();
        let n = 500u64;
        // Deterministic scatter of times with duplicates and one far-future
        // outlier (as a wall-time sentinel would be).
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for i in 0..n {
            let micros = (i * 7919) % 1000;
            let id = q.push(SimTime::from_micros(micros), i);
            expected.push((micros, id.raw()));
        }
        q.push(SimTime::from_micros(u64::MAX / 2), n);
        expected.push((u64::MAX / 2, n));
        expected.sort_unstable();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, id, _)| (t.as_micros(), id.raw()))
            .collect();
        assert_eq!(got, expected);
    }

    proptest! {
        /// Popped events are always in non-decreasing time order, and every
        /// non-cancelled event appears exactly once.
        #[test]
        fn prop_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..100),
                               cancel_mask in proptest::collection::vec(any::<bool>(), 1..100)) {
            let mut q = EventQueue::new();
            let mut expected = Vec::new();
            for (i, &secs) in times.iter().enumerate() {
                let id = q.push(SimTime::from_micros(secs), i);
                let cancel = cancel_mask.get(i).copied().unwrap_or(false);
                if cancel {
                    q.cancel(id);
                } else {
                    expected.push(i);
                }
            }
            let mut last = SimTime::ZERO;
            let mut seen = Vec::new();
            while let Some((time, _, payload)) = q.pop() {
                prop_assert!(time >= last);
                last = time + SimDuration::ZERO;
                seen.push(payload);
            }
            seen.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(seen, expected);
        }

        /// Differential test: the calendar queue and the reference heap
        /// queue produce identical (time, id, payload) streams under random
        /// interleavings of push / cancel / pop / pop_at_or_before /
        /// peek_time, including FIFO tie-breaks at coincident times. Ops
        /// are encoded as `(kind, a, b)` tuples: kind selects the
        /// operation, `a`/`b` parameterize it. The coarse time grid
        /// (multiples of 1000 µs) forces plenty of exact ties.
        #[test]
        fn prop_calendar_matches_reference(
            ops in proptest::collection::vec((0u8..10, 0u64..200, any::<u64>()), 1..400)
        ) {
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut reference: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
            let mut payload = 0u64;
            let mut issued: Vec<EventId> = Vec::new();
            for (kind, a, b) in ops {
                match kind {
                    // Push weighted ×4 so queues actually fill up.
                    0..=3 => {
                        let t = SimTime::from_micros(a * 1000 + (b % 3) * 500);
                        let x = cal.push(t, payload);
                        let y = reference.push(t, payload);
                        prop_assert_eq!(x, y, "id streams diverge");
                        issued.push(x);
                        payload += 1;
                    }
                    4 => {
                        if issued.is_empty() { continue; }
                        let id = issued[b as usize % issued.len()];
                        prop_assert_eq!(cal.cancel(id), reference.cancel(id));
                    }
                    5 | 6 => {
                        prop_assert_eq!(cal.pop(), reference.pop());
                    }
                    7 | 8 => {
                        let h = SimTime::from_micros(a * 1000);
                        prop_assert_eq!(cal.pop_at_or_before(h), reference.pop_at_or_before(h));
                    }
                    _ => {
                        prop_assert_eq!(cal.peek_time(), reference.peek_time());
                    }
                }
                prop_assert_eq!(cal.len(), reference.len());
                prop_assert_eq!(cal.is_empty(), reference.is_empty());
            }
            // Drain both queues completely: the tails must agree too.
            loop {
                let (x, y) = (cal.pop(), reference.pop());
                prop_assert_eq!(x, y);
                if x.is_none() { break; }
            }
        }
    }
}
