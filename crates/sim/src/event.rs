//! Priority event queue with deterministic FIFO tie-breaking and cancellation.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event; used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number, unique per queue.
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

// BinaryHeap is a max-heap: invert ordering so the earliest time pops first,
// breaking ties by insertion order (lower id first) for determinism.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}

/// A time-ordered queue of events.
///
/// Events scheduled for the same instant pop in insertion order, which makes
/// simulation runs bit-for-bit reproducible. Cancellation is lazy: cancelled
/// entries stay in the heap and are skipped when they surface.
///
/// Because ids are dense sequence numbers, liveness is tracked in a bitset
/// rather than a hash set: `pending` bit `i` is set while event `i` is
/// scheduled and neither popped nor cancelled. This keeps the hot pop path
/// free of hashing, makes `len` an O(1) counter read (the previous
/// `heap.len() - cancelled.len()` underflowed when an already-popped id was
/// cancelled), and lets pop/peek skip the liveness probe entirely while no
/// lazily-cancelled entries remain in the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Bit `i` set ⇔ event id `i` is scheduled, unpopped, and uncancelled.
    pending: Vec<u64>,
    /// Number of set bits in `pending` (live events).
    live: usize,
    /// Cancelled entries still sitting in the heap awaiting lazy removal.
    lazy_cancelled: usize,
    next_id: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: Vec::new(),
            live: 0,
            lazy_cancelled: 0,
            next_id: 0,
        }
    }

    fn is_pending(&self, id: EventId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        self.pending.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Clears the pending bit; returns whether it was set.
    fn clear_pending(&mut self, id: EventId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        match self.pending.get_mut(word) {
            Some(w) if *w & (1 << bit) != 0 => {
                *w &= !(1 << bit);
                true
            }
            _ => false,
        }
    }

    /// Schedules `payload` at absolute time `time`, returning a cancellable id.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let word = id.0 as usize / 64;
        if word >= self.pending.len() {
            self.pending.resize(word + 1, 0);
        }
        self.pending[word] |= 1 << (id.0 % 64);
        self.live += 1;
        self.heap.push(Entry { time, id, payload });
        id
    }

    /// Cancels a previously scheduled event. Cancelling an already-popped,
    /// already-cancelled, or unknown id is a no-op. Returns whether the id
    /// was newly cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        if self.clear_pending(id) {
            self.live -= 1;
            self.lazy_cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Pops the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            // Fast path: with no lazy cancellations in the heap, every
            // entry is live — skip the liveness probe.
            if self.lazy_cancelled > 0 && !self.is_pending(entry.id) {
                self.lazy_cancelled -= 1;
                continue;
            }
            self.clear_pending(entry.id);
            self.live -= 1;
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.lazy_cancelled > 0 && !self.is_pending(entry.id) {
                self.heap.pop().expect("peeked entry exists");
                self.lazy_cancelled -= 1;
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Pops the earliest non-cancelled event only if it is scheduled at or
    /// before `horizon`. One heap traversal replaces the peek-then-pop pair
    /// in bounded-run loops.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.peek() {
            if self.lazy_cancelled > 0 && !self.is_pending(entry.id) {
                self.heap.pop().expect("peeked entry exists");
                self.lazy_cancelled -= 1;
                continue;
            }
            if entry.time > horizon {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.clear_pending(entry.id);
            self.live -= 1;
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Number of live (scheduled, unpopped, uncancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for name in ["first", "second", "third"] {
            q.push(t(7), name);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5).map(|i| q.push(t(i), i)).collect();
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
    }

    /// Regression: cancelling an id that was already popped used to record
    /// a phantom cancellation, making `len()` underflow (debug panic) and
    /// report wrong counts in release builds.
    #[test]
    fn cancel_after_pop_keeps_len_consistent() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let _b = q.push(t(2), "b");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("a"));
        assert!(!q.cancel(a), "cancelling a popped id is a no-op");
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
        assert!(q.is_empty());
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.push(t(3), "c");
        q.cancel(a);
        assert!(q.pop_at_or_before(SimTime::ZERO).is_none());
        assert_eq!(q.pop_at_or_before(t(3)).map(|(_, _, p)| p), Some("c"));
        assert!(q.pop_at_or_before(t(4)).is_none(), "b is past the horizon");
        assert_eq!(q.pop_at_or_before(t(5)).map(|(_, _, p)| p), Some("b"));
        assert!(q.is_empty());
    }

    proptest! {
        /// Popped events are always in non-decreasing time order, and every
        /// non-cancelled event appears exactly once.
        #[test]
        fn prop_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..100),
                               cancel_mask in proptest::collection::vec(any::<bool>(), 1..100)) {
            let mut q = EventQueue::new();
            let mut expected = Vec::new();
            for (i, &secs) in times.iter().enumerate() {
                let id = q.push(SimTime::from_micros(secs), i);
                let cancel = cancel_mask.get(i).copied().unwrap_or(false);
                if cancel {
                    q.cancel(id);
                } else {
                    expected.push(i);
                }
            }
            let mut last = SimTime::ZERO;
            let mut seen = Vec::new();
            while let Some((time, _, payload)) = q.pop() {
                prop_assert!(time >= last);
                last = time + SimDuration::ZERO;
                seen.push(payload);
            }
            seen.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(seen, expected);
        }
    }
}
