//! Deterministic session metrics: named virtual-time gauges and counters.
//!
//! Complements the event trace with aggregate signals — core utilization,
//! batch-queue depth, live units, retry/failure counts. Everything is keyed
//! by interned `&'static str` names and stored in `BTreeMap`s so iteration
//! order (and hence any export) is deterministic.

use crate::stats::TimeSeries;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// A bag of named gauges (virtual-time series) and monotonic counters.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    gauges: BTreeMap<&'static str, TimeSeries>,
    counters: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Creates an empty metrics bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to the gauge `name` at `time`.
    pub fn gauge(&mut self, name: &'static str, time: SimTime, value: f64) {
        self.gauges.entry(name).or_default().push(time, value);
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments the counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter; 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The time series behind a gauge, if it was ever sampled.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.gauges.get(name)
    }

    /// All gauges in deterministic (name) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &TimeSeries)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, v))
    }

    /// All counters in deterministic (name) order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("retries");
        m.add("retries", 2);
        assert_eq!(m.counter("retries"), 3);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_keep_time_series() {
        let mut m = Metrics::new();
        m.gauge("util", SimTime::ZERO, 0.0);
        m.gauge("util", SimTime::from_secs(10), 8.0);
        let s = m.series("util").unwrap();
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.peak(), 8.0);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let mut m = Metrics::new();
        m.inc("z");
        m.inc("a");
        m.gauge("q", SimTime::ZERO, 1.0);
        m.gauge("b", SimTime::ZERO, 1.0);
        let counters: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        let gauges: Vec<&str> = m.gauges().map(|(k, _)| k).collect();
        assert_eq!(counters, vec!["a", "z"]);
        assert_eq!(gauges, vec!["b", "q"]);
    }
}
