//! Virtual time for the discrete-event simulation.
//!
//! Simulated experiments in this repository (the paper's Figs. 3–9) run on
//! clusters of up to 4096 cores; wall-clock execution is replaced by a
//! virtual clock with microsecond resolution. `SimTime` is an absolute
//! instant since simulation start, `SimDuration` a non-negative span.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Microseconds per second, the base resolution of the virtual clock.
const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant in virtual time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span from `earlier` to `self`; saturates to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Span of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Span of `secs` fractional seconds, rounded to the nearest microsecond.
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this span as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; use [`SimTime::saturating_since`]
    /// when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(5);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_micros(), 6_500_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.000_000_4).as_micros(), 0);
        assert_eq!(SimDuration::from_secs_f64(0.000_000_6).as_micros(), 1);
    }

    #[test]
    fn negative_and_nan_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_handles_reversed_order() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_secs_f64(2.5));
        assert_eq!(d * 0.5, SimDuration::from_secs(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimDuration::from_millis(1).to_string(), "0.001000s");
    }
}
