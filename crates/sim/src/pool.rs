//! A small persistent worker pool for parallel conservative-lookahead
//! windows.
//!
//! The federated simulator advances each member cluster inside short,
//! bounded windows — often tens of microseconds of real work — so the cost
//! of spawning OS threads per window would dwarf the work itself. This pool
//! keeps `n` parked workers alive for the lifetime of a session and runs
//! batches of borrowed closures against them: [`WorkerPool::run`] blocks
//! the caller until every job in the batch has finished, which is what
//! makes handing out non-`'static` closures sound (the borrowed state is
//! guaranteed to outlive the jobs because the lender is parked on the
//! completion barrier the whole time).
//!
//! [`WorkerPool::submit`] is the barrier-free sibling for owned jobs: the
//! workload service streams just-in-time session evaluations through it,
//! collecting results over a channel while the admission loop keeps
//! running. [`WorkerPool::cancel_queued`] discards never-started jobs on
//! early-abort paths.
//!
//! Determinism note: the pool intentionally offers no ordering guarantees —
//! jobs run on whichever worker grabs them first. Callers must therefore
//! keep all ordered state member-private during a window and merge it on
//! the spine afterwards (see `entk-core`'s conservative-lookahead merge).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// An owned job for the asynchronous [`WorkerPool::submit`] path.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct DoneState {
    outstanding: usize,
    panics: usize,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    done: Mutex<DoneState>,
    all_done: Condvar,
}

/// A fixed-size pool of parked worker threads executing batches of jobs
/// with a blocking completion barrier per batch.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least one). The
    /// threads park on a condvar until work arrives and die when the pool
    /// is dropped.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            done: Mutex::new(DoneState {
                outstanding: 0,
                panics: 0,
            }),
            all_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("entk-sim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn sim worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a batch of owned (`'static`) jobs and returns immediately —
    /// no completion barrier. Callers observe completion through the jobs
    /// themselves (typically a channel send at the end of each closure);
    /// the workload service uses this for just-in-time session evaluation.
    ///
    /// Mixing with [`WorkerPool::run`] is safe but conservative: `run`'s
    /// barrier waits for *all* outstanding jobs, submitted ones included.
    /// A submitted job that panics is contained on its worker; the panic
    /// is surfaced by the next `run` barrier on this pool, if any.
    pub fn submit(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let n = jobs.len();
        self.shared.done.lock().expect("pool done lock").outstanding += n;
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.jobs.extend(jobs);
        }
        self.shared.work_ready.notify_all();
    }

    /// Drops every job that is still queued (never started) and returns
    /// how many were discarded. Jobs already running are unaffected. Used
    /// on early-abort paths so dropping the pool does not first drain a
    /// deep backlog of now-useless work.
    pub fn cancel_queued(&self) -> usize {
        let dropped = {
            let mut state = self.shared.state.lock().expect("pool state lock");
            let n = state.jobs.len();
            state.jobs.clear();
            n
        };
        if dropped > 0 {
            let mut done = self.shared.done.lock().expect("pool done lock");
            done.outstanding -= dropped;
            if done.outstanding == 0 {
                self.shared.all_done.notify_all();
            }
        }
        dropped
    }

    /// Runs a batch of jobs on the pool and blocks until all of them have
    /// completed. Jobs may borrow from the caller's stack: the blocking
    /// barrier guarantees no job outlives this call.
    ///
    /// If any job panics, the panic is contained on the worker (the thread
    /// survives for the next batch) and re-raised here once the batch has
    /// drained.
    pub fn run<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        // SAFETY: the transmute only erases the `'scope` lifetime bound of
        // each boxed closure; layout is unchanged. It is sound because this
        // function does not return until `outstanding` drops back to zero,
        // i.e. every job has finished running — so no job can observe its
        // borrows after `'scope` ends.
        let jobs: Vec<Job> = jobs
            .into_iter()
            .map(|j| unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(j) })
            .collect();
        let n = jobs.len();
        self.shared.done.lock().expect("pool done lock").outstanding += n;
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.jobs.extend(jobs);
        }
        self.shared.work_ready.notify_all();
        let mut done = self.shared.done.lock().expect("pool done lock");
        while done.outstanding > 0 {
            done = self.shared.all_done.wait(done).expect("pool barrier wait");
        }
        if done.panics > 0 {
            done.panics = 0;
            drop(done);
            panic!("a worker-pool job panicked; see worker thread output");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool state lock").shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool worker wait");
            }
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err();
        let mut done = shared.done.lock().expect("pool done lock");
        done.outstanding -= 1;
        if panicked {
            done.panics += 1;
        }
        if done.outstanding == 0 {
            shared.all_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_all_jobs_and_blocks_until_done() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (1..=100u64)
            .map(|i| {
                let sum = &sum;
                Box::new(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        // run() returned, so every borrowed increment has landed.
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn jobs_may_borrow_stack_state_across_batches() {
        let pool = WorkerPool::new(2);
        let mut slots = vec![0u64; 4];
        for round in 1..=3u64 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || *slot += round * (i as u64 + 1))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(slots, vec![6, 12, 18, 24]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(1);
        pool.run(Vec::new());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let ran = AtomicU64::new(0);
        pool.run(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn submitted_jobs_complete_without_a_barrier() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(
            (0..16u64)
                .map(|i| {
                    let tx = tx.clone();
                    Box::new(move || {
                        tx.send(i * i).unwrap();
                    }) as Job
                })
                .collect(),
        );
        let mut got: Vec<u64> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..16u64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cancel_queued_discards_unstarted_jobs() {
        // One worker, blocked on the first job: everything behind it is
        // still queued and must be discardable without running.
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let ran = Arc::new(AtomicU64::new(0));
        // Jobs run in submission order, so the lone worker grabs the gate
        // job first and blocks on it while the rest stay queued.
        let mut jobs: Vec<Job> = vec![Box::new(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })];
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            jobs.push(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.submit(jobs);
        started_rx.recv().unwrap();
        let dropped = pool.cancel_queued();
        assert_eq!(dropped, 8);
        gate_tx.send(()).unwrap();
        // The barrier of an empty run() waits for the in-flight job only.
        pool.run(vec![Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "cancelled jobs never ran");
    }

    #[test]
    fn job_panic_is_reraised_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>
            ]);
        }));
        assert!(result.is_err());
        // The worker thread survived the panic and keeps serving batches.
        let ran = AtomicU64::new(0);
        pool.run(vec![
            Box::new(|| {
                ran.fetch_add(1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>,
            Box::new(|| {
                ran.fetch_add(1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>,
        ]);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }
}
