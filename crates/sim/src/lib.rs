//! # entk-sim — deterministic discrete-event simulation engine
//!
//! Foundation of the Ensemble Toolkit reproduction. The paper's experiments
//! ran on XSEDE clusters with up to 4096 cores; this crate provides the
//! virtual clock, event queue, seeded randomness, metric collectors, and
//! structured tracing with which those machines — and the pilot runtime on
//! top of them — are simulated faithfully and reproducibly on one host.
//!
//! Layers build a single top-level event enum with `From` conversions and
//! drive an [`Engine`]; see `entk-cluster` and `entk-pilot` for usage.

#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use arena::{Arena, DenseStore, GenId};
pub use engine::{Context, Engine, RunOutcome};
pub use event::{EventId, EventQueue, ReferenceEventQueue};
pub use metrics::Metrics;
pub use pool::{Job, WorkerPool};
pub use rng::{Dist, SimRng};
pub use stats::{Histogram, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use trace::{
    SharedTelemetry, Subject, SubjectOffsets, Telemetry, TelemetryBuffer, TelemetryOp, TraceRecord,
    Tracer,
};
