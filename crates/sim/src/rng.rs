//! Deterministic randomness and duration distributions.
//!
//! Every stochastic quantity in the simulation (queue waits, launch jitter,
//! kernel runtime noise) is drawn from a [`Dist`] through a seeded
//! [`SimRng`], so a run is fully reproducible from its seed.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seeded random source used throughout the simulation stack.
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform f64 in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// Standard normal deviate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.inner.random::<f64>();
        let u2: f64 = self.inner.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd.abs() * self.standard_normal()
    }

    /// Exponential deviate with the given mean (`mean = 1 / rate`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.random::<f64>();
        -mean * u.ln()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random::<f64>() < p
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so adding draws in one component does not
    /// perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix seed and stream with splitmix64-style constants.
        let mixed = self
            .seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.inner.random::<u64>() & 0xFFFF);
        SimRng::seed_from_u64(mixed)
    }
}

/// A distribution over non-negative seconds, used for modelled delays.
#[allow(missing_docs)] // variant fields are self-describing parameters
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform in `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Normal with mean and standard deviation, truncated at zero.
    Normal { mean: f64, sd: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Log-normal parameterized by the underlying normal's mu and sigma.
    LogNormal { mu: f64, sigma: f64 },
}

impl Dist {
    /// A distribution that is always zero (no delay).
    pub const ZERO: Dist = Dist::Constant(0.0);

    /// Samples a value in seconds, clamped to be non-negative.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let v = match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            Dist::Normal { mean, sd } => rng.normal(mean, sd),
            Dist::Exponential { mean } => rng.exponential(mean),
            Dist::LogNormal { mu, sigma } => rng.normal(mu, sigma).exp(),
        };
        v.max(0.0)
    }

    /// Samples a [`SimDuration`].
    pub fn sample_duration(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng))
    }

    /// A lower bound on sampled values, in seconds: the largest delay the
    /// distribution is guaranteed (`Constant`, `Uniform`) — or, for
    /// `Normal`, overwhelmingly certain at mean − 8σ (Box–Muller deviates
    /// are magnitude-bounded near 8.6σ) — never to undercut. Shapes with
    /// mass arbitrarily close to zero floor at 0.
    ///
    /// The federated simulator derives its conservative lookahead from the
    /// floor of the first reaction delay on the session spine; since both
    /// drive modes execute the identical windowed schedule, the floor tunes
    /// window width (throughput), not correctness.
    pub fn floor(&self) -> f64 {
        let v = match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, .. } => lo,
            Dist::Normal { mean, sd } => mean - 8.0 * sd.abs(),
            Dist::Exponential { .. } => 0.0,
            Dist::LogNormal { .. } => 0.0,
        };
        v.max(0.0)
    }

    /// The distribution's mean, used by analytic capacity estimates.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, hi } => ((lo + hi) / 2.0).max(0.0),
            Dist::Normal { mean, .. } => mean.max(0.0),
            Dist::Exponential { mean } => mean.max(0.0),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..32).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..32).map(|_| b.uniform()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn dist_samples_are_non_negative() {
        let mut rng = SimRng::seed_from_u64(3);
        let dists = [
            Dist::Constant(-5.0),
            Dist::Normal {
                mean: 0.0,
                sd: 10.0,
            },
            Dist::Uniform { lo: 0.0, hi: 1.0 },
            Dist::Exponential { mean: 1.0 },
            Dist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        ];
        for d in dists {
            for _ in 0..200 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn dist_floor_never_exceeds_samples() {
        let mut rng = SimRng::seed_from_u64(77);
        let dists = [
            Dist::Constant(1.5),
            Dist::Uniform { lo: 0.3, hi: 0.9 },
            Dist::Normal {
                mean: 0.05,
                sd: 0.005,
            },
            Dist::Exponential { mean: 2.0 },
            Dist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        ];
        for d in dists {
            let floor = d.floor();
            assert!(floor >= 0.0);
            for _ in 0..2_000 {
                assert!(d.sample(&mut rng) >= floor, "{d:?} undercut {floor}");
            }
        }
        assert_eq!(Dist::Constant(1.5).floor(), 1.5);
        assert_eq!(Dist::Uniform { lo: 0.3, hi: 0.9 }.floor(), 0.3);
        // The calibrated task-submit shape (mean 50 ms, σ 5 ms) floors at
        // 10 ms — that becomes the default federated lookahead.
        let cal = Dist::Normal {
            mean: 0.05,
            sd: 0.005,
        };
        assert!((cal.floor() - 0.01).abs() < 1e-12);
        assert_eq!(Dist::Constant(-1.0).floor(), 0.0);
    }

    #[test]
    fn empty_uniform_range_returns_lo() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
        assert_eq!(rng.uniform_range(4.0, 2.0), 4.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(11);
        assert!((0..100).all(|_| rng.chance(1.1)));
        assert!((0..100).all(|_| !rng.chance(0.0)));
    }

    #[test]
    fn fork_streams_are_independent_of_sibling_draw_counts() {
        // Forking the same stream ids from identically-seeded parents yields
        // identical children even if one parent consumed extra draws first...
        let mut p1 = SimRng::seed_from_u64(100);
        let mut p2 = SimRng::seed_from_u64(100);
        let mut c1 = p1.fork(1);
        let mut c2 = p2.fork(1);
        let a: Vec<f64> = (0..8).map(|_| c1.uniform()).collect();
        let b: Vec<f64> = (0..8).map(|_| c2.uniform()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn dist_mean_matches_samples() {
        let mut rng = SimRng::seed_from_u64(5);
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let n = 10_000;
        let emp = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((emp - d.mean()).abs() < 0.05);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn dist_serde_roundtrip() {
        for d in [
            Dist::Constant(1.5),
            Dist::Uniform { lo: 0.0, hi: 2.0 },
            Dist::Normal { mean: 3.0, sd: 0.5 },
            Dist::Exponential { mean: 2.0 },
            Dist::LogNormal {
                mu: 0.1,
                sigma: 0.2,
            },
        ] {
            let json = serde_json::to_string(&d).unwrap();
            let back: Dist = serde_json::from_str(&json).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        };
        let mut rng = SimRng::seed_from_u64(4);
        let n = 40_000;
        let emp = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (emp - d.mean()).abs() / d.mean() < 0.05,
            "{emp} vs {}",
            d.mean()
        );
    }
}
