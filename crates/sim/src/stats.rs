//! Lightweight metric collectors: summaries, histograms, and time series.
//!
//! Benches and the overhead profiler aggregate per-task timings with these
//! types; they are deliberately simple (exact samples, computed on demand)
//! because sample counts are at most O(10^4) per experiment.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Running summary of a stream of f64 samples (stored exactly).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Adds a duration sample in seconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Minimum sample; 0 for an empty summary.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_finite()
    }

    /// Maximum sample; 0 for an empty summary.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Population standard deviation; 0 for fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Median sample (50th percentile); 0 for an empty summary.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Percentile in `[0, 100]` by nearest-rank on sorted samples.
    ///
    /// Sorts a copy of the samples; when querying several percentiles of the
    /// same summary, prefer [`Summary::percentiles`], which sorts once.
    pub fn percentile(&self, p: f64) -> f64 {
        self.percentiles(&[p])[0]
    }

    /// Batch percentile query: one sort shared by all requested points.
    ///
    /// Returns one value per entry of `ps`, each by nearest-rank on the
    /// sorted samples; every value is 0 for an empty summary.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return vec![0.0; ps.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        ps.iter()
            .map(|p| {
                let rank =
                    ((p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64).round() as usize;
                sorted[rank]
            })
            .collect()
    }

    /// Immutable view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            buckets: vec![0; n],
            overflow: 0,
            underflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((value - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Bucket counts (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total recorded samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow + self.underflow
    }

    /// Samples above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
}

/// A value sampled over virtual time, e.g. core utilization.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point; times must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "time series must be appended in order");
        }
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Time-weighted average assuming step interpolation, over the recorded
    /// span. Returns 0 for fewer than two points.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs_f64();
            acc += w[0].1 * dt;
            span += dt;
        }
        if span == 0.0 {
            0.0
        } else {
            acc / span
        }
    }

    /// Peak recorded value; 0 for an empty series.
    pub fn peak(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.stddev() - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        // Convention: every statistic of an empty summary is exactly 0.0 —
        // never NaN or an infinity — so report columns stay plottable.
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.median(), 0.0);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(s.percentile(p), 0.0);
        }
        assert_eq!(s.percentiles(&[0.0, 50.0, 99.9]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn summary_batch_percentiles_match_single_queries() {
        let mut s = Summary::new();
        for v in 0..=100 {
            s.add(v as f64);
        }
        let ps = [0.0, 12.5, 50.0, 90.0, 100.0, 200.0];
        let batch = s.percentiles(&ps);
        for (p, got) in ps.iter().zip(&batch) {
            assert_eq!(*got, s.percentile(*p), "percentile {p} mismatch");
        }
    }

    #[test]
    fn median_matches_middle_sample() {
        let mut s = Summary::new();
        for v in [5.0, 1.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn summary_percentiles() {
        let mut s = Summary::new();
        for v in 0..=100 {
            s.add(v as f64);
        }
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(200.0), 100.0, "clamped");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.6, 9.9, 10.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn time_series_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 0.0);
        ts.push(SimTime::from_secs(10), 10.0); // value 0 held for 10 s
        ts.push(SimTime::from_secs(20), 0.0); // value 10 held for 10 s
        assert_eq!(ts.time_weighted_mean(), 5.0);
        assert_eq!(ts.peak(), 10.0);
    }

    #[test]
    fn time_series_single_point() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::ZERO, 42.0);
        assert_eq!(ts.time_weighted_mean(), 0.0);
        assert_eq!(ts.peak(), 42.0);
    }
}
