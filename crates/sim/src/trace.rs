//! Structured trace of simulation events, mirroring RADICAL-Pilot's profiler.
//!
//! Every layer (cluster, pilot, toolkit) appends timestamped records to a
//! shared [`Tracer`]; the overhead decomposition in the paper's Fig. 3 is
//! computed from intervals between these records.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual time of the record.
    pub time: SimTime,
    /// Emitting layer, e.g. `"entk"`, `"pilot"`, `"cluster"`.
    pub layer: String,
    /// Event name, e.g. `"unit_scheduled"`.
    pub name: String,
    /// Subject entity, e.g. a unit or job id rendered as a string.
    pub subject: String,
}

/// An append-only collection of trace records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Tracer {
    /// Creates an enabled tracer.
    pub fn new() -> Self {
        Tracer {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a tracer that drops all records (zero overhead bookkeeping).
    pub fn disabled() -> Self {
        Tracer {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Appends a record if tracing is enabled.
    pub fn record(
        &mut self,
        time: SimTime,
        layer: impl Into<String>,
        name: impl Into<String>,
        subject: impl Into<String>,
    ) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                layer: layer.into(),
                name: name.into(),
                subject: subject.into(),
            });
        }
    }

    /// All records in append order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records matching a layer and event name.
    pub fn filter<'a>(
        &'a self,
        layer: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.layer == layer && r.name == name)
    }

    /// First record time for (layer, name, subject), if any.
    pub fn time_of(&self, layer: &str, name: &str, subject: &str) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.layer == layer && r.name == name && r.subject == subject)
            .map(|r| r.time)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Tracer::new();
        t.record(SimTime::from_secs(1), "pilot", "unit_scheduled", "u.0");
        t.record(SimTime::from_secs(2), "pilot", "unit_started", "u.0");
        t.record(SimTime::from_secs(2), "entk", "unit_scheduled", "u.0");
        assert_eq!(t.len(), 3);
        assert_eq!(t.filter("pilot", "unit_scheduled").count(), 1);
        assert_eq!(
            t.time_of("pilot", "unit_started", "u.0"),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(t.time_of("pilot", "unit_started", "u.1"), None);
    }

    #[test]
    fn disabled_tracer_drops_records() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, "x", "y", "z");
        assert!(t.is_empty());
    }
}
