//! Structured trace of simulation events, mirroring RADICAL-Pilot's profiler.
//!
//! Every layer (cluster, pilot, toolkit) appends timestamped records to a
//! shared [`Tracer`]; the overhead decomposition in the paper's Fig. 3 is
//! computed from intervals between these records.
//!
//! Records are deliberately allocation-free on the hot path: layer and event
//! names are interned `&'static str` and the subject is a compact
//! [`Subject`] enum, rendered to text only at export time. Two exporters are
//! provided — flat JSONL ([`Tracer::to_jsonl`]) and Chrome trace-event JSON
//! ([`Tracer::to_chrome_json`]), loadable in Perfetto or `chrome://tracing`.

use crate::metrics::Metrics;
use crate::time::SimTime;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The entity a trace record is about, as a compact copyable id.
///
/// Rendered as text only at export/query time (`task.42`, `unit.000042`, …),
/// so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subject {
    /// No particular entity (layer-wide event).
    None,
    /// The whole session (allocate → deallocate).
    Session,
    /// An EnTK task by uid.
    Task(u64),
    /// A batch of tasks released together by the pattern.
    Batch(u64),
    /// A runtime unit by id.
    Unit(u64),
    /// A pilot by id.
    Pilot(u64),
    /// A batch-system job by id.
    Job(u64),
    /// A cluster node by index.
    Node(u64),
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::None => write!(f, "-"),
            Subject::Session => write!(f, "session"),
            Subject::Task(i) => write!(f, "task.{i:06}"),
            Subject::Batch(i) => write!(f, "batch.{i:04}"),
            Subject::Unit(i) => write!(f, "unit.{i:06}"),
            Subject::Pilot(i) => write!(f, "pilot.{i:04}"),
            Subject::Job(i) => write!(f, "job.{i:06}"),
            Subject::Node(i) => write!(f, "node.{i:04}"),
        }
    }
}

impl Subject {
    /// A stable per-layer track id for timeline rendering. Entities of
    /// different kinds never collide within a layer's track space.
    fn track(self) -> u64 {
        match self {
            Subject::None | Subject::Session => 0,
            Subject::Task(i) | Subject::Unit(i) | Subject::Job(i) => 1 + i,
            Subject::Batch(i) | Subject::Pilot(i) | Subject::Node(i) => 1_000_000 + i,
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the record.
    pub time: SimTime,
    /// Emitting layer: `"entk"`, `"pilot"`, or `"cluster"`.
    pub layer: &'static str,
    /// Event name, e.g. `"unit_scheduled"`.
    pub name: &'static str,
    /// Subject entity.
    pub subject: Subject,
}

/// An append-only collection of trace records.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Tracer {
    /// Creates an enabled tracer.
    pub fn new() -> Self {
        Tracer {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a tracer that drops all records (zero overhead bookkeeping).
    pub fn disabled() -> Self {
        Tracer {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Appends a record if tracing is enabled.
    pub fn record(
        &mut self,
        time: SimTime,
        layer: &'static str,
        name: &'static str,
        subject: Subject,
    ) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                layer,
                name,
                subject,
            });
        }
    }

    /// All records in append order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records matching a layer and event name.
    pub fn filter<'a>(
        &'a self,
        layer: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.layer == layer && r.name == name)
    }

    /// First record time for (layer, name, subject), if any.
    pub fn time_of(&self, layer: &str, name: &str, subject: Subject) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.layer == layer && r.name == name && r.subject == subject)
            .map(|r| r.time)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exports the trace as flat JSONL: one object per record, in append
    /// order, with times in virtual seconds.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 80);
        for r in &self.records {
            out.push_str(&format!(
                "{{\"t\":{:.6},\"layer\":\"{}\",\"event\":\"{}\",\"subject\":\"{}\"}}\n",
                r.time.as_secs_f64(),
                r.layer,
                r.name,
                r.subject
            ));
        }
        out
    }

    /// Exports the trace in Chrome trace-event JSON (the `traceEvents`
    /// array format), loadable in Perfetto or `chrome://tracing`.
    ///
    /// Each layer becomes one process (named track); entities become
    /// threads within it. Lifecycle event pairs (task attempts, unit
    /// executions, pilot lifetimes, job runs) render as duration spans;
    /// everything else as instant markers. Timestamps are virtual-clock
    /// microseconds, so the timeline reads in simulated time.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::with_capacity(self.records.len() + 8);
        let mut named_pids = Vec::new();
        // (span kind opened, layer, track) → guards unbalanced end events.
        let mut open: Vec<(&'static str, &'static str, u64)> = Vec::new();
        for r in &self.records {
            let pid = layer_pid(r.layer);
            if !named_pids.contains(&pid) {
                named_pids.push(pid);
                events.push(format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    r.layer
                ));
            }
            let tid = r.subject.track();
            let span = span_kind(r.layer, r.name);
            match span {
                SpanRole::Begin(kind) => {
                    let key = (kind, r.layer, tid);
                    if !open.contains(&key) {
                        open.push(key);
                        events.push(format!(
                            "{{\"name\":\"{kind}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\
                             \"pid\":{pid},\"tid\":{tid},\"args\":{{\"subject\":\"{}\"}}}}",
                            r.layer,
                            r.time.as_micros(),
                            r.subject
                        ));
                    }
                }
                SpanRole::End(kind) => {
                    let key = (kind, r.layer, tid);
                    if let Some(pos) = open.iter().position(|k| *k == key) {
                        open.swap_remove(pos);
                        events.push(format!(
                            "{{\"name\":\"{kind}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\
                             \"pid\":{pid},\"tid\":{tid},\"args\":{{\"end\":\"{}\"}}}}",
                            r.layer,
                            r.time.as_micros(),
                            r.name
                        ));
                    }
                }
                SpanRole::Instant => {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"subject\":\"{}\"}}}}",
                        r.name,
                        r.layer,
                        r.time.as_micros(),
                        r.subject
                    ));
                }
            }
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }
}

/// One process id per layer in the Chrome trace.
fn layer_pid(layer: &str) -> u64 {
    match layer {
        "entk" => 1,
        "pilot" => 2,
        "cluster" => 3,
        _ => 4,
    }
}

enum SpanRole {
    Begin(&'static str),
    End(&'static str),
    Instant,
}

/// Maps lifecycle event pairs to named duration spans; everything else is
/// an instant marker.
fn span_kind(layer: &str, name: &str) -> SpanRole {
    match (layer, name) {
        ("entk", "task_submitted") => SpanRole::Begin("attempt"),
        ("entk", "task_attempt_failed" | "task_done") => SpanRole::End("attempt"),
        ("pilot", "unit_exec_start") => SpanRole::Begin("exec"),
        ("pilot", "unit_exec_stop") => SpanRole::End("exec"),
        ("pilot", "pilot_submitted") => SpanRole::Begin("pilot"),
        ("pilot", "pilot_done" | "pilot_failed" | "pilot_cancelled") => SpanRole::End("pilot"),
        ("cluster", "job_started") => SpanRole::Begin("job_run"),
        ("cluster", "job_completed" | "job_failed" | "job_timedout" | "job_cancelled") => {
            SpanRole::End("job_run")
        }
        _ => SpanRole::Instant,
    }
}

/// Per-kind id offsets applied to [`Subject`]s as they are recorded.
///
/// Federated sessions run several independently simulated clusters, each
/// numbering its pilots, units, jobs, and nodes from zero. Giving every
/// cluster's layers a handle carrying distinct offsets keeps subjects
/// globally unique in the shared trace while leaving the recording layers
/// untouched. Zero offsets (the default) are the identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubjectOffsets {
    /// Added to [`Subject::Pilot`] ids.
    pub pilot: u64,
    /// Added to [`Subject::Unit`] ids.
    pub unit: u64,
    /// Added to [`Subject::Job`] ids.
    pub job: u64,
    /// Added to [`Subject::Node`] ids.
    pub node: u64,
}

impl SubjectOffsets {
    /// True when every offset is zero (the identity mapping).
    pub fn is_identity(&self) -> bool {
        *self == SubjectOffsets::default()
    }

    /// Applies the offsets to a subject.
    pub fn apply(&self, subject: Subject) -> Subject {
        match subject {
            Subject::Pilot(i) => Subject::Pilot(i + self.pilot),
            Subject::Unit(i) => Subject::Unit(i + self.unit),
            Subject::Job(i) => Subject::Job(i + self.job),
            Subject::Node(i) => Subject::Node(i + self.node),
            other => other,
        }
    }
}

/// One buffered telemetry operation: what a layer recorded, in order.
///
/// Parallel federated drivers give each member cluster a *buffered*
/// telemetry handle (see [`SharedTelemetry::buffered`]): worker threads
/// append ops to a member-private log instead of the shared pipeline, and
/// the merge spine later replays contiguous op ranges into the session
/// pipeline in deterministic chunk order — so the interleaved trace is
/// byte-identical no matter how many workers recorded it.
#[derive(Debug, Clone)]
pub enum TelemetryOp {
    /// A trace record (subject offsets already applied).
    Record(TraceRecord),
    /// A gauge sample.
    Gauge(&'static str, SimTime, f64),
    /// A counter increment.
    Add(&'static str, u64),
}

/// The backend-side end of a buffered telemetry handle: exposes the op log
/// so a merge spine can splice ranges into the shared pipeline.
#[derive(Debug, Clone)]
pub struct TelemetryBuffer {
    ops: Arc<Mutex<Vec<TelemetryOp>>>,
}

impl TelemetryBuffer {
    /// Number of ops recorded so far (monotone until [`Self::clear`]).
    pub fn len(&self) -> usize {
        self.ops.lock().expect("telemetry buffer lock").len()
    }

    /// True when no ops are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays ops `[start, end)` into `target`'s shared pipeline, verbatim
    /// (subject offsets were applied when the ops were recorded). Ranges
    /// must be replayed in recording order; the caller owns that invariant.
    pub fn splice_into(&self, target: &SharedTelemetry, start: usize, end: usize) {
        if start >= end || !target.enabled {
            return;
        }
        let ops = self.ops.lock().expect("telemetry buffer lock");
        let mut inner = target.inner.lock().expect("telemetry lock");
        for op in &ops[start..end.min(ops.len())] {
            match *op {
                TelemetryOp::Record(r) => inner.tracer.record(r.time, r.layer, r.name, r.subject),
                TelemetryOp::Gauge(name, time, value) => inner.metrics.gauge(name, time, value),
                TelemetryOp::Add(name, n) => inner.metrics.add(name, n),
            }
        }
    }

    /// Drops all buffered ops (after the caller has spliced everything).
    pub fn clear(&self) {
        self.ops.lock().expect("telemetry buffer lock").clear();
    }
}

/// A trace plus deterministic metrics: everything the observability layer
/// collects during one simulated session.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Cross-layer event trace.
    pub tracer: Tracer,
    /// Virtual-time gauges and counters.
    pub metrics: Metrics,
}

/// A cheaply clonable handle to one session's [`Telemetry`], shared by the
/// cluster, pilot, and toolkit layers.
///
/// The `enabled` flag is copied into the handle so a disabled pipeline
/// skips the lock entirely on the hot path.
#[derive(Debug, Clone)]
pub struct SharedTelemetry {
    inner: Arc<Mutex<Telemetry>>,
    enabled: bool,
    offsets: SubjectOffsets,
    /// When set, ops are appended here (offsets pre-applied) instead of the
    /// shared pipeline; a merge spine splices them in later.
    buffer: Option<Arc<Mutex<Vec<TelemetryOp>>>>,
}

impl Default for SharedTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedTelemetry {
    /// Creates an enabled shared telemetry pipeline.
    pub fn new() -> Self {
        SharedTelemetry {
            inner: Arc::new(Mutex::new(Telemetry {
                tracer: Tracer::new(),
                metrics: Metrics::new(),
            })),
            enabled: true,
            offsets: SubjectOffsets::default(),
            buffer: None,
        }
    }

    /// Creates a pipeline that drops everything recorded into it.
    pub fn disabled() -> Self {
        SharedTelemetry {
            inner: Arc::new(Mutex::new(Telemetry {
                tracer: Tracer::disabled(),
                metrics: Metrics::new(),
            })),
            enabled: false,
            offsets: SubjectOffsets::default(),
            buffer: None,
        }
    }

    /// A handle onto the same underlying telemetry that remaps subject ids
    /// by `offsets` as records arrive. Used by federated sessions to give
    /// each cluster's layers a collision-free id space within one shared
    /// trace; zero offsets return an equivalent plain clone.
    pub fn with_subject_offsets(&self, offsets: SubjectOffsets) -> SharedTelemetry {
        SharedTelemetry {
            inner: Arc::clone(&self.inner),
            enabled: self.enabled,
            offsets,
            buffer: self.buffer.clone(),
        }
    }

    /// A handle onto the same underlying telemetry that *buffers* ops
    /// (offsets pre-applied) instead of writing them through, plus the
    /// [`TelemetryBuffer`] to splice them from. A parallel federated driver
    /// hands the buffered handle to one member's layers so worker threads
    /// never touch the shared pipeline mid-window; the merge spine replays
    /// op ranges via [`TelemetryBuffer::splice_into`] in deterministic
    /// order.
    pub fn buffered(&self, offsets: SubjectOffsets) -> (SharedTelemetry, TelemetryBuffer) {
        let ops = Arc::new(Mutex::new(Vec::new()));
        let handle = SharedTelemetry {
            inner: Arc::clone(&self.inner),
            enabled: self.enabled,
            offsets,
            buffer: Some(Arc::clone(&ops)),
        };
        (handle, TelemetryBuffer { ops })
    }

    /// True when records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a trace record.
    pub fn record(&self, time: SimTime, layer: &'static str, name: &'static str, subject: Subject) {
        if self.enabled {
            let subject = self.offsets.apply(subject);
            if let Some(buf) = &self.buffer {
                buf.lock()
                    .expect("telemetry buffer lock")
                    .push(TelemetryOp::Record(TraceRecord {
                        time,
                        layer,
                        name,
                        subject,
                    }));
            } else {
                self.inner
                    .lock()
                    .expect("telemetry lock")
                    .tracer
                    .record(time, layer, name, subject);
            }
        }
    }

    /// Appends a gauge sample at `time`.
    pub fn gauge(&self, name: &'static str, time: SimTime, value: f64) {
        if self.enabled {
            if let Some(buf) = &self.buffer {
                buf.lock()
                    .expect("telemetry buffer lock")
                    .push(TelemetryOp::Gauge(name, time, value));
            } else {
                self.inner
                    .lock()
                    .expect("telemetry lock")
                    .metrics
                    .gauge(name, time, value);
            }
        }
    }

    /// Increments a counter by one.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, name: &'static str, n: u64) {
        if self.enabled {
            if let Some(buf) = &self.buffer {
                buf.lock()
                    .expect("telemetry buffer lock")
                    .push(TelemetryOp::Add(name, n));
            } else {
                self.inner
                    .lock()
                    .expect("telemetry lock")
                    .metrics
                    .add(name, n);
            }
        }
    }

    /// A point-in-time copy of everything collected so far.
    pub fn snapshot(&self) -> Telemetry {
        self.inner.lock().expect("telemetry lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Tracer::new();
        t.record(
            SimTime::from_secs(1),
            "pilot",
            "unit_scheduled",
            Subject::Unit(0),
        );
        t.record(
            SimTime::from_secs(2),
            "pilot",
            "unit_started",
            Subject::Unit(0),
        );
        t.record(
            SimTime::from_secs(2),
            "entk",
            "unit_scheduled",
            Subject::Unit(0),
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.filter("pilot", "unit_scheduled").count(), 1);
        assert_eq!(
            t.time_of("pilot", "unit_started", Subject::Unit(0)),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(t.time_of("pilot", "unit_started", Subject::Unit(1)), None);
    }

    #[test]
    fn disabled_tracer_drops_records() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, "entk", "task_done", Subject::Task(0));
        assert!(t.is_empty());
    }

    #[test]
    fn jsonl_export_is_one_object_per_record() {
        let mut t = Tracer::new();
        t.record(
            SimTime::from_secs(1),
            "cluster",
            "job_queued",
            Subject::Job(3),
        );
        t.record(
            SimTime::from_secs(2),
            "cluster",
            "job_started",
            Subject::Job(3),
        );
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":1.000000,\"layer\":\"cluster\",\"event\":\"job_queued\",\"subject\":\"job.000003\"}"
        );
    }

    #[test]
    fn chrome_export_pairs_spans_and_balances_ends() {
        let mut t = Tracer::new();
        t.record(
            SimTime::from_secs(1),
            "cluster",
            "job_started",
            Subject::Job(1),
        );
        t.record(
            SimTime::from_secs(5),
            "cluster",
            "job_completed",
            Subject::Job(1),
        );
        // An end without a begin must be dropped, not emitted unbalanced.
        t.record(
            SimTime::from_secs(6),
            "cluster",
            "job_failed",
            Subject::Job(2),
        );
        t.record(
            SimTime::from_secs(7),
            "cluster",
            "node_crash",
            Subject::Node(0),
        );
        let json = t.to_chrome_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"ts\":1000000"));
    }

    #[test]
    fn shared_telemetry_collects_across_clones() {
        let shared = SharedTelemetry::new();
        let clone = shared.clone();
        shared.record(SimTime::ZERO, "entk", "session_start", Subject::Session);
        clone.record(
            SimTime::from_secs(1),
            "pilot",
            "pilot_submitted",
            Subject::Pilot(0),
        );
        clone.inc("entk.retries");
        clone.gauge("cluster.used_cores", SimTime::ZERO, 4.0);
        let snap = shared.snapshot();
        assert_eq!(snap.tracer.len(), 2);
        assert_eq!(snap.metrics.counter("entk.retries"), 1);
        assert_eq!(
            snap.metrics
                .series("cluster.used_cores")
                .unwrap()
                .points()
                .len(),
            1
        );
    }

    #[test]
    fn subject_offsets_remap_entity_ids() {
        let shared = SharedTelemetry::new();
        let shifted = shared.with_subject_offsets(SubjectOffsets {
            pilot: 100,
            unit: 1000,
            job: 0,
            node: 10,
        });
        shared.record(SimTime::ZERO, "pilot", "pilot_submitted", Subject::Pilot(0));
        shifted.record(SimTime::ZERO, "pilot", "pilot_submitted", Subject::Pilot(0));
        shifted.record(SimTime::ZERO, "pilot", "unit_submitted", Subject::Unit(2));
        shifted.record(SimTime::ZERO, "entk", "session_start", Subject::Session);
        let snap = shared.snapshot();
        let subjects: Vec<Subject> = snap.tracer.records().iter().map(|r| r.subject).collect();
        assert_eq!(
            subjects,
            vec![
                Subject::Pilot(0),
                Subject::Pilot(100),
                Subject::Unit(1002),
                Subject::Session,
            ]
        );
        assert!(SubjectOffsets::default().is_identity());
    }

    #[test]
    fn buffered_handle_holds_ops_until_spliced() {
        let shared = SharedTelemetry::new();
        let (member, buf) = shared.buffered(SubjectOffsets {
            pilot: 100,
            unit: 0,
            job: 0,
            node: 0,
        });
        member.record(SimTime::ZERO, "pilot", "pilot_submitted", Subject::Pilot(1));
        member.gauge("cluster.used_cores", SimTime::from_secs(1), 4.0);
        member.inc("pilot.units_done");
        // Nothing reaches the shared pipeline until the spine splices.
        assert!(shared.snapshot().tracer.is_empty());
        assert_eq!(buf.len(), 3);

        buf.splice_into(&shared, 0, 2);
        let snap = shared.snapshot();
        assert_eq!(snap.tracer.len(), 1);
        // Offsets were applied at record time, not splice time.
        assert_eq!(snap.tracer.records()[0].subject, Subject::Pilot(101));
        assert_eq!(
            snap.metrics
                .series("cluster.used_cores")
                .unwrap()
                .points()
                .len(),
            1
        );
        assert_eq!(snap.metrics.counter("pilot.units_done"), 0);

        buf.splice_into(&shared, 2, 3);
        assert_eq!(shared.snapshot().metrics.counter("pilot.units_done"), 1);

        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn buffered_handle_on_disabled_pipeline_buffers_nothing() {
        let shared = SharedTelemetry::disabled();
        let (member, buf) = shared.buffered(SubjectOffsets::default());
        member.record(SimTime::ZERO, "entk", "session_start", Subject::Session);
        member.inc("entk.retries");
        assert!(buf.is_empty());
        buf.splice_into(&shared, 0, 1);
        assert!(shared.snapshot().tracer.is_empty());
    }

    #[test]
    fn disabled_shared_telemetry_drops_everything() {
        let shared = SharedTelemetry::disabled();
        shared.record(SimTime::ZERO, "entk", "session_start", Subject::Session);
        shared.inc("entk.retries");
        let snap = shared.snapshot();
        assert!(snap.tracer.is_empty());
        assert_eq!(snap.metrics.counter("entk.retries"), 0);
    }
}
