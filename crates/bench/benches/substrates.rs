//! Micro-benchmarks of the substrate crates: the discrete-event engine, the
//! MD force loop (cell list vs naive), the analysis eigensolvers, and a
//! full-stack throughput case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    use entk_sim::{EventQueue, SimTime};
    let mut g = c.benchmark_group("sim_event_queue");
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, _, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_md_forces(c: &mut Criterion) {
    use entk_md::{alanine_dipeptide_surrogate, ForceField};
    let mut g = c.benchmark_group("md_forces");
    g.sample_size(20);
    for &n in &[256usize, 1024] {
        let sys = alanine_dipeptide_surrogate(n, 1);
        let ff = ForceField::default();
        g.bench_with_input(BenchmarkId::new("cell_list", n), &n, |b, _| {
            let mut forces = Vec::new();
            b.iter(|| black_box(ff.compute(&sys, &mut forces)))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            let mut forces = Vec::new();
            b.iter(|| black_box(ff.compute_naive(&sys, &mut forces)))
        });
    }
    g.finish();
}

fn bench_md_segment(c: &mut Criterion) {
    use entk_md::{alanine_dipeptide_surrogate, EngineFlavor, MdEngine};
    let mut g = c.benchmark_group("md_segment");
    g.sample_size(10);
    g.bench_function("langevin_100steps_256atoms", |b| {
        let engine = MdEngine::new(EngineFlavor::Amber);
        b.iter(|| {
            let mut sys = alanine_dipeptide_surrogate(256, 2);
            sys.thermalize(1.0, 3);
            black_box(engine.run(&mut sys, 100, 4))
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    use entk_analysis::{coco, jacobi_eigen, lsdmap, CocoConfig, LsdmapConfig, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);

    // Symmetric 48x48 eigendecomposition.
    let mut rng = StdRng::seed_from_u64(5);
    let n = 48;
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = rng.random::<f64>() - 0.5;
            m.set(i, j, v);
            m.set(j, i, v);
        }
    }
    g.bench_function("jacobi_eigen_48", |b| {
        b.iter(|| black_box(jacobi_eigen(&m)))
    });

    let frames: Vec<Vec<f64>> = (0..96)
        .map(|i| {
            let c = if i % 2 == 0 { 0.0 } else { 8.0 };
            (0..12).map(|k| c + ((i * k) % 7) as f64 * 0.1).collect()
        })
        .collect();
    g.bench_function("lsdmap_96_frames", |b| {
        b.iter(|| black_box(lsdmap(&frames, LsdmapConfig::default())))
    });
    g.bench_function("coco_96_frames", |b| {
        b.iter(|| black_box(coco(&frames, 8, CocoConfig::default())))
    });
    g.finish();
}

fn bench_wham(c: &mut Criterion) {
    use entk_analysis::wham;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut g = c.benchmark_group("wham");
    g.sample_size(10);
    let temps = [0.8, 1.0, 1.25, 1.5625];
    let samples: Vec<Vec<f64>> = temps
        .iter()
        .enumerate()
        .map(|(k, &t)| {
            let mut rng = StdRng::seed_from_u64(k as u64);
            (0..5000)
                .map(|_| {
                    (0..10)
                        .map(|_| {
                            let u1: f64 = 1.0 - rng.random::<f64>();
                            let u2: f64 = rng.random::<f64>();
                            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                            0.5 * t * z * z
                        })
                        .sum()
                })
                .collect()
        })
        .collect();
    g.bench_function("wham_4temps_20k_samples", |b| {
        b.iter(|| black_box(wham(&samples, &temps, 60, 200)))
    });
    g.finish();
}

fn bench_full_stack(c: &mut Criterion) {
    use entk_core::prelude::*;
    use serde_json::json;
    let mut g = c.benchmark_group("full_stack");
    g.sample_size(10);
    g.bench_function("bag_1000_tasks_256_cores", |b| {
        b.iter(|| {
            let config = ResourceConfig::new("xsede.comet", 256, SimDuration::from_secs(1_000_000));
            let mut pattern = BagOfTasks::new(1000, |_| {
                KernelCall::new("misc.sleep", json!({ "secs": 60.0 }))
            });
            black_box(run_simulated(config, SimulatedConfig::default(), &mut pattern).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_event_queue,
    bench_md_forces,
    bench_md_segment,
    bench_analysis,
    bench_wham,
    bench_full_stack
);
criterion_main!(substrates);
