//! Criterion benches: one group per paper figure plus the ablations, timing
//! the same code paths as the `bin/figN` harnesses at reduced scale so a
//! full `cargo bench` stays tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_patterns");
    g.sample_size(10);
    g.bench_function("char_count_three_patterns_24_192", |b| {
        b.iter(|| black_box(entk_bench::fig3(black_box(1))))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_kernels");
    g.sample_size(10);
    g.bench_function("gromacs_lsdmap_sal_24_192", |b| {
        b.iter(|| black_box(entk_bench::fig4(black_box(1))))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_ee_strong");
    g.sample_size(10);
    g.bench_function("ee_strong_scaled_div8", |b| {
        b.iter(|| black_box(entk_bench::fig5(black_box(1), 8)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_ee_weak");
    g.sample_size(10);
    g.bench_function("ee_weak_scaled_div8", |b| {
        b.iter(|| black_box(entk_bench::fig6(black_box(1), 8)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_sal_strong");
    g.sample_size(10);
    g.bench_function("sal_strong_scaled_div8", |b| {
        b.iter(|| black_box(entk_bench::fig7(black_box(1), 8)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_sal_weak");
    g.sample_size(10);
    g.bench_function("sal_weak_scaled_div8", |b| {
        b.iter(|| black_box(entk_bench::fig8(black_box(1), 8)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_mpi");
    g.sample_size(10);
    g.bench_function("mpi_cores_per_sim_scaled_div4", |b| {
        b.iter(|| black_box(entk_bench::fig9(black_box(1), 4)))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("exchange_topology", |b| {
        b.iter(|| black_box(entk_bench::ablation_exchange(black_box(1))))
    });
    g.bench_function("overhead_sensitivity", |b| {
        b.iter(|| black_box(entk_bench::ablation_overhead(black_box(1))))
    });
    g.bench_function("unit_scheduler", |b| {
        b.iter(|| black_box(entk_bench::ablation_scheduler(black_box(1))))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_ablations
);
criterion_main!(figures);
