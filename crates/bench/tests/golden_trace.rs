//! Golden trace fingerprints: five seeded sessions spanning the simulator's
//! feature surface (pipelines, simulation-analysis loops, failure injection,
//! multi-pilot strategies, multi-core MPI tasks) must export byte-identical
//! TRACE JSONL across refactors of the hot path. The pinned hashes were
//! recorded before the calendar-queue / arena-store overhaul and survived it
//! unchanged; any divergence here means a change altered simulated behaviour
//! (event order, timing, or RNG draws), not just its implementation.
//!
//! If a change *intentionally* alters traces (new event type, overhead model
//! change), re-record: run each scenario, print `fnv64(&jsonl)`, and update
//! the constants with a note in the commit message.

use entk_core::prelude::*;
use serde_json::json;

/// FNV-1a 64 over the exported JSONL — cheap, dependency-free, and stable.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Golden {
    fingerprint: u64,
    ttc: f64,
    bytes: usize,
}

fn check(label: &str, config: ResourceConfig, sim: SimulatedConfig, golden: Golden) {
    let mut pattern: Box<dyn ExecutionPattern + Send> = match label {
        "pipeline" => Box::new(EnsembleOfPipelines::new(48, 2, |_, s| {
            if s == 0 {
                KernelCall::new("misc.mkfile", json!({ "bytes": 1024 }))
            } else {
                KernelCall::new("misc.ccount", json!({ "bytes": 1024 }))
            }
        })),
        "sal" => Box::new(SimulationAnalysisLoop::new(
            2,
            32,
            |_, _| KernelCall::new("misc.mkfile", json!({ "bytes": 1024 })),
            |_, outs| {
                (0..outs.len().min(1))
                    .map(|_| KernelCall::new("misc.ccount", json!({ "bytes": 1024 })))
                    .collect()
            },
        )),
        "faults" | "pilots" => Box::new(BagOfTasks::new(
            if label == "faults" { 256 } else { 128 },
            |_| KernelCall::new("misc.sleep", json!({ "secs": 30.0 })),
        )),
        "mpi" => Box::new(BagOfTasks::new(96, |i| {
            let cores = [1usize, 4, 8][i % 3];
            KernelCall::new("misc.sleep", json!({ "secs": 30.0 })).with_cores(cores)
        })),
        _ => unreachable!("unknown golden scenario {label}"),
    };
    let (report, telemetry) =
        run_simulated_traced(config, sim, pattern.as_mut()).expect("golden run");
    let jsonl = telemetry.tracer.to_jsonl();
    assert_eq!(
        fnv64(&jsonl),
        golden.fingerprint,
        "{label}: trace fingerprint diverged from golden \
         (got {:#018x}, {} bytes, ttc {:.6})",
        fnv64(&jsonl),
        jsonl.len(),
        report.ttc.as_secs_f64()
    );
    assert_eq!(jsonl.len(), golden.bytes, "{label}: trace byte count");
    assert!(
        (report.ttc.as_secs_f64() - golden.ttc).abs() < 1e-6,
        "{label}: ttc {:.6} != golden {:.6}",
        report.ttc.as_secs_f64(),
        golden.ttc
    );
}

fn walltime() -> SimDuration {
    SimDuration::from_secs(10_000_000)
}

#[test]
fn golden_pipeline() {
    check(
        "pipeline",
        ResourceConfig::new("xsede.comet", 48, walltime()),
        SimulatedConfig {
            seed: 2016,
            ..Default::default()
        },
        Golden {
            fingerprint: 0x45e79e27d270700b,
            ttc: 55.249845,
            bytes: 69534,
        },
    );
}

#[test]
fn golden_simulation_analysis_loop() {
    check(
        "sal",
        ResourceConfig::new("xsede.comet", 64, walltime()),
        SimulatedConfig {
            seed: 7,
            ..Default::default()
        },
        Golden {
            fingerprint: 0x966b1b4dc88bc543,
            ttc: 47.992896,
            bytes: 43404,
        },
    );
}

#[test]
fn golden_fault_injection() {
    check(
        "faults",
        ResourceConfig::new("xsede.comet", 128, walltime()),
        SimulatedConfig {
            seed: 2016,
            unit_failure_rate: 0.3,
            fault: entk_core::FaultConfig::retries(5),
            ..Default::default()
        },
        Golden {
            fingerprint: 0x330e592039d3df3b,
            ttc: 240.352503,
            bytes: 239293,
        },
    );
}

#[test]
fn golden_multi_pilot() {
    check(
        "pilots",
        ResourceConfig::new("xsede.comet", 128, walltime()),
        SimulatedConfig {
            seed: 2016,
            pilot_strategy: entk_core::PilotStrategy::split(4),
            ..Default::default()
        },
        Golden {
            fingerprint: 0xff7dfb14524375a5,
            ttc: 83.152802,
            bytes: 84122,
        },
    );
}

#[test]
fn golden_multi_core_tasks() {
    check(
        "mpi",
        ResourceConfig::new("xsede.comet", 48, walltime()),
        SimulatedConfig {
            seed: 2016,
            ..Default::default()
        },
        Golden {
            fingerprint: 0x397cd71986c44b56,
            ttc: 324.708114,
            bytes: 62329,
        },
    );
}
