//! Resilience sweep: what fault injection costs and what retries buy back.
//!
//! The sweep crosses two execution patterns (ensemble of pipelines,
//! simulation-analysis loop) with a grid of injected task-failure rates and
//! retry budgets, and reports TTC inflation, terminally failed tasks,
//! recovered tasks, resubmission counts, and time lost to failures. Every
//! point is deterministic in its seed: running the sweep twice with the
//! same seed yields byte-identical rows, and a zero-rate fault profile is
//! indistinguishable from no profile at all (the injector makes no RNG
//! draws it doesn't need). The `resilience` binary asserts both properties
//! and CI runs it at reduced scale.

use crate::figures::Row;
use crate::sweep::SweepRunner;
use entk_core::prelude::*;
use entk_sim::Dist;
use serde_json::json;

/// Injected task-failure rates the sweep crosses.
pub const RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.3];
/// Retry budgets the sweep crosses.
pub const RETRIES: [u32; 3] = [0, 2, 8];
/// Pattern kinds the sweep runs.
pub const PATTERNS: [&str; 2] = ["eop", "sal"];
/// Retry budget of every federated resilience point.
pub const FED_RETRIES: u32 = 5;
/// Mean time between node crashes on the crash-heavy federation member.
pub const FED_CRASH_MTBF_SECS: f64 = 240.0;

/// A generous pilot wall time so experiments never hit the limit.
fn walltime() -> SimDuration {
    SimDuration::from_secs(10_000_000)
}

fn pattern_for(kind: &str, scale: usize) -> Box<dyn ExecutionPattern + Send> {
    let scale = scale.max(1);
    match kind {
        "eop" => Box::new(
            EnsembleOfPipelines::new((64 / scale).max(8), 2, |_, s| {
                KernelCall::new(
                    "misc.sleep",
                    json!({ "secs": if s == 0 { 30.0 } else { 10.0 } }),
                )
            })
            .with_stage_labels(vec!["simulate".into(), "reduce".into()]),
        ),
        "sal" => Box::new(SimulationAnalysisLoop::new(
            2,
            (32 / scale).max(4),
            |_, _| KernelCall::new("misc.sleep", json!({ "secs": 30.0 })),
            |_, outs| {
                vec![KernelCall::new(
                    "misc.sleep",
                    json!({ "secs": 5.0 + outs.len() as f64 }),
                )]
            },
        )),
        other => panic!("unknown pattern kind {other:?}"),
    }
}

/// Runs one sweep point and flattens its report into a row.
///
/// `inject` selects whether the platform carries a [`FaultProfile`] at all;
/// with `inject = false` the `rate` must be zero and the run is the
/// fault-free baseline the zero-rate injected rows must match exactly.
pub fn resilience_point(
    seed: u64,
    scale: usize,
    kind: &str,
    rate: f64,
    retries: u32,
    inject: bool,
) -> Row {
    assert!(inject || rate == 0.0, "baseline points must be fault-free");
    let mut pattern = pattern_for(kind, scale);
    let config = ResourceConfig::new("xsede.comet", 32, walltime());
    let sim = SimulatedConfig {
        seed,
        fault: FaultConfig::retries(retries)
            .with_backoff(BackoffPolicy::exponential(5.0))
            .graceful(),
        fault_profile: inject.then(|| FaultProfile::seeded(seed ^ 0xFA).with_task_failures(rate)),
        ..Default::default()
    };
    let (report, telemetry) =
        run_simulated_traced(config, sim, pattern.as_mut()).expect("resilience run");
    // Fault-heavy runs are the hardest case for the trace-derived overhead
    // reconstruction (retry backoff, degradation); cross-check every point.
    let cc = cross_check(&report, &telemetry.tracer);
    assert!(
        cc.within(1e-6),
        "resilience {kind} rate={rate} retries={retries}: \
         trace/accounting divergence ({:.3e}s)",
        cc.max_abs_error_secs
    );
    Row::new(format!("{kind}/retries={retries}"), rate)
        .with("ttc", report.ttc.as_secs_f64())
        .with("failed", report.failed_tasks as f64)
        .with("recovered", report.recovered_tasks() as f64)
        .with("resubmissions", report.total_retries as f64)
        .with("failure_lost", report.overheads.failure_lost.as_secs_f64())
        .with("partial", if report.partial { 1.0 } else { 0.0 })
        .with(
            "retries_counter",
            telemetry.metrics.counter("entk.retries") as f64,
        )
        .with_trace(crate::figures::trace_fingerprint(&telemetry.tracer))
}

/// The full resilience sweep through the environment's [`SweepRunner`].
pub fn resilience_sweep(seed: u64, scale: usize) -> Vec<Row> {
    resilience_sweep_with(&SweepRunner::from_env(), seed, scale)
}

/// [`resilience_sweep`] through an explicit [`SweepRunner`].
pub fn resilience_sweep_with(runner: &SweepRunner, seed: u64, scale: usize) -> Vec<Row> {
    let points: Vec<(&str, f64, u32)> = PATTERNS
        .iter()
        .flat_map(|&kind| {
            RATES
                .iter()
                .flat_map(move |&rate| RETRIES.iter().map(move |&retries| (kind, rate, retries)))
        })
        .collect();
    runner.run_weighted(
        points
            .into_iter()
            // Higher rates with bigger budgets resimulate more attempts.
            .map(|p| (1.0 + p.1 * (1 + p.2) as f64, p))
            .collect(),
        |(kind, rate, retries)| vec![resilience_point(seed, scale, kind, rate, retries, true)],
    )
}

/// Fault-free baseline rows: one per pattern × retry budget, with **no**
/// fault profile installed. The sweep's rate-0 rows must equal these
/// exactly — the acceptance check that a zero-rate injector is free.
pub fn baseline_rows(seed: u64, scale: usize) -> Vec<Row> {
    PATTERNS
        .iter()
        .flat_map(|&kind| {
            RETRIES
                .iter()
                .map(move |&retries| resilience_point(seed, scale, kind, 0.0, retries, false))
        })
        .collect()
}

/// One federated two-cluster resilience point: `xsede.comet` stays clean
/// while `xsede.stampede` crashes nodes (a deterministic early crash plus a
/// Poisson process at [`FED_CRASH_MTBF_SECS`]) when `crash` is set.
///
/// The session late-binds every unit to the member with the most free
/// capacity at submission time, so when the crash-heavy member loses its
/// node the work drains to the healthy cluster instead of queueing behind
/// dead cores; the row records how much TTC the degraded member still
/// costs relative to the clean federation (same seed, same pattern,
/// `crash = false`). Like fig3/fig4, the ensemble size is fixed — the
/// sweep patterns at scale 1, which oversubscribes the 32-core federation
/// so losing a member shows up in TTC — because the point is the capacity
/// story, not the scaling story.
pub fn federated_point(seed: u64, kind: &str, crash: bool) -> Row {
    let mut pattern = pattern_for(kind, 1);
    let clean = ClusterSpec::new("xsede.comet", 16, walltime());
    let mut crashy = ClusterSpec::new("xsede.stampede", 16, walltime());
    if crash {
        // The 16-core stampede slice is a single 16-core node, so the
        // scheduled crash takes the whole member down early in the run.
        crashy.fault_profile = Some(
            FaultProfile::seeded(seed ^ 0xC4A5)
                .with_crash_at(40.0, 0)
                .with_node_crashes(FED_CRASH_MTBF_SECS, Dist::Constant(300.0)),
        );
    }
    let config = FederatedConfig {
        seed,
        fault: FaultConfig::retries(FED_RETRIES)
            .with_backoff(BackoffPolicy::exponential(5.0))
            .graceful(),
        clusters: vec![clean, crashy],
        ..Default::default()
    };
    let (report, telemetry) =
        run_federated_traced(config, pattern.as_mut()).expect("federated resilience run");
    // The interleaved multi-cluster trace must reconstruct the same
    // overhead breakdown the session accounted — same bar as single-cluster.
    let cc = cross_check(&report, &telemetry.tracer);
    assert!(
        cc.within(1e-6),
        "federated {kind} crash={crash}: trace/accounting divergence ({:.3e}s)",
        cc.max_abs_error_secs
    );
    Row::new(
        format!("fed/{kind}"),
        if crash { FED_CRASH_MTBF_SECS } else { 0.0 },
    )
    .with("ttc", report.ttc.as_secs_f64())
    .with("failed", report.failed_tasks as f64)
    .with("recovered", report.recovered_tasks() as f64)
    .with("resubmissions", report.total_retries as f64)
    .with("failure_lost", report.overheads.failure_lost.as_secs_f64())
    .with("partial", if report.partial { 1.0 } else { 0.0 })
    .with_trace(crate::figures::trace_fingerprint(&telemetry.tracer))
}

/// The federated resilience rows: each pattern run on a clean two-cluster
/// federation and again with one crash-heavy member, at a fixed
/// [`FED_RETRIES`] budget. The TTC delta between the paired rows is the
/// cost of the degraded member under cross-cluster late binding.
pub fn federated_resilience_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    let points: Vec<(&str, bool)> = PATTERNS
        .iter()
        .flat_map(|&kind| [false, true].map(move |crash| (kind, crash)))
        .collect();
    runner.run_weighted(
        points
            .into_iter()
            // Crash-heavy points resimulate retried attempts.
            .map(|p| (if p.1 { 2.0 } else { 1.0 }, p))
            .collect(),
        |(kind, crash)| vec![federated_point(seed, kind, crash)],
    )
}

/// [`federated_resilience_with`] through the environment's [`SweepRunner`].
pub fn federated_resilience(seed: u64) -> Vec<Row> {
    federated_resilience_with(&SweepRunner::from_env(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_rows_match_no_injector_baseline() {
        for &kind in &PATTERNS {
            let injected = resilience_point(7, 16, kind, 0.0, 2, true);
            let baseline = resilience_point(7, 16, kind, 0.0, 2, false);
            assert_eq!(injected, baseline, "{kind}: zero-rate injector not free");
        }
    }

    #[test]
    fn failures_inflate_ttc_and_retries_recover_tasks() {
        let faulty = resilience_point(7, 16, "eop", 0.3, 8, true);
        let clean = resilience_point(7, 16, "eop", 0.0, 8, true);
        assert!(faulty.value("ttc").unwrap() > clean.value("ttc").unwrap());
        assert!(faulty.value("recovered").unwrap() > 0.0);
        assert!(faulty.value("failure_lost").unwrap() > 0.0);
        assert_eq!(clean.value("failed").unwrap(), 0.0);
        assert_eq!(clean.value("partial").unwrap(), 0.0);
    }

    #[test]
    fn crash_heavy_member_slows_but_does_not_fail_the_federation() {
        let clean = federated_point(7, "eop", false);
        let crashy = federated_point(7, "eop", true);
        // Late binding plus retries absorb the degraded member entirely...
        assert_eq!(crashy.value("failed").unwrap(), 0.0);
        assert_eq!(crashy.value("partial").unwrap(), 0.0);
        // ...but running on the surviving member's capacity costs TTC.
        assert!(crashy.value("ttc").unwrap() > clean.value("ttc").unwrap());
        // Federated runs replay bit-identically in their seed.
        assert_eq!(crashy, federated_point(7, "eop", true));
    }

    #[test]
    fn sweep_replays_identically_for_one_seed() {
        let runner = SweepRunner::serial();
        let a = resilience_sweep_with(&runner, 11, 32);
        let b = resilience_sweep_with(&runner, 11, 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), PATTERNS.len() * RATES.len() * RETRIES.len());
    }
}
