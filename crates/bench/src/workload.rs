//! Fig. 11 — the workload figure this reproduction adds beyond the paper's
//! evaluation: latency percentiles, queue depth, and makespan of an
//! open-loop session stream under admission contention.
//!
//! The sweep serves the in-repo synthetic trace (so CI needs no external
//! data) at each admission-slot width in [`FIG11_SLOTS`], on the simulated
//! and federated backends. One point = one served stream; its report
//! carries per-tenant p50/p95/p99, queue-depth peak/mean, makespan, and
//! the largest per-session cross-check error (asserted `<= 1e-6` by the
//! bench binary and smoke tests). Everything is deterministic, so
//! `WORKLOAD.json` and the stream JSONL are byte-identical under replay.

use entk_core::EntkError;
use entk_workload::{
    AdmissionPolicy, HotTenantTrace, ServeStats, ServiceConfig, ServiceEngine, StreamBackend,
    SyntheticTrace, WorkloadConfig, WorkloadGenerator, WorkloadReport,
};
use serde_json::json;

/// Admission-slot axis of the fig11 sweep.
pub const FIG11_SLOTS: &[usize] = &[1, 2, 4, 8];

/// Default session count of the fig11 stream.
pub const FIG11_SESSIONS: usize = 24;

/// Default tenant population of the fig11 stream.
pub const FIG11_TENANTS: u64 = 8;

/// Fair-share usage half-life of the fig11 fair legs and the fairness
/// ablation, virtual seconds.
pub const FIG11_HALF_LIFE_SECS: f64 = 600.0;

/// One served point of the fig11 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPoint {
    /// Backend label (`simulated` or `federated:N`).
    pub backend: String,
    /// Admission policy label (`fifo` or `fair-share`).
    pub policy: String,
    /// Admission slots of the point.
    pub slots: usize,
    /// The served stream's report.
    pub report: WorkloadReport,
    /// The served stream's JSONL (one line per session).
    pub jsonl: String,
}

impl WorkloadPoint {
    /// Deterministic JSON projection of the point for `WORKLOAD.json` —
    /// no wall-clock values, so the file is byte-identical under replay.
    pub fn to_json(&self) -> serde_json::Value {
        let r = &self.report;
        json!({
            "backend": self.backend,
            "policy": self.policy,
            "slots": self.slots,
            "sessions": r.sessions,
            "tenants": r.tenants,
            "total_tasks": r.total_tasks,
            "total_events": r.total_events,
            "makespan_secs": r.makespan_secs,
            "latency_p50": r.latency.p50,
            "latency_p95": r.latency.p95,
            "latency_p99": r.latency.p99,
            "queue_depth_peak": r.queue_depth_peak,
            "queue_depth_mean": r.queue_depth_mean,
            "max_cross_check_err_secs": r.max_cross_check_err_secs,
            "stream_fp": r.stream_fp,
            "per_tenant": r.per_tenant,
        })
    }
}

/// Runs the fig11 sweep on one backend under one admission policy: the
/// synthetic trace served at every slot width. The arrivals are generated
/// once; service times are evaluated inside the service's own parallel
/// fan-out, so points run serially here without leaving cores idle.
pub fn fig11_with_policy(
    seed: u64,
    sessions: usize,
    tenants: u64,
    backend: StreamBackend,
    policy: AdmissionPolicy,
) -> Result<Vec<WorkloadPoint>, EntkError> {
    let arrivals = SyntheticTrace::new(seed, sessions, tenants).generate()?;
    let mut points = Vec::with_capacity(FIG11_SLOTS.len());
    for &slots in FIG11_SLOTS {
        let stream = WorkloadConfig {
            seed,
            slots,
            backend,
            ..WorkloadConfig::default()
        };
        let config = ServiceConfig {
            policy,
            ..ServiceConfig::fifo(stream)
        };
        let out = ServiceEngine::new(config, &arrivals)?.run()?;
        points.push(WorkloadPoint {
            backend: backend.label(),
            policy: policy.label().to_string(),
            slots,
            report: out.report,
            jsonl: out.jsonl,
        });
    }
    Ok(points)
}

/// The FIFO fig11 sweep (the historical default).
pub fn fig11_with(
    seed: u64,
    sessions: usize,
    tenants: u64,
    backend: StreamBackend,
) -> Result<Vec<WorkloadPoint>, EntkError> {
    fig11_with_policy(seed, sessions, tenants, backend, AdmissionPolicy::Fifo)
}

/// The fifo-vs-fair-share fairness ablation: the hot-tenant trace (tenant
/// 0 bursting over a light background population) served under both
/// admission policies on the same arrivals and slot width, so the
/// per-tenant p99 shift is attributable to the policy alone.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessAblation {
    /// The stream served FIFO.
    pub fifo: WorkloadReport,
    /// The same stream served fair-share.
    pub fair: WorkloadReport,
}

impl FairnessAblation {
    /// p99 latency of the hot tenant (id 0) in a report.
    pub fn hot_p99(r: &WorkloadReport) -> f64 {
        r.per_tenant
            .iter()
            .find(|t| t.tenant == 0)
            .map(|t| t.p99)
            .unwrap_or(0.0)
    }

    /// Worst p99 latency across the light tenants (ids >= 1).
    pub fn light_worst_p99(r: &WorkloadReport) -> f64 {
        r.per_tenant
            .iter()
            .filter(|t| t.tenant >= 1)
            .map(|t| t.p99)
            .fold(0.0, f64::max)
    }

    /// Deterministic JSON projection for `WORKLOAD.json`.
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "trace": "hot-tenant",
            "half_life_secs": FIG11_HALF_LIFE_SECS,
            "fifo": {
                "hot_p99": Self::hot_p99(&self.fifo),
                "light_worst_p99": Self::light_worst_p99(&self.fifo),
                "per_tenant": self.fifo.per_tenant,
                "stream_fp": self.fifo.stream_fp,
            },
            "fair": {
                "hot_p99": Self::hot_p99(&self.fair),
                "light_worst_p99": Self::light_worst_p99(&self.fair),
                "per_tenant": self.fair.per_tenant,
                "stream_fp": self.fair.stream_fp,
            },
        })
    }
}

/// Serves the hot-tenant trace under FIFO and fair-share admission on two
/// slots and returns both reports.
pub fn fairness_ablation_with(
    seed: u64,
    sessions: usize,
    tenants: u64,
) -> Result<FairnessAblation, EntkError> {
    let arrivals = HotTenantTrace::new(seed, sessions, tenants).generate()?;
    let stream = WorkloadConfig {
        seed,
        slots: 2,
        ..WorkloadConfig::default()
    };
    let fifo = ServiceEngine::new(ServiceConfig::fifo(stream.clone()), &arrivals)?.run()?;
    let fair = ServiceEngine::new(
        ServiceConfig::fair_share(stream, FIG11_HALF_LIFE_SECS),
        &arrivals,
    )?
    .run()?;
    Ok(FairnessAblation {
        fifo: fifo.report,
        fair: fair.report,
    })
}

/// Admission slots of the serve-scale sweep: wide enough that the
/// synthetic arrival rate keeps the FIFO queue bounded, so resident state
/// is governed by the look-ahead window rather than the stream length —
/// the configuration the bounded-memory claim is measured under.
pub const SERVE_SCALE_SLOTS: usize = 64;

/// Tenant population of the serve-scale sweep.
pub const SERVE_SCALE_TENANTS: u64 = 64;

/// One point of the out-of-core serve-scale sweep: one synthetic stream
/// of `sessions` sessions served end-to-end through
/// [`ServiceEngine::run_streaming`] into a null sink.
#[derive(Debug, Clone)]
pub struct ServeScalePoint {
    /// Backend label (`simulated` or `federated:N`).
    pub backend: String,
    /// Stream length of this point.
    pub sessions: usize,
    /// Host wall-clock of the serve, seconds.
    pub wall_secs: f64,
    /// Simulator events per host second.
    pub events_per_sec: f64,
    /// Process peak RSS (`VmHWM`) sampled right after the serve, KiB;
    /// `None` off Linux.
    pub vm_hwm_kb: Option<u64>,
    /// The serve's scalar stats (deterministic; carries the stream
    /// fingerprint and the engine's own peak-residency witness).
    pub stats: ServeStats,
}

impl ServeScalePoint {
    /// JSON projection for `WORKLOAD.json`. Unlike the fig11 points this
    /// carries wall-clock and RSS values, which legitimately differ
    /// between runs; `stream_fp` and the session counts stay replayable.
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "backend": self.backend,
            "sessions": self.sessions,
            "wall_secs": self.wall_secs,
            "events_per_sec": self.events_per_sec,
            "vm_hwm_kb": self.vm_hwm_kb,
            "peak_resident_sessions": self.stats.peak_resident_sessions,
            "total_events": self.stats.total_events,
            "jsonl_bytes": self.stats.jsonl_bytes,
            "stream_fp": self.stats.stream_fp,
            "ok_sessions": self.stats.ok_sessions,
            "makespan_secs": self.stats.makespan_secs,
        })
    }
}

/// Serves one synthetic stream of `sessions` sessions out-of-core and
/// measures it. The JSONL goes to a null sink: the point measures engine
/// throughput and resident footprint, not disk bandwidth.
pub fn serve_scale_point(
    seed: u64,
    sessions: usize,
    backend: StreamBackend,
) -> Result<ServeScalePoint, EntkError> {
    let synth = SyntheticTrace::new(seed, sessions, SERVE_SCALE_TENANTS);
    let config = ServiceConfig::fifo(WorkloadConfig {
        seed,
        slots: SERVE_SCALE_SLOTS,
        backend,
        ..WorkloadConfig::default()
    });
    let t0 = std::time::Instant::now();
    let mut sink = std::io::sink();
    let stats = ServiceEngine::new(config, synth.stream()?)?.run_streaming(&mut sink)?;
    let wall_secs = t0.elapsed().as_secs_f64();
    Ok(ServeScalePoint {
        backend: backend.label(),
        sessions,
        wall_secs,
        events_per_sec: stats.total_events as f64 / wall_secs.max(1e-12),
        vm_hwm_kb: vm_hwm_kb(),
        stats,
    })
}

/// The session-count axis of the serve-scale sweep: decades from 10^3 up
/// to `max_sessions`, with `max_sessions` itself appended when it is not
/// a decade point.
pub fn serve_scale_axis(max_sessions: usize) -> Vec<usize> {
    let mut axis = Vec::new();
    let mut n = 1000usize;
    while n <= max_sessions {
        axis.push(n);
        n = n.saturating_mul(10);
    }
    if axis.last() != Some(&max_sessions) && max_sessions >= 1000 {
        axis.push(max_sessions);
    }
    axis
}

/// Process peak resident set size (`VmHWM` from `/proc/self/status`),
/// KiB. Monotone non-decreasing over the process lifetime, which is what
/// makes the ascending serve-scale sweep's flat-memory comparison valid.
pub fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Concatenated stream JSONL of a sweep leg, each line prefixed with its
/// point's backend and slot width so one file captures the whole leg.
pub fn leg_jsonl(points: &[WorkloadPoint]) -> String {
    let mut out = String::new();
    for p in points {
        for line in p.jsonl.lines() {
            out.push_str(&format!(
                "{{\"backend\":\"{}\",\"slots\":{},{}\n",
                p.backend,
                p.slots,
                &line[1..], // splice into the session object
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_replays_identically() {
        let a = fig11_with(3, 8, 4, StreamBackend::Simulated).unwrap();
        let b = fig11_with(3, 8, 4, StreamBackend::Simulated).unwrap();
        assert_eq!(a, b);
        assert_eq!(leg_jsonl(&a), leg_jsonl(&b));
    }

    #[test]
    fn fig11_points_honour_the_cross_check_budget() {
        for p in fig11_with(5, 6, 3, StreamBackend::Federated { members: 2 }).unwrap() {
            assert!(p.report.max_cross_check_err_secs <= 1e-6);
            assert_eq!(p.report.backend, "federated:2");
        }
    }

    #[test]
    fn fig11_latency_decreases_with_slots() {
        let points = fig11_with(7, 10, 4, StreamBackend::Simulated).unwrap();
        assert_eq!(points.len(), FIG11_SLOTS.len());
        for w in points.windows(2) {
            assert!(w[1].report.latency.p99 <= w[0].report.latency.p99);
        }
    }

    #[test]
    fn fig11_policies_share_arrivals_but_not_admission_order() {
        let fifo =
            fig11_with_policy(3, 8, 4, StreamBackend::Simulated, AdmissionPolicy::Fifo).unwrap();
        let fair = fig11_with_policy(
            3,
            8,
            4,
            StreamBackend::Simulated,
            AdmissionPolicy::FairShare {
                half_life_secs: FIG11_HALF_LIFE_SECS,
            },
        )
        .unwrap();
        for (a, b) in fifo.iter().zip(&fair) {
            assert_eq!(a.policy, "fifo");
            assert_eq!(b.policy, "fair-share");
            assert_eq!(a.report.sessions, b.report.sessions);
            assert_eq!(a.report.total_tasks, b.report.total_tasks);
        }
    }

    #[test]
    fn fairness_ablation_replays_and_spares_light_tenants() {
        let a = fairness_ablation_with(21, 16, 4).unwrap();
        let b = fairness_ablation_with(21, 16, 4).unwrap();
        assert_eq!(a, b);
        assert!(
            FairnessAblation::light_worst_p99(&a.fair)
                <= FairnessAblation::light_worst_p99(&a.fifo)
        );
        assert_eq!(a.fifo.sessions, a.fair.sessions);
    }

    #[test]
    fn leg_jsonl_lines_are_valid_json() {
        let points = fig11_with(2, 4, 2, StreamBackend::Simulated).unwrap();
        let jsonl = leg_jsonl(&points);
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["backend"].as_str().is_some());
            assert!(v["session"].as_u64().is_some());
        }
    }
}
