//! Workloads and runners regenerating every figure of the paper's
//! evaluation (§IV). Each `figN` function returns the same series the paper
//! plots; the `bin/figN` harnesses print them, the criterion benches time
//! the underlying code paths, and integration tests assert their shape.

use crate::sweep::SweepRunner;
use entk_core::prelude::*;
use entk_core::ExecutionReport;
use serde::Serialize;
use serde_json::json;
use std::time::Instant;

/// A generous pilot wall time so experiments never hit the limit.
fn walltime() -> SimDuration {
    SimDuration::from_secs(10_000_000)
}

/// FNV-1a 64 over the trace's JSONL export, split into two exactly
/// f64-representable u32 halves so a fingerprint can ride in [`Row`]
/// values. Identical traces ⇒ identical fingerprints, so the bench
/// binary's serial-vs-parallel row comparison covers traces too.
pub(crate) fn trace_fingerprint(tracer: &Tracer) -> (f64, f64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tracer.to_jsonl().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (f64::from((h >> 32) as u32), f64::from(h as u32))
}

/// Runs one simulated experiment with tracing on, asserts that the
/// trace-derived overhead breakdown matches the accounted one to
/// microsecond precision, and returns the report with the trace
/// fingerprint. All figure points go through here, so every bench run
/// cross-validates the accounting against the trace pipeline.
fn run_checked(
    config: ResourceConfig,
    sim: SimulatedConfig,
    pattern: &mut dyn ExecutionPattern,
    what: &str,
) -> (ExecutionReport, (f64, f64)) {
    let (report, telemetry) =
        run_simulated_traced(config, sim, pattern).unwrap_or_else(|e| panic!("{what}: {e}"));
    let cc = cross_check(&report, &telemetry.tracer);
    assert!(
        cc.within(1e-6),
        "{what}: trace-derived overheads diverge from accounted \
         (max err {:.3e}s)\n  derived:   {:?}\n  accounted: {:?}",
        cc.max_abs_error_secs,
        cc.derived,
        cc.accounted,
    );
    (report, trace_fingerprint(&telemetry.tracer))
}

/// One row of a figure's data.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Series / subplot label.
    pub series: String,
    /// X value (tasks, cores, or cores-per-simulation).
    pub x: f64,
    /// Named Y values in seconds.
    pub values: Vec<(String, f64)>,
}

impl Row {
    pub(crate) fn new(series: impl Into<String>, x: f64) -> Self {
        Row {
            series: series.into(),
            x,
            values: Vec::new(),
        }
    }

    pub(crate) fn with(mut self, name: impl Into<String>, v: f64) -> Self {
        self.values.push((name.into(), v));
        self
    }

    /// Y value by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Appends the session's trace fingerprint, making row equality imply
    /// trace equality.
    pub(crate) fn with_trace(self, fp: (f64, f64)) -> Self {
        self.with("trace_fp_hi", fp.0).with("trace_fp_lo", fp.1)
    }
}

/// Prints rows in a stable whitespace-separated format.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("# {title}");
    for row in rows {
        let mut line = format!("series={} x={}", row.series, row.x);
        for (name, v) in &row.values {
            line.push_str(&format!(" {name}={v:.3}"));
        }
        println!("{line}");
    }
}

fn common_rows(series: &str, x: f64, report: &ExecutionReport) -> Row {
    Row::new(series, x)
        .with("ttc", report.ttc.as_secs_f64())
        .with("exec_time", report.exec_time().as_secs_f64())
        .with("core_overhead", report.overheads.core.as_secs_f64())
        .with("pattern_overhead", report.overheads.pattern.as_secs_f64())
        .with(
            "resource_wait",
            report.overheads.resource_wait.as_secs_f64(),
        )
}

// ---------------------------------------------------------------- Figure 3

/// The char-count application under one of the three patterns.
fn char_count_pattern(kind: &str, n: usize) -> Box<dyn ExecutionPattern + Send> {
    let mk = |_p: usize| KernelCall::new("misc.mkfile", json!({ "bytes": 1024 }));
    match kind {
        "pipeline" => Box::new(
            EnsembleOfPipelines::new(n, 2, move |_, s| {
                if s == 0 {
                    KernelCall::new("misc.mkfile", json!({ "bytes": 1024 }))
                } else {
                    KernelCall::new("misc.ccount", json!({ "bytes": 1024 }))
                }
            })
            .with_stage_labels(vec!["mkfile".into(), "ccount".into()]),
        ),
        "sal" => Box::new(SimulationAnalysisLoop::new(
            1,
            n,
            move |_, p| mk(p),
            move |_, outs| {
                (0..outs.len())
                    .map(|_| KernelCall::new("misc.ccount", json!({ "bytes": 1024 })))
                    .collect()
            },
        )),
        "ee" => Box::new(EnsembleExchange::new(
            n,
            1,
            TemperatureLadder::geometric(n, 1.0, 2.0),
            move |p, _, _| mk(p),
        )),
        other => panic!("unknown pattern kind {other:?}"),
    }
}

/// Fig. 3: char-count app with all three patterns on Comet, tasks = cores ∈
/// {24, 48, 96, 192}; per-pattern execution time plus the EnTK overhead
/// decomposition.
pub fn fig3(seed: u64) -> Vec<Row> {
    fig3_with(&SweepRunner::from_env(), seed)
}

/// [`fig3`] through an explicit [`SweepRunner`].
pub fn fig3_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    let points: Vec<(f64, (usize, &str))> = [24usize, 48, 96, 192]
        .iter()
        .flat_map(|&n| {
            ["pipeline", "sal", "ee"]
                .into_iter()
                .map(move |kind| (n as f64, (n, kind)))
        })
        .collect();
    runner.run_weighted(points, |(n, kind)| {
        let mut pattern = char_count_pattern(kind, n);
        let config = ResourceConfig::new("xsede.comet", n, walltime());
        let sim = SimulatedConfig {
            seed: seed ^ n as u64,
            ..Default::default()
        };
        let (report, fp) = run_checked(config, sim, pattern.as_mut(), "fig3");
        vec![common_rows(kind, n as f64, &report).with_trace(fp)]
    })
}

// ---------------------------------------------------------------- Figure 4

/// Fig. 4: Gromacs + LSDMap via SAL on Comet, tasks = cores ∈ {24..192} —
/// validates that swapping kernels leaves EnTK overheads unchanged.
pub fn fig4(seed: u64) -> Vec<Row> {
    fig4_with(&SweepRunner::from_env(), seed)
}

/// [`fig4`] through an explicit [`SweepRunner`].
pub fn fig4_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    let points: Vec<(f64, usize)> = [24usize, 48, 96, 192]
        .iter()
        .map(|&n| (n as f64, n))
        .collect();
    runner.run_weighted(points, |n| {
        let mut pattern = SimulationAnalysisLoop::new(
            1,
            n,
            |_, i| {
                KernelCall::new(
                    "md.gromacs",
                    json!({ "steps": 300, "n_atoms": 2881, "seed": i }),
                )
            },
            move |_, outs| {
                vec![KernelCall::new(
                    "ana.lsdmap",
                    json!({ "n_sims": outs.len() }),
                )]
            },
        );
        let config = ResourceConfig::new("xsede.comet", n, walltime());
        let sim = SimulatedConfig {
            seed: seed ^ (n as u64) << 1,
            ..Default::default()
        };
        let (report, fp) = run_checked(config, sim, &mut pattern, "fig4");
        vec![common_rows("gromacs-lsdmap", n as f64, &report)
            .with(
                "simulation_time",
                report.stage_time("simulation").as_secs_f64(),
            )
            .with("analysis_time", report.stage_time("analysis").as_secs_f64())
            .with_trace(fp)]
    })
}

// ----------------------------------------------------------- Figures 5 & 6

fn ee_experiment(replicas: usize, cores: usize, cycles: usize, seed: u64) -> Row {
    let mut pattern = EnsembleExchange::new(
        replicas,
        cycles,
        TemperatureLadder::geometric(replicas, 0.8, 2.4),
        |r, c, t| {
            KernelCall::new(
                "md.amber",
                json!({
                    // 6 ps = 3000 steps of the 2881-atom system, 1 core.
                    "steps": 3000, "n_atoms": 2881, "temperature": t,
                    "seed": (r * 31 + c) as u64,
                }),
            )
        },
    );
    let config = ResourceConfig::new("lsu.supermic", cores, walltime());
    let sim = SimulatedConfig {
        seed: seed ^ (replicas * 7 + cores) as u64,
        ..Default::default()
    };
    let (report, fp) = run_checked(config, sim, &mut pattern, "ee");
    Row::new(format!("replicas={replicas}"), cores as f64)
        .with(
            "simulation_time",
            report.stage_time("simulation").as_secs_f64(),
        )
        .with("exchange_time", report.stage_time("exchange").as_secs_f64())
        .with("ttc", report.ttc.as_secs_f64())
        .with_trace(fp)
}

/// Fig. 5: EE strong scaling on SuperMIC — 2560 replicas (scaled by
/// `scale` for cheap runs), cores 20 → replicas.
pub fn fig5(seed: u64, scale: usize) -> Vec<Row> {
    fig5_with(&SweepRunner::from_env(), seed, scale)
}

/// [`fig5`] through an explicit [`SweepRunner`].
pub fn fig5_with(runner: &SweepRunner, seed: u64, scale: usize) -> Vec<Row> {
    let replicas = 2560 / scale.max(1);
    let mut core_counts = Vec::new();
    let mut cores = (20 / scale.clamp(1, 20)).max(1);
    while cores <= replicas {
        core_counts.push(cores);
        cores *= 2;
    }
    if core_counts.last() != Some(&replicas) {
        core_counts.push(replicas);
    }
    // Fixed total work per point: uniform cost.
    runner.run(core_counts, |cores| {
        vec![ee_experiment(replicas, cores, 1, seed)]
    })
}

/// Fig. 6: EE weak scaling on SuperMIC — replicas = cores, 20 → 2560
/// (divided by `scale`).
pub fn fig6(seed: u64, scale: usize) -> Vec<Row> {
    fig6_with(&SweepRunner::from_env(), seed, scale)
}

/// [`fig6`] through an explicit [`SweepRunner`].
pub fn fig6_with(runner: &SweepRunner, seed: u64, scale: usize) -> Vec<Row> {
    let max = 2560 / scale.max(1);
    let mut sizes = Vec::new();
    let mut n = (20 / scale.max(1)).max(2);
    while n <= max {
        sizes.push(n);
        n *= 2;
    }
    // Weak scaling: point cost grows with the replica count.
    let points = sizes.into_iter().map(|n| (n as f64, n)).collect();
    runner.run_weighted(points, |n| vec![ee_experiment(n, n, 1, seed)])
}

// ----------------------------------------------------------- Figures 7 & 8

fn sal_experiment(sims: usize, cores: usize, cores_per_sim: usize, steps: u64, seed: u64) -> Row {
    let mut pattern = SimulationAnalysisLoop::new(
        1,
        sims,
        move |_, i| {
            KernelCall::new(
                "md.amber",
                json!({ "steps": steps, "n_atoms": 2881, "seed": i }),
            )
            .with_cores(cores_per_sim)
        },
        move |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
    );
    let config = ResourceConfig::new("xsede.stampede", cores, walltime());
    let sim = SimulatedConfig {
        seed: seed ^ (sims * 13 + cores) as u64,
        ..Default::default()
    };
    let (report, fp) = run_checked(config, sim, &mut pattern, "sal");
    let sim_summary = report.stage_exec_summary("simulation");
    Row::new(format!("sims={sims}"), cores as f64)
        .with(
            "simulation_time",
            report.stage_time("simulation").as_secs_f64(),
        )
        .with("analysis_time", report.stage_time("analysis").as_secs_f64())
        .with("mean_sim_exec", sim_summary.mean())
        .with("ttc", report.ttc.as_secs_f64())
        .with_trace(fp)
}

/// Fig. 7: SAL strong scaling on Stampede — 1024 simulations (÷ `scale`),
/// 0.6 ps (300 steps) each, cores 64 → 1024.
pub fn fig7(seed: u64, scale: usize) -> Vec<Row> {
    fig7_with(&SweepRunner::from_env(), seed, scale)
}

/// [`fig7`] through an explicit [`SweepRunner`].
pub fn fig7_with(runner: &SweepRunner, seed: u64, scale: usize) -> Vec<Row> {
    let sims = 1024 / scale.max(1);
    let mut core_counts = Vec::new();
    let mut cores = (64 / scale.max(1)).max(2);
    while cores <= sims {
        core_counts.push(cores);
        cores *= 2;
    }
    runner.run(core_counts, |cores| {
        vec![sal_experiment(sims, cores, 1, 300, seed)]
    })
}

/// Fig. 8: SAL weak scaling on Stampede — sims = cores, 64 → 4096
/// (÷ `scale`).
pub fn fig8(seed: u64, scale: usize) -> Vec<Row> {
    fig8_with(&SweepRunner::from_env(), seed, scale)
}

/// [`fig8`] through an explicit [`SweepRunner`].
pub fn fig8_with(runner: &SweepRunner, seed: u64, scale: usize) -> Vec<Row> {
    let max = 4096 / scale.max(1);
    let mut sizes = Vec::new();
    let mut n = (64 / scale.max(1)).max(2);
    while n <= max {
        sizes.push(n);
        n *= 2;
    }
    let points = sizes.into_iter().map(|n| (n as f64, n)).collect();
    runner.run_weighted(points, |n| vec![sal_experiment(n, n, 1, 300, seed)])
}

// ---------------------------------------------------------------- Figure 9

/// Fig. 9: MPI capability on Stampede — 64 simulations (÷ `scale`) of 6 ps
/// each, cores per simulation ∈ {1, 16, 32, 64}; per-simulation execution
/// time drops linearly with cores per simulation.
pub fn fig9(seed: u64, scale: usize) -> Vec<Row> {
    fig9_with(&SweepRunner::from_env(), seed, scale)
}

/// [`fig9`] through an explicit [`SweepRunner`].
pub fn fig9_with(runner: &SweepRunner, seed: u64, scale: usize) -> Vec<Row> {
    let sims = (64 / scale.max(1)).max(2);
    runner.run(vec![1usize, 16, 32, 64], |cps| {
        let total_cores = sims * cps;
        let row = sal_experiment(sims, total_cores, cps, 3000, seed);
        let mut renamed = Row::new(format!("sims={sims}"), cps as f64);
        renamed.values = row.values;
        vec![renamed]
    })
}

// --------------------------------------------------------------- Figure 10

/// Largest task count at which fig10 keeps the cross-layer trace on (and
/// fingerprints it). Above this the trace itself — tens of records per
/// task — dominates memory and wall time, so throughput points run with
/// telemetry disabled; simulated timings are identical either way.
pub const FIG10_TRACE_LIMIT: usize = 10_000;

/// Row values that measure host wall-clock rather than simulated
/// behaviour. They differ run to run, so serial/parallel identity checks
/// must compare rows through [`deterministic_view`], which strips them.
pub const NONDETERMINISTIC_VALUES: &[&str] = &["wall_secs", "events_per_sec"];

/// The deterministic projection of `rows`: every value except the
/// host-timing ones in [`NONDETERMINISTIC_VALUES`]. Two runs of the same
/// sweep must agree on this projection bit for bit.
pub fn deterministic_view(rows: &[Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            let mut row = Row::new(r.series.clone(), r.x);
            row.values = r
                .values
                .iter()
                .filter(|(name, _)| !NONDETERMINISTIC_VALUES.contains(&name.as_str()))
                .cloned()
                .collect();
            row
        })
        .collect()
}

/// One fig10 throughput point: an `n`-task ensemble of uniform
/// `misc.sleep` tasks on Stampede with a 1024-core pilot, timed on the
/// host clock. Deterministic values (ttc, events, tasks, and — under the
/// trace limit — the trace fingerprint) ride in the row next to the
/// nondeterministic wall-clock ones.
fn scale_experiment(kind: &str, n: usize, seed: u64) -> Row {
    let sleep = |_: usize| KernelCall::new("misc.sleep", json!({ "secs": 10.0 }));
    let mut pattern: Box<dyn ExecutionPattern + Send> = match kind {
        "eop" => Box::new(EnsembleOfPipelines::new(n, 1, move |p, _| sleep(p))),
        "sal" => Box::new(SimulationAnalysisLoop::new(
            1,
            n,
            move |_, i| sleep(i),
            |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
        )),
        other => panic!("unknown fig10 series {other:?}"),
    };
    let config = ResourceConfig::new("xsede.stampede", 1024, walltime());
    let traced = n <= FIG10_TRACE_LIMIT;
    let sim = SimulatedConfig {
        seed: seed ^ n as u64,
        telemetry: traced,
        ..Default::default()
    };
    let t0 = Instant::now();
    let (report, fp) = if traced {
        let (report, fp) = run_checked(config, sim, pattern.as_mut(), "fig10");
        (report, Some(fp))
    } else {
        let report =
            run_simulated(config, sim, pattern.as_mut()).unwrap_or_else(|e| panic!("fig10: {e}"));
        (report, None)
    };
    let wall = t0.elapsed().as_secs_f64();
    assert!(!report.partial, "fig10 runs must complete");
    let mut row = Row::new(kind, n as f64)
        .with("ttc", report.ttc.as_secs_f64())
        .with("tasks", report.task_count() as f64)
        .with("events", report.events as f64)
        .with("wall_secs", wall)
        .with("events_per_sec", report.events as f64 / wall.max(1e-9));
    if let Some(fp) = fp {
        row = row.with_trace(fp);
    }
    row
}

/// Fig. 10 (extension): simulator throughput scaling — ensemble-of-
/// pipelines and simulation-analysis-loop ensembles of 10³ → `max_tasks`
/// uniform tasks, reporting wall-clock and events/sec per point. The
/// paper stops at ~10³ tasks; this figure documents that the reproduction
/// sustains 10⁶.
pub fn fig10(seed: u64, max_tasks: usize) -> Vec<Row> {
    fig10_with(&SweepRunner::from_env(), seed, max_tasks)
}

/// [`fig10`] through an explicit [`SweepRunner`].
pub fn fig10_with(runner: &SweepRunner, seed: u64, max_tasks: usize) -> Vec<Row> {
    let points: Vec<(f64, (&str, usize))> = [1_000usize, 10_000, 100_000, 1_000_000]
        .iter()
        .filter(|&&n| n <= max_tasks)
        .flat_map(|&n| {
            ["eop", "sal"]
                .into_iter()
                .map(move |kind| (n as f64, (kind, n)))
        })
        .collect();
    assert!(!points.is_empty(), "fig10: max_tasks below smallest point");
    runner.run_weighted(points, |(kind, n)| vec![scale_experiment(kind, n, seed)])
}

// ------------------------------------------- Figure 10, federated variant

/// One federated fig10 throughput point: an `n`-task ensemble late-bound
/// across `members` independently simulated 1024-core Stampede clusters —
/// strong scaling, the task count stays fixed as members grow. Under the
/// trace limit the interleaved multi-member trace is cross-checked against
/// the overhead accounting and fingerprinted, exactly like the
/// single-cluster points; above it telemetry is off and only throughput is
/// measured.
fn fed_scale_experiment(
    kind: &str,
    n: usize,
    seed: u64,
    members: usize,
    drive: DriveMode,
    sim_threads: usize,
) -> Row {
    let sleep = |_: usize| KernelCall::new("misc.sleep", json!({ "secs": 10.0 }));
    let mut pattern: Box<dyn ExecutionPattern + Send> = match kind {
        "eop" => Box::new(EnsembleOfPipelines::new(n, 1, move |p, _| sleep(p))),
        "sal" => Box::new(SimulationAnalysisLoop::new(
            1,
            n,
            move |_, i| sleep(i),
            |_, outs| vec![KernelCall::new("ana.coco", json!({ "n_sims": outs.len() }))],
        )),
        other => panic!("unknown fig10 series {other:?}"),
    };
    let traced = n <= FIG10_TRACE_LIMIT;
    let config = FederatedConfig {
        seed: seed ^ n as u64,
        telemetry: traced,
        drive,
        sim_threads,
        clusters: (0..members)
            .map(|_| ClusterSpec::new("xsede.stampede", 1024, walltime()))
            .collect(),
        ..FederatedConfig::default()
    };
    let t0 = Instant::now();
    let (report, fp) = if traced {
        let (report, telemetry) = run_federated_traced(config, pattern.as_mut())
            .unwrap_or_else(|e| panic!("fig10_federated: {e}"));
        let cc = cross_check(&report, &telemetry.tracer);
        assert!(
            cc.within(1e-6),
            "fig10_federated: interleaved trace diverges from accounting \
             (max err {:.3e}s)",
            cc.max_abs_error_secs,
        );
        (report, Some(trace_fingerprint(&telemetry.tracer)))
    } else {
        let report = run_federated(config, pattern.as_mut())
            .unwrap_or_else(|e| panic!("fig10_federated: {e}"));
        (report, None)
    };
    let wall = t0.elapsed().as_secs_f64();
    assert!(!report.partial, "fig10_federated runs must complete");
    let mut row = Row::new(kind, n as f64)
        .with("members", members as f64)
        .with("ttc", report.ttc.as_secs_f64())
        .with("tasks", report.task_count() as f64)
        .with("events", report.events as f64)
        .with("wall_secs", wall)
        .with("events_per_sec", report.events as f64 / wall.max(1e-9));
    if let Some(fp) = fp {
        row = row.with_trace(fp);
    }
    row
}

/// Fig. 10, federated: throughput of an `n`-task ensemble late-bound
/// across `members` simulated clusters, driven serially or on the member
/// worker pool. Points run through the (usually serial) `runner` so that
/// measured wall-clock reflects the member pool alone — member-pool
/// parallelism (`sim_threads`) and figure-sweep parallelism
/// (`ENTK_THREADS`) are deliberately separate axes.
pub fn fig10_federated_with(
    runner: &SweepRunner,
    seed: u64,
    max_tasks: usize,
    members: usize,
    drive: DriveMode,
    sim_threads: usize,
) -> Vec<Row> {
    let points: Vec<(f64, (&str, usize))> = [1_000usize, 10_000, 100_000, 1_000_000]
        .iter()
        .filter(|&&n| n <= max_tasks)
        .flat_map(|&n| {
            ["eop", "sal"]
                .into_iter()
                .map(move |kind| (n as f64, (kind, n)))
        })
        .collect();
    assert!(
        !points.is_empty(),
        "fig10_federated: max_tasks below smallest point"
    );
    runner.run_weighted(points, |(kind, n)| {
        vec![fed_scale_experiment(
            kind,
            n,
            seed,
            members,
            drive,
            sim_threads,
        )]
    })
}

// ------------------------------------------------------------ Trace export

/// Chrome trace-event JSON for one representative session — the Fig. 3
/// char-count app at 48 pipelines — loadable in Perfetto or
/// `chrome://tracing`. Written as `TRACE.json` by `bench --trace`. The run
/// is cross-checked before export, so a published trace always agrees with
/// the accounted overheads.
pub fn representative_trace(seed: u64) -> String {
    let mut pattern = char_count_pattern("pipeline", 48);
    let config = ResourceConfig::new("xsede.comet", 48, walltime());
    let sim = SimulatedConfig {
        seed,
        ..Default::default()
    };
    let (_, telemetry) = {
        let (report, telemetry) =
            run_simulated_traced(config, sim, pattern.as_mut()).expect("trace run");
        cross_check(&report, &telemetry.tracer).assert_ok();
        (report, telemetry)
    };
    telemetry.tracer.to_chrome_json()
}

// --------------------------------------------------------------- Ablations

/// Ablation: EE exchange topology — global-synchronous vs pairwise-async
/// TTC at fixed replicas/cores.
pub fn ablation_exchange(seed: u64) -> Vec<Row> {
    ablation_exchange_with(&SweepRunner::from_env(), seed)
}

/// [`ablation_exchange`] through an explicit [`SweepRunner`].
pub fn ablation_exchange_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    let replicas = 64;
    let cores = 32;
    let points = vec![
        ("global-sync", ExchangeMode::GlobalSynchronous),
        ("pairwise-async", ExchangeMode::PairwiseAsync),
    ];
    runner.run(points, |(label, mode)| {
        let mut pattern = EnsembleExchange::new(
            replicas,
            4,
            TemperatureLadder::geometric(replicas, 0.8, 2.4),
            |r, c, t| {
                KernelCall::new(
                    "md.amber",
                    json!({ "steps": 3000, "n_atoms": 2881, "temperature": t,
                            "seed": (r * 31 + c) as u64 }),
                )
            },
        )
        .with_mode(mode);
        let config = ResourceConfig::new("lsu.supermic", cores, walltime());
        let sim = SimulatedConfig {
            seed,
            ..Default::default()
        };
        let (report, fp) = run_checked(config, sim, &mut pattern, "ablation_exchange");
        vec![Row::new(label, replicas as f64)
            .with("ttc", report.ttc.as_secs_f64())
            .with("exchange_time", report.stage_time("exchange").as_secs_f64())
            .with_trace(fp)]
    })
}

/// Ablation: runtime-overhead sensitivity — scale all RP overheads and
/// watch TTC for a 512-task bag.
pub fn ablation_overhead(seed: u64) -> Vec<Row> {
    ablation_overhead_with(&SweepRunner::from_env(), seed)
}

/// [`ablation_overhead`] through an explicit [`SweepRunner`].
pub fn ablation_overhead_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    runner.run(vec![0.0, 1.0, 10.0], |factor| {
        let mut pattern = BagOfTasks::new(512, |_| {
            KernelCall::new("misc.sleep", json!({ "secs": 10.0 }))
        });
        let config = ResourceConfig::new("xsede.comet", 256, walltime());
        let sim = SimulatedConfig {
            seed,
            runtime_overheads: entk_pilot::RuntimeOverheads::radical_pilot().scaled(factor),
            ..Default::default()
        };
        let (report, fp) = run_checked(config, sim, &mut pattern, "ablation_overhead");
        vec![Row::new("overhead-scale", factor)
            .with("ttc", report.ttc.as_secs_f64())
            .with_trace(fp)]
    })
}

/// Ablation: fault tolerance — TTC and failure outcomes vs injected
/// unit-failure rate, with and without retries.
pub fn ablation_faults(seed: u64) -> Vec<Row> {
    ablation_faults_with(&SweepRunner::from_env(), seed)
}

/// [`ablation_faults`] through an explicit [`SweepRunner`].
pub fn ablation_faults_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    let points: Vec<(f64, u32)> = [0.0, 0.1, 0.3]
        .iter()
        .flat_map(|&rate| [0u32, 5].into_iter().map(move |retries| (rate, retries)))
        .collect();
    runner.run(points, |(rate, retries)| {
        let mut pattern = BagOfTasks::new(256, |_| {
            KernelCall::new("misc.sleep", json!({ "secs": 30.0 }))
        });
        let config = ResourceConfig::new("xsede.comet", 128, walltime());
        let sim = SimulatedConfig {
            seed,
            unit_failure_rate: rate,
            fault: entk_core::FaultConfig::retries(retries),
            ..Default::default()
        };
        let (report, fp) = run_checked(config, sim, &mut pattern, "ablation_faults");
        vec![Row::new(format!("retries={retries}"), rate)
            .with("ttc", report.ttc.as_secs_f64())
            .with("failed", report.failed_tasks as f64)
            .with("resubmissions", report.total_retries as f64)
            .with_trace(fp)]
    })
}

/// Ablation: pilot-splitting execution strategy under size-dependent
/// queue wait (paper §V / Ref.\[23\]).
pub fn ablation_pilots(seed: u64) -> Vec<Row> {
    ablation_pilots_with(&SweepRunner::from_env(), seed)
}

/// [`ablation_pilots`] through an explicit [`SweepRunner`].
pub fn ablation_pilots_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    let mut platform = entk_cluster::PlatformSpec::comet();
    platform.queue_wait_per_core = 2.0;
    runner.run(vec![1usize, 2, 4, 8], |count| {
        let mut pattern = BagOfTasks::new(128, |_| {
            KernelCall::new("misc.sleep", json!({ "secs": 30.0 }))
        });
        let config = ResourceConfig::new("xsede.comet", 128, walltime());
        let sim = SimulatedConfig {
            seed,
            platform: Some(platform.clone()),
            pilot_strategy: if count == 1 {
                entk_core::PilotStrategy::single()
            } else {
                entk_core::PilotStrategy::split(count)
            },
            ..Default::default()
        };
        let (report, fp) = run_checked(config, sim, &mut pattern, "ablation_pilots");
        vec![Row::new("pilots", count as f64)
            .with("ttc", report.ttc.as_secs_f64())
            .with_trace(fp)]
    })
}

/// Ablation: unit-scheduler policy on a mixed MPI workload.
pub fn ablation_scheduler(seed: u64) -> Vec<Row> {
    ablation_scheduler_with(&SweepRunner::from_env(), seed)
}

/// [`ablation_scheduler`] through an explicit [`SweepRunner`].
pub fn ablation_scheduler_with(runner: &SweepRunner, seed: u64) -> Vec<Row> {
    use entk_pilot::{FirstFitScheduler, LargestFirstScheduler};
    runner.run(vec!["first-fit", "largest-first"], |label| {
        let scheduler: Box<dyn entk_pilot::UnitScheduler> = match label {
            "first-fit" => Box::new(FirstFitScheduler),
            _ => Box::new(LargestFirstScheduler),
        };
        // Mixed 1/4/8-core tasks.
        let mut pattern = BagOfTasks::new(96, |i| {
            let cores = [1usize, 4, 8][i % 3];
            KernelCall::new("misc.sleep", json!({ "secs": 30.0 })).with_cores(cores)
        });
        let config = ResourceConfig::new("xsede.comet", 48, walltime());
        let mut handle = ResourceHandle::simulated(
            config,
            SimulatedConfig {
                seed,
                ..Default::default()
            },
        )
        .expect("handle");
        handle.set_unit_scheduler(scheduler);
        handle.allocate().expect("allocate");
        let report = handle.run(&mut pattern).expect("run");
        // Mid-session snapshot: teardown hasn't happened, so the trace must
        // agree with the run report (whose core overhead excludes teardown).
        let telemetry = handle.telemetry().expect("simulated handle").snapshot();
        let cc = cross_check(&report, &telemetry.tracer);
        assert!(
            cc.within(1e-6),
            "ablation_scheduler: trace/accounting divergence ({:.3e}s)",
            cc.max_abs_error_secs
        );
        handle.deallocate().expect("deallocate");
        let fp = trace_fingerprint(
            &handle
                .telemetry()
                .expect("simulated handle")
                .snapshot()
                .tracer,
        );
        vec![Row::new(label, 96.0)
            .with("exec_time", report.exec_time().as_secs_f64())
            .with_trace(fp)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_small_scale_has_flat_exec_time() {
        // Scaled-down: tasks=cores means exec time stays flat per pattern.
        let rows = fig3(1);
        for kind in ["pipeline", "sal", "ee"] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.series == kind)
                .map(|r| r.value("exec_time").unwrap())
                .collect();
            assert_eq!(series.len(), 4);
            let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = series.iter().cloned().fold(0.0, f64::max);
            assert!(
                max / min < 2.5,
                "{kind} exec time should stay roughly flat: {series:?}"
            );
        }
    }

    #[test]
    fn fig3_overheads_have_paper_shape() {
        let rows = fig3(9);
        // Core overhead constant across sizes (within 25%).
        let core: Vec<f64> = rows
            .iter()
            .filter(|r| r.series == "pipeline")
            .map(|r| r.value("core_overhead").unwrap())
            .collect();
        let cmin = core.iter().cloned().fold(f64::INFINITY, f64::min);
        let cmax = core.iter().cloned().fold(0.0, f64::max);
        assert!(cmax / cmin < 1.25, "core overhead ~constant: {core:?}");
        // Pattern overhead grows ~linearly: 8x tasks => >4x overhead.
        let pat: Vec<f64> = rows
            .iter()
            .filter(|r| r.series == "pipeline")
            .map(|r| r.value("pattern_overhead").unwrap())
            .collect();
        assert!(
            pat.last().unwrap() > &(4.0 * pat[0]),
            "pattern overhead ∝ tasks: {pat:?}"
        );
    }

    #[test]
    fn fault_ablation_retries_absorb_failures() {
        let rows = ablation_faults(3);
        for r in &rows {
            let retries = r.series == "retries=5";
            let failed = r.value("failed").unwrap();
            if retries {
                assert_eq!(failed, 0.0, "retries must absorb failures at rate {}", r.x);
            } else if r.x > 0.0 {
                assert!(
                    failed > 0.0,
                    "no-retry run should lose tasks at rate {}",
                    r.x
                );
            }
        }
    }

    #[test]
    fn fig5_small_scale_halves_simulation_time() {
        let rows = fig5(2, 32); // 80 replicas, cores 1..80
        assert!(rows.len() >= 3);
        for pair in rows.windows(2) {
            let a = pair[0].value("simulation_time").unwrap();
            let b = pair[1].value("simulation_time").unwrap();
            assert!(b < a, "strong scaling must decrease sim time: {a} -> {b}");
        }
        // Exchange time roughly constant (depends only on replica count).
        let ex: Vec<f64> = rows
            .iter()
            .map(|r| r.value("exchange_time").unwrap())
            .collect();
        let min = ex.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ex.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.5, "exchange time ~constant: {ex:?}");
    }

    #[test]
    fn fig8_small_scale_grows_analysis_only() {
        let rows = fig8(3, 32); // sims = cores ∈ {2..128}
        let sim_t: Vec<f64> = rows
            .iter()
            .map(|r| r.value("simulation_time").unwrap())
            .collect();
        let ana_t: Vec<f64> = rows
            .iter()
            .map(|r| r.value("analysis_time").unwrap())
            .collect();
        // Weak scaling: simulation time ~flat, analysis grows monotonically.
        let min = sim_t.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sim_t.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.0, "weak-scaled sim time flat: {sim_t:?}");
        // Growth dominates once n is large enough to beat base-cost jitter.
        assert!(
            ana_t.last().unwrap() > &(1.5 * ana_t[0]),
            "analysis grows with sims: {ana_t:?}"
        );
        assert!(
            ana_t[2..].windows(2).all(|w| w[1] > w[0]),
            "analysis monotonic beyond tiny n: {ana_t:?}"
        );
    }

    #[test]
    fn fig10_small_scale_is_deterministic_across_modes() {
        let serial = fig10_with(&SweepRunner::serial(), 2016, 1_000);
        assert_eq!(serial.len(), 2, "one EoP and one SAL point at n=1000");
        for row in &serial {
            assert_eq!(row.x, 1_000.0);
            // Traced points carry the fingerprint, so row equality below
            // implies byte-identical traces, not just matching totals.
            assert!(row.value("trace_fp_hi").is_some());
            assert!(row.value("events").unwrap() > 0.0);
            assert!(row.value("events_per_sec").unwrap() > 0.0);
        }
        let parallel = fig10_with(&SweepRunner::parallel(), 2016, 1_000);
        // Wall-clock values legitimately differ run to run; everything else
        // must be bit-identical.
        assert_eq!(deterministic_view(&serial), deterministic_view(&parallel));
        let stripped = deterministic_view(&serial);
        for row in &stripped {
            for name in NONDETERMINISTIC_VALUES {
                assert!(row.value(name).is_none(), "{name} not stripped");
            }
        }
    }

    #[test]
    fn fig9_small_scale_speeds_up_with_cores_per_sim() {
        let rows = fig9(4, 16); // 4 sims
        let exec: Vec<f64> = rows
            .iter()
            .map(|r| r.value("mean_sim_exec").unwrap())
            .collect();
        assert!(
            exec.windows(2).all(|w| w[1] < w[0]),
            "more cores per sim must be faster: {exec:?}"
        );
        // Roughly linear: 64× cores ⇒ ≥ 20× faster (base cost bounds it).
        assert!(exec[0] / exec[3] > 20.0, "speedup {}", exec[0] / exec[3]);
    }
}
