//! Parallel sweep execution for figure regeneration.
//!
//! Every figure of the paper's evaluation is a parameter sweep: a list of
//! independent `(config, seed)` points, each of which runs one simulated
//! experiment and yields one or more [`Row`]s. [`SweepRunner`] fans those
//! points across host cores and reassembles the rows **in input-point
//! order**, so the parallel output is bit-identical to the serial one —
//! each point's simulation is deterministic in its seed and shares no
//! state with its neighbours, and floating-point results are never reduced
//! across points.
//!
//! Worker-thread count follows the `rayon` shim: `ENTK_THREADS`, then
//! `RAYON_NUM_THREADS`, then the host core count.

use crate::figures::Row;
use rayon::prelude::*;

/// Whether a sweep executes its points one by one or fanned across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Evaluate points sequentially in input order.
    Serial,
    /// Evaluate points concurrently; rows still come back in input order.
    Parallel,
}

/// Executes the independent points of a figure sweep.
pub struct SweepRunner {
    mode: SweepMode,
}

impl SweepRunner {
    /// A runner with an explicit mode.
    pub fn new(mode: SweepMode) -> Self {
        SweepRunner { mode }
    }

    /// Strictly sequential runner.
    pub fn serial() -> Self {
        Self::new(SweepMode::Serial)
    }

    /// Core-fanning runner.
    pub fn parallel() -> Self {
        Self::new(SweepMode::Parallel)
    }

    /// Mode from the `ENTK_SWEEP` environment variable (`serial` or
    /// `parallel`); defaults to parallel, which is safe because both modes
    /// produce identical rows.
    pub fn from_env() -> Self {
        match std::env::var("ENTK_SWEEP").as_deref() {
            Ok("serial") | Ok("0") => Self::serial(),
            _ => Self::parallel(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> SweepMode {
        self.mode
    }

    /// Evaluates `eval` over `points`, returning the concatenated rows in
    /// input-point order regardless of mode.
    pub fn run<P, F>(&self, points: Vec<P>, eval: F) -> Vec<Row>
    where
        P: Send,
        F: Fn(P) -> Vec<Row> + Sync,
    {
        self.run_weighted(points.into_iter().map(|p| (1.0, p)).collect(), eval)
    }

    /// Like [`SweepRunner::run`], with a relative cost estimate per point.
    /// Heavier points are dispatched first so a large trailing point never
    /// serializes the tail of the sweep; the weights influence scheduling
    /// only — output row order (and content) is identical to the serial
    /// path's.
    pub fn run_weighted<P, F>(&self, points: Vec<(f64, P)>, eval: F) -> Vec<Row>
    where
        P: Send,
        F: Fn(P) -> Vec<Row> + Sync,
    {
        match self.mode {
            SweepMode::Serial => points.into_iter().flat_map(|(_, p)| eval(p)).collect(),
            SweepMode::Parallel => {
                let n = points.len();
                let mut indexed: Vec<(usize, f64, P)> = points
                    .into_iter()
                    .enumerate()
                    .map(|(i, (w, p))| (i, w, p))
                    .collect();
                // Heaviest first; ties keep input order (stable sort).
                indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
                let results: Vec<(usize, Vec<Row>)> = indexed
                    .into_par_iter()
                    .map(|(i, _, p)| (i, eval(p)))
                    .collect();
                let mut slots: Vec<Option<Vec<Row>>> = (0..n).map(|_| None).collect();
                for (i, rows) in results {
                    slots[i] = Some(rows);
                }
                slots
                    .into_iter()
                    .flat_map(|rows| rows.expect("every point evaluated"))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_point(p: (usize, f64)) -> Vec<Row> {
        let (i, w) = p;
        // A tiny deterministic computation whose result depends on the
        // point alone, with two rows per point to exercise flattening.
        let y = (i as f64 * 1.375 + w).sin();
        (0..2)
            .map(|k| {
                let mut row = Row::new(format!("s{i}"), k as f64);
                row.values.push(("y".into(), y + k as f64));
                row
            })
            .collect()
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_serial() {
        let points: Vec<(f64, (usize, f64))> = (0..25)
            .map(|i| ((25 - i) as f64, (i, 0.25 * i as f64)))
            .collect();
        std::env::set_var("ENTK_THREADS", "4");
        let par = SweepRunner::parallel().run_weighted(points.clone(), eval_point);
        std::env::remove_var("ENTK_THREADS");
        let ser = SweepRunner::serial().run_weighted(points, eval_point);
        assert_eq!(ser, par);
        assert_eq!(ser.len(), 50);
    }

    #[test]
    fn weights_do_not_affect_row_order() {
        let ascending: Vec<(f64, (usize, f64))> = (0..10).map(|i| (i as f64, (i, 1.0))).collect();
        let uniform: Vec<(usize, f64)> = (0..10).map(|i| (i, 1.0)).collect();
        let a = SweepRunner::parallel().run_weighted(ascending, eval_point);
        let b = SweepRunner::parallel().run(uniform, eval_point);
        assert_eq!(a, b);
    }

    #[test]
    fn from_env_honours_serial_request() {
        std::env::set_var("ENTK_SWEEP", "serial");
        assert_eq!(SweepRunner::from_env().mode(), SweepMode::Serial);
        std::env::remove_var("ENTK_SWEEP");
        assert_eq!(SweepRunner::from_env().mode(), SweepMode::Parallel);
    }
}
