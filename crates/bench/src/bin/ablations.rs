//! Runs the ablation experiments over design choices (exchange topology,
//! overhead sensitivity, unit-scheduler policy).
fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    entk_bench::print_rows(
        "Ablation: exchange topology",
        &entk_bench::ablation_exchange(seed),
    );
    entk_bench::print_rows(
        "Ablation: runtime overhead scale",
        &entk_bench::ablation_overhead(seed),
    );
    entk_bench::print_rows(
        "Ablation: unit scheduler",
        &entk_bench::ablation_scheduler(seed),
    );
    entk_bench::print_rows(
        "Ablation: pilot splitting",
        &entk_bench::ablation_pilots(seed),
    );
    entk_bench::print_rows(
        "Ablation: fault tolerance",
        &entk_bench::ablation_faults(seed),
    );
}
