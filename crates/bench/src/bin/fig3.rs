//! Regenerates the paper's Fig. 3 series. Usage: `cargo run --release -p entk-bench --bin fig3 [seed]`.
fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    let rows = entk_bench::fig3(seed);
    entk_bench::print_rows("Figure 3", &rows);
}
