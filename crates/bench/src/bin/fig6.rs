//! Regenerates the paper's Fig. 6 series at full scale. Usage:
//! `cargo run --release -p entk-bench --bin fig6 [seed] [scale]` where
//! scale divides the problem size (1 = the paper's full configuration).
fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    let scale = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let rows = entk_bench::fig6(seed, scale);
    entk_bench::print_rows("Figure 6", &rows);
}
